"""Random distributed computations — the paper's ``d-*`` benchmark family.

The paper evaluates on "randomly generated posets for modeling distributed
computations" named ``d-300``, ``d-500``, ``d-10K`` (10 processes and 300 /
500 / 10,000 events).  We reproduce the family with a message-passing
generator: processes execute events sequentially in a global schedule; each
event, with probability ``message_prob``, receives from another process
(merging that process's current clock), which creates the cross edges that
keep ``i(P)`` large but finite.

Density intuition: with no messages, ``i(P)`` is the product of
``(len_i + 1)``; every message edge cuts the lattice down.  The paper's
posets have ``i(P)`` in the 10⁷–10¹⁰ range for 300–38k events; pure-Python
per-state costs force us to target 10⁴–10⁶ states instead (DESIGN.md §3),
which the ``target`` helper calibrates via the exact ideal counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import WorkloadError
from repro.poset.builder import PosetBuilder
from repro.poset.poset import Poset
from repro.util.rng import DeterministicRng

__all__ = ["RandomComputationSpec", "random_computation"]


@dataclass(frozen=True)
class RandomComputationSpec:
    """Parameters of a random distributed computation.

    ``num_events`` is the total across all processes; events are assigned
    to processes round-robin with random jitter so chain lengths stay
    balanced (matching the paper's symmetric d-* posets).
    """

    num_processes: int
    num_events: int
    message_prob: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_processes < 1:
            raise WorkloadError("need at least one process")
        if self.num_events < self.num_processes:
            raise WorkloadError("need at least one event per process")
        if not 0.0 <= self.message_prob <= 1.0:
            raise WorkloadError("message_prob must be in [0, 1]")


def random_computation(spec: RandomComputationSpec) -> Poset:
    """Generate the poset of a random distributed computation.

    The generator emits events in a single global schedule (so the builder
    records a valid insertion order ``→p`` for free).  Each event:

    1. is assigned to a process — round-robin base with random swaps, so
       every process gets ``num_events / num_processes ± O(1)`` events;
    2. with probability ``message_prob`` receives a message from the
       *latest event* of a uniformly random other process (if that process
       has executed anything yet), adding a cross edge.
    """
    rng = DeterministicRng(spec.seed).fork("random_computation")
    n = spec.num_processes
    builder = PosetBuilder(n)

    # Balanced assignment: shuffle within blocks of one-event-per-process.
    schedule: List[int] = []
    full_blocks, remainder = divmod(spec.num_events, n)
    for _ in range(full_blocks):
        block = list(range(n))
        rng.shuffle(block)
        schedule.extend(block)
    tail = rng.sample(list(range(n)), remainder)
    schedule.extend(tail)

    for tid in schedule:
        deps = []
        if n > 1 and rng.random() < spec.message_prob:
            sender = rng.randint(0, n - 2)
            if sender >= tid:
                sender += 1  # uniform over the other n-1 processes
            last = builder.chain_length(sender)
            if last > 0:
                deps.append((sender, last))
        builder.append(tid, deps=deps, kind="internal")
    return builder.build()


def calibrated_random_computation(
    num_processes: int,
    num_events: int,
    target_states: int,
    seed: int = 0,
    tolerance: float = 0.5,
    max_iterations: int = 24,
) -> Poset:
    """Search ``message_prob`` so that ``i(P)`` lands near ``target_states``.

    Binary search on the message probability (more messages → fewer
    states), counting exactly with the interval DP.  Used by the benchmark
    harness to scale the d-* posets to a Python-feasible size while keeping
    their structure.  ``tolerance`` is relative (0.5 → within 2× either
    way).
    """
    from repro.poset.ideals import count_ideals

    lo_p, hi_p = 0.0, 1.0
    best: Optional[Poset] = None
    best_err = float("inf")
    for _ in range(max_iterations):
        p = (lo_p + hi_p) / 2.0
        poset = random_computation(
            RandomComputationSpec(num_processes, num_events, p, seed)
        )
        states = count_ideals(poset)
        err = abs(states - target_states) / max(target_states, 1)
        if err < best_err:
            best_err = err
            best = poset
        if err <= tolerance:
            break
        if states > target_states:
            lo_p = p  # too many states → need more messages
        else:
            hi_p = p
    assert best is not None
    return best
