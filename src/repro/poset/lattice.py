"""Lattice operations on consistent global states.

The consistent cuts of a poset form a distributive lattice under
componentwise min/max (Mattern 1988).  This module provides the local
moves — successors, predecessors, minimal extensions — that the
enumeration algorithms and the property-based tests are built from.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import InconsistentCutError
from repro.poset.poset import Poset
from repro.types import Cut

__all__ = [
    "is_consistent_cut",
    "consistent_successors",
    "consistent_predecessors",
    "minimal_consistent_extension",
    "require_consistent",
]


def is_consistent_cut(poset: Poset, cut: Sequence[int]) -> bool:
    """Alias of :meth:`Poset.is_consistent` as a free function."""
    return poset.is_consistent(cut)


def require_consistent(poset: Poset, cut: Sequence[int], what: str = "cut") -> Cut:
    """Return ``cut`` as a tuple, raising :class:`InconsistentCutError` if it
    is not a consistent global state of ``poset``."""
    t = tuple(cut)
    if not poset.is_consistent(t):
        raise InconsistentCutError(f"{what} {t} is not a consistent global state")
    return t


def consistent_successors(poset: Poset, cut: Sequence[int]) -> List[Cut]:
    """All consistent cuts reachable by executing exactly one more event.

    These are the outgoing lattice edges from ``cut`` — the moves the BFS
    algorithm explores (one per *enabled* thread).
    """
    out: List[Cut] = []
    c = tuple(cut)
    for tid in range(poset.num_threads):
        if poset.enabled(c, tid):
            out.append(c[:tid] + (c[tid] + 1,) + c[tid + 1 :])
    return out


def consistent_predecessors(poset: Poset, cut: Sequence[int]) -> List[Cut]:
    """All consistent cuts from which ``cut`` is one event away.

    Thread ``tid`` can be *retracted* when it has executed at least one
    event and its maximal event is maximal in the cut (no other included
    event depends on it).
    """
    out: List[Cut] = []
    c = tuple(cut)
    n = poset.num_threads
    for tid in range(n):
        if c[tid] == 0:
            continue
        retractable = True
        for j in range(n):
            if j != tid and c[j] and poset.vc(j, c[j])[tid] >= c[tid]:
                retractable = False
                break
        if retractable:
            out.append(c[:tid] + (c[tid] - 1,) + c[tid + 1 :])
    return out


def minimal_consistent_extension(
    poset: Poset,
    lower: Sequence[int],
    fixed_prefix: int = 0,
    prefix: Optional[Sequence[int]] = None,
    work: Optional[List[int]] = None,
) -> Optional[Cut]:
    """Least consistent cut ``G`` with ``G ≥ lower`` and a fixed prefix.

    This is the closure workhorse of the lexical algorithm: positions
    ``0..fixed_prefix-1`` are pinned to ``prefix`` (default: pinned to
    ``lower``); the remaining positions start at ``lower`` and are raised
    to a fixpoint so every included event's predecessors are included.

    Returns ``None`` when no consistent cut exists with that prefix —
    i.e. when the fixpoint would need to raise a pinned component.  The
    fixpoint exists and is unique because consistency constraints are
    monotone (raising a component only adds requirements upward); it is the
    standard least-closure computation on a distributive lattice.

    ``work``, when given, is a one-element list whose cell is incremented
    by the number of inner comparisons performed — the real work meter the
    cost model consumes.
    """
    n = poset.num_threads
    lengths = poset.lengths
    cut = list(prefix[:fixed_prefix]) if prefix is not None else list(lower[:fixed_prefix])
    cut += [max(lo, 0) for lo in lower[fixed_prefix:]]
    if len(cut) != n:
        raise InconsistentCutError(f"lower bound {tuple(lower)} has wrong width")
    for i, v in enumerate(cut):
        if v > lengths[i]:
            return None
    # Worklist fixpoint: each raised component re-queues its row constraint.
    ops = 0
    changed = True
    while changed:
        changed = False
        for i in range(n):
            ci = cut[i]
            if ci == 0:
                continue
            v = poset.vc(i, ci)
            ops += n
            for j in range(n):
                need = v[j]
                if need > cut[j]:
                    if j < fixed_prefix or need > lengths[j]:
                        if work is not None:
                            work[0] += ops
                        return None
                    cut[j] = need
                    changed = True
    if work is not None:
        work[0] += ops
    return tuple(cut)
