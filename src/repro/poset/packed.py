"""Packed (flat-array) views of a poset's clock table for the hot kernels.

The enumeration inner loops (ISSUE 9 / ROADMAP "bitset/array state
representation") spend their time asking two questions about vector
clocks:

1. *closure*: given a frontier vector, what is the least consistent cut
   above it?  (a componentwise max over the frontier events' clock rows);
2. *run extension*: for a fixed prefix, how far can the least-significant
   coordinate advance before some clock component exceeds the prefix?

Both are served from two flat layouts computed once per poset and shared
by every worker:

``clock_rows``
    One ``array('i')`` of length ``num_events * n``, row-major: the clock
    of event ``(t, k)`` (1-based ``k``) occupies
    ``clock_rows[(event_base[t] + k - 1) * n : ...+ n]``.  This is the
    per-event view — no tuples, no per-event objects.

``succ_cols[t]``
    Per thread, the same rows transposed into column-major order:
    ``succ_cols[t][j * len_t + (k - 1)] == vc(t, k)[j]``.  Because clocks
    are monotone along a chain, every column is sorted, so "the largest
    ``k`` whose requirement on thread ``j`` is ≤ ``c``" is a
    ``bisect_right`` — C-speed run extension (the packed enumerator's main
    trick).

``downset_masks`` (lazy)
    Per event, its causal past (inclusive) as an int bitmask over all
    events, bit ``event_base[t] + k - 1`` for event ``(t, k)``.  A union
    of downsets is a downset, so the closure of a frontier is the OR of
    its events' masks and the per-thread frontier counts are popcounts —
    the "int bitmask fast path" of the packed enumerator.  Only built
    when a kernel asks (it costs O(|E|²) bits).

When numpy is importable (the ``repro[fast]`` extra) and
``REPRO_NO_NUMPY`` is unset, table *construction* vectorizes the
transpose; the tables themselves are always stdlib ``array('i')`` so the
kernels and the wire format never depend on numpy.
"""

from __future__ import annotations

import os
from array import array
from typing import List, Optional, Sequence, Tuple

__all__ = ["PackedPosetTables", "build_packed_tables", "numpy_or_none"]


def numpy_or_none():
    """The numpy module, or ``None`` when absent or disabled.

    ``REPRO_NO_NUMPY=1`` forces the pure-stdlib path (CI exercises both);
    checked at call time, not import time, so tests can toggle it.
    """
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


class PackedPosetTables:
    """Flat clock tables of one poset (see module docstring for layouts)."""

    __slots__ = (
        "num_threads",
        "lengths",
        "num_events",
        "event_base",
        "clock_rows",
        "succ_cols",
        "backend",
        "_downsets",
        "_thread_masks",
    )

    def __init__(
        self,
        num_threads: int,
        lengths: Tuple[int, ...],
        clock_rows: array,
        succ_cols: Tuple[array, ...],
        backend: str,
    ):
        self.num_threads = num_threads
        self.lengths = lengths
        self.num_events = sum(lengths)
        base: List[int] = []
        acc = 0
        for ln in lengths:
            base.append(acc)
            acc += ln
        #: ``event_base[t] + k - 1`` is event ``(t, k)``'s global index/bit.
        self.event_base: Tuple[int, ...] = tuple(base)
        self.clock_rows = clock_rows
        self.succ_cols = succ_cols
        #: ``"numpy"`` or ``"pure"`` — how the tables were constructed.
        self.backend = backend
        self._downsets: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._thread_masks: Optional[Tuple[int, ...]] = None

    # ------------------------------------------------------------------ #
    # row access (diagnostics/tests; kernels index the arrays directly)

    def row(self, tid: int, idx: int) -> Tuple[int, ...]:
        """Clock row of event ``(tid, idx)`` (1-based ``idx``)."""
        n = self.num_threads
        base = (self.event_base[tid] + idx - 1) * n
        return tuple(self.clock_rows[base : base + n])

    # ------------------------------------------------------------------ #
    # bitmask tables (lazy — only the bitmask kernel pays for them)

    def downset_masks(self) -> Tuple[Tuple[int, ...], ...]:
        """Per thread, per event (0-based), the inclusive causal past as an
        int bitmask over all events.

        Clock row ``r`` of event ``(t, k)`` says its past holds the first
        ``r[j]`` events of every thread ``j``, so the mask is a union of
        per-thread bit prefixes.  Downsets are transitively closed, which
        is what makes "closure = OR of frontier masks" exact.
        """
        if self._downsets is None:
            n = self.num_threads
            rows = self.clock_rows
            masks: List[Tuple[int, ...]] = []
            for t in range(n):
                base = self.event_base[t]
                out: List[int] = []
                for k in range(self.lengths[t]):
                    row = (base + k) * n
                    m = 0
                    for j in range(n):
                        c = rows[row + j]
                        if c:
                            m |= ((1 << c) - 1) << self.event_base[j]
                    out.append(m)
                masks.append(tuple(out))
            self._downsets = tuple(masks)
        return self._downsets

    def thread_masks(self) -> Tuple[int, ...]:
        """Per thread, the bitmask selecting all of its events."""
        if self._thread_masks is None:
            self._thread_masks = tuple(
                ((1 << self.lengths[t]) - 1) << self.event_base[t]
                for t in range(self.num_threads)
            )
        return self._thread_masks


def build_packed_tables(
    num_threads: int,
    lengths: Sequence[int],
    vc_table: Sequence[Sequence[Sequence[int]]],
) -> PackedPosetTables:
    """Build the flat tables from a poset's tuple-of-tuples clock table.

    ``vc_table[t][k-1]`` is the clock of event ``(t, k)`` — the shape of
    :meth:`repro.poset.poset.Poset.vc_table`.
    """
    n = num_threads
    np = numpy_or_none()
    flat = [v for chain in vc_table for row in chain for v in row]
    clock_rows = array("i", flat)
    succ_cols: List[array] = []
    if np is not None and flat:
        for t in range(n):
            if lengths[t]:
                mat = np.array(vc_table[t], dtype=np.intc)  # (len_t, n)
                col = array("i")
                col.frombytes(np.ascontiguousarray(mat.T).tobytes())
            else:
                col = array("i")
            succ_cols.append(col)
        backend = "numpy"
    else:
        for t in range(n):
            chain = vc_table[t]
            succ_cols.append(
                array("i", [chain[k][j] for j in range(n) for k in range(lengths[t])])
            )
        backend = "pure"
    return PackedPosetTables(
        num_threads=n,
        lengths=tuple(lengths),
        clock_rows=clock_rows,
        succ_cols=tuple(succ_cols),
        backend=backend,
    )
