"""The poset data structure consumed by every enumeration algorithm.

A :class:`Poset` holds, per thread, the chain of events and a parallel
table of their vector clocks as plain tuples.  The enumeration inner loops
only touch the clock table (``poset.vc(i, k)``), never event objects, which
keeps the per-state cost close to pure integer work — the Python analogue
of keeping the hot data in a flat array (see the HPC guide's advice on
avoiding attribute access in inner loops).

Frontier convention
-------------------

A cut ``c`` (tuple of per-thread counts) denotes the global state containing
the first ``c[i]`` events of each thread ``i``.  The cut is *consistent*
iff every included event's causal predecessors are included, which in
clock terms is::

    ∀i with c[i] ≥ 1 : vc(i, c[i]) ≤ c   (componentwise)

because ``vc(i, k)`` lists, per thread, exactly how many of its events must
precede event ``(i, k)``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PosetError
from repro.poset.event import Event
from repro.poset.vector_clock import clock_leq
from repro.types import Clock, Cut, EventId

__all__ = ["Poset"]


class Poset:
    """An immutable poset of events organized as per-thread chains.

    Parameters
    ----------
    chains:
        One list of :class:`Event` per thread, each already carrying a
        valid vector clock with ``vc[tid] == idx`` (1-based, contiguous).
    insertion:
        Optional explicit total order ``→p`` over the events (a list of
        event ids forming a linear extension of happened-before).  When the
        poset was built online this is the insertion order (paper
        Algorithm 4); otherwise callers obtain one from
        :mod:`repro.poset.topological`.
    """

    __slots__ = ("_chains", "_vcs", "_lengths", "_n", "_insertion", "_packed")

    def __init__(
        self,
        chains: Sequence[Sequence[Event]],
        insertion: Optional[Sequence[EventId]] = None,
    ):
        self._n = len(chains)
        self._chains: Tuple[Tuple[Event, ...], ...] = tuple(
            tuple(chain) for chain in chains
        )
        self._validate_chains()
        self._vcs: Tuple[Tuple[Clock, ...], ...] = tuple(
            tuple(e.vc for e in chain) for chain in self._chains
        )
        self._lengths: Cut = tuple(len(chain) for chain in self._chains)
        self._insertion: Optional[Tuple[EventId, ...]] = (
            tuple(insertion) if insertion is not None else None
        )
        if self._insertion is not None and len(self._insertion) != self.num_events:
            raise PosetError(
                f"insertion order has {len(self._insertion)} entries for "
                f"{self.num_events} events"
            )
        self._packed = None

    def __getstate__(self):
        # The packed tables are a pure cache over the clock table; drop
        # them when the poset crosses a process boundary (mp/dist workers
        # rebuild locally — tables, like closures, never cross the wire).
        return {
            s: getattr(self, s) for s in self.__slots__ if s != "_packed"
        }

    def __setstate__(self, state) -> None:
        for key, value in state.items():
            setattr(self, key, value)
        self._packed = None

    # ------------------------------------------------------------------ #
    # validation

    def _validate_chains(self) -> None:
        n = self._n
        for tid, chain in enumerate(self._chains):
            for pos, e in enumerate(chain, start=1):
                if e.tid != tid:
                    raise PosetError(
                        f"event {e} stored in chain {tid} but has tid {e.tid}"
                    )
                if e.idx != pos:
                    raise PosetError(
                        f"event {e} at position {pos} has idx {e.idx}"
                    )
                if len(e.vc) != n:
                    raise PosetError(
                        f"event {e} clock width {len(e.vc)} != n={n}"
                    )
                if e.vc[tid] != pos:
                    raise PosetError(
                        f"event {e} violates vc[tid] == idx: vc={e.vc}"
                    )
                if pos > 1 and not clock_leq(chain[pos - 2].vc, e.vc):
                    raise PosetError(
                        f"clock of {e} not monotone along thread {tid}"
                    )

    # ------------------------------------------------------------------ #
    # basic accessors

    @property
    def num_threads(self) -> int:
        """Number of threads (``n`` in the paper)."""
        return self._n

    @property
    def lengths(self) -> Cut:
        """Per-thread chain lengths; also the *final* (greatest) cut."""
        return self._lengths

    @property
    def num_events(self) -> int:
        """Total number of events ``|E|``."""
        return sum(self._lengths)

    @property
    def insertion(self) -> Optional[Tuple[EventId, ...]]:
        """The total order ``→p`` recorded at build time, if any."""
        return self._insertion

    def event(self, tid: int, idx: int) -> Event:
        """The ``idx``-th (1-based) event of thread ``tid``."""
        if not 0 <= tid < self._n:
            raise PosetError(f"thread index {tid} out of range (n={self._n})")
        if not 1 <= idx <= self._lengths[tid]:
            raise PosetError(
                f"event index {idx} out of range on thread {tid} "
                f"(length {self._lengths[tid]})"
            )
        return self._chains[tid][idx - 1]

    def vc(self, tid: int, idx: int) -> Clock:
        """Vector clock of event ``(tid, idx)``; ``idx ≥ 1``."""
        return self._vcs[tid][idx - 1]

    def vc_table(self) -> Tuple[Tuple[Clock, ...], ...]:
        """The raw clock table (per thread, 0-based positions) for hot loops."""
        return self._vcs

    def packed_tables(self):
        """Flat-array clock tables for the packed kernels, computed once.

        Returns the cached :class:`repro.poset.packed.PackedPosetTables`
        (row-major ``clock_rows`` + per-thread column-major ``succ_cols``).
        The cache is per-poset and per-process: executors that ship the
        poset to workers rebuild the tables there (see ``__getstate__``).
        """
        if self._packed is None:
            from repro.poset.packed import build_packed_tables

            self._packed = build_packed_tables(self._n, self._lengths, self._vcs)
        return self._packed

    def events(self) -> Iterator[Event]:
        """All events, thread by thread."""
        for chain in self._chains:
            yield from chain

    def events_in_order(self, order: Optional[Sequence[EventId]] = None) -> Iterator[Event]:
        """Events in the given total order (default: recorded insertion)."""
        seq = order if order is not None else self._insertion
        if seq is None:
            raise PosetError("poset has no recorded insertion order")
        for tid, idx in seq:
            yield self.event(tid, idx)

    # ------------------------------------------------------------------ #
    # happened-before queries

    def happened_before(self, a: EventId, b: EventId) -> bool:
        """``a → b`` in Lamport's relation (strict)."""
        (ta, ka), (tb, kb) = a, b
        if ta == tb:
            return ka < kb
        return self.vc(tb, kb)[ta] >= ka

    def concurrent(self, a: EventId, b: EventId) -> bool:
        """Events are concurrent: neither happened before the other."""
        return a != b and not self.happened_before(a, b) and not self.happened_before(b, a)

    def num_hb_pairs(self) -> int:
        """``|H|``: the number of ordered happened-before pairs.

        Used by the work-complexity analysis (§3.4: topological sort costs
        ``O(|E| + |H|)``).  Quadratic scan; intended for reporting, not hot
        paths.
        """
        ids = [(t, k) for t in range(self._n) for k in range(1, self._lengths[t] + 1)]
        return sum(
            1 for a in ids for b in ids if a != b and self.happened_before(a, b)
        )

    def covering_edges(self) -> List[Tuple[EventId, EventId]]:
        """A set of DAG edges generating the happened-before relation.

        Contains the chain edges plus, for each event, one "message" edge
        from every thread whose component grew relative to the previous
        event on the same chain.  The result generates (but need not be the
        transitive reduction of) ``→``; it is what the topological-sort and
        serialization code consume.
        """
        edges: List[Tuple[EventId, EventId]] = []
        for tid in range(self._n):
            prev: Clock = (0,) * self._n
            for idx in range(1, self._lengths[tid] + 1):
                cur = self.vc(tid, idx)
                if idx > 1:
                    edges.append(((tid, idx - 1), (tid, idx)))
                for j in range(self._n):
                    if j != tid and cur[j] > prev[j] and cur[j] > 0:
                        edges.append(((j, cur[j]), (tid, idx)))
                prev = cur
        return edges

    # ------------------------------------------------------------------ #
    # cut queries (hot paths)

    def is_consistent(self, cut: Sequence[int]) -> bool:
        """Is ``cut`` a consistent global state of this poset?"""
        vcs = self._vcs
        lengths = self._lengths
        n = self._n
        for i in range(n):
            ci = cut[i]
            if ci < 0 or ci > lengths[i]:
                return False
            if ci:
                v = vcs[i][ci - 1]
                for j in range(n):
                    if v[j] > cut[j]:
                        return False
        return True

    def enabled(self, cut: Sequence[int], tid: int) -> bool:
        """Can thread ``tid`` execute its next event from ``cut``?

        True iff event ``(tid, cut[tid]+1)`` exists and all its causal
        predecessors are inside ``cut`` — i.e. advancing ``tid`` yields
        another consistent cut.  This is the "enabled" test of the
        BFS/lexical algorithms (paper Algorithm 2 line 8).
        """
        nxt = cut[tid] + 1
        if nxt > self._lengths[tid]:
            return False
        v = self._vcs[tid][nxt - 1]
        for j, cj in enumerate(cut):
            if j != tid and v[j] > cj:
                return False
        return True

    def frontier_events(self, cut: Sequence[int]) -> List[Optional[Event]]:
        """The maximal event of each thread in ``cut`` (``None`` where the
        thread has executed nothing) — ``G[i]`` in the paper's predicates."""
        out: List[Optional[Event]] = []
        for tid, c in enumerate(cut):
            out.append(self._chains[tid][c - 1] if c else None)
        return out

    # ------------------------------------------------------------------ #
    # misc

    def stats(self) -> Dict[str, int]:
        """Summary statistics used by the experiment tables."""
        return {
            "threads": self._n,
            "events": self.num_events,
            "max_chain": max(self._lengths) if self._n else 0,
            "min_chain": min(self._lengths) if self._n else 0,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Poset(n={self._n}, events={self.num_events})"
