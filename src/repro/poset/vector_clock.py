"""Vector clocks and the paper's clock-update rule (Algorithm 3).

A vector clock is an ``n``-vector of event counts.  For an event ``e``
executed by thread ``i``:

* ``e.vc[i]`` is the 1-based index of ``e`` within thread ``i``'s chain, and
* ``e.vc[j]`` (``j ≠ i``) is the index of the latest event of thread ``j``
  that happened before ``e``.

This is the Fidge/Mattern construction.  The crucial identification the
paper exploits (§2.2): ``e.vc``, read as a frontier vector, *is* the least
consistent global state ``Gmin(e)`` whose frontier contains ``e``.

Two clock flavors live here:

* :class:`VectorClock` — a small mutable clock object carried by simulated
  threads, locks, and monitors inside :mod:`repro.runtime`;
* plain tuples — the immutable clocks stored per event inside
  :class:`~repro.poset.poset.Poset`, which the enumeration inner loops
  consume without attribute-access overhead.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.types import Clock

__all__ = [
    "VectorClock",
    "calculate_vector_clock",
    "clock_leq",
    "clock_lt",
    "clock_concurrent",
    "merge_clocks",
]


def clock_leq(a: Sequence[int], b: Sequence[int]) -> bool:
    """Componentwise ``a ≤ b`` on clock vectors."""
    for x, y in zip(a, b):
        if x > y:
            return False
    return True


def clock_lt(a: Sequence[int], b: Sequence[int]) -> bool:
    """Strict clock order: ``a ≤ b`` and ``a ≠ b`` (i.e. *happened-before*
    when ``a`` and ``b`` are event clocks)."""
    return clock_leq(a, b) and tuple(a) != tuple(b)


def clock_concurrent(a: Sequence[int], b: Sequence[int]) -> bool:
    """True when neither clock dominates the other (concurrent events)."""
    return not clock_leq(a, b) and not clock_leq(b, a)


def merge_clocks(clocks: Iterable[Sequence[int]], n: int) -> Clock:
    """Componentwise max of clock vectors (empty merge → zero clock)."""
    acc = [0] * n
    for c in clocks:
        for i, v in enumerate(c):
            if v > acc[i]:
                acc[i] = v
    return tuple(acc)


class VectorClock:
    """Mutable vector clock attached to threads/locks in the runtime.

    The in-place mutation methods mirror the paper's Algorithm 3 so the
    monitoring layer reads as a direct transcription of the pseudo-code.
    """

    __slots__ = ("_v",)

    def __init__(self, n: int, values: Optional[Sequence[int]] = None):
        if values is None:
            self._v: List[int] = [0] * n
        else:
            if len(values) != n:
                raise ValueError(
                    f"clock of width {len(values)} does not match n={n}"
                )
            self._v = [int(x) for x in values]

    @property
    def width(self) -> int:
        """Number of threads the clock tracks."""
        return len(self._v)

    def snapshot(self) -> Clock:
        """Immutable copy of the current clock value."""
        return tuple(self._v)

    def tick(self, owner: int) -> None:
        """Increment the owner component (a local, process-ordered event)."""
        self._v[owner] += 1

    def merge_in(self, other: "VectorClock | Sequence[int]") -> None:
        """Componentwise-max this clock with ``other`` (receive/acquire)."""
        ov = other._v if isinstance(other, VectorClock) else other
        v = self._v
        for k, x in enumerate(ov):
            if x > v[k]:
                v[k] = x

    def copy_from(self, other: "VectorClock | Sequence[int]") -> None:
        """Overwrite this clock with ``other``'s value."""
        ov = other._v if isinstance(other, VectorClock) else other
        self._v[:] = list(ov)

    def __getitem__(self, k: int) -> int:
        return self._v[k]

    def __setitem__(self, k: int, value: int) -> None:
        self._v[k] = int(value)

    def __len__(self) -> int:
        return len(self._v)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VectorClock):
            return self._v == other._v
        if isinstance(other, (tuple, list)):
            return tuple(self._v) == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - clocks are mutable
        raise TypeError("VectorClock is mutable and unhashable; use snapshot()")

    def __repr__(self) -> str:
        return f"VectorClock({self._v})"


def calculate_vector_clock(vc_i: VectorClock, vc_j: VectorClock, owner: int) -> Clock:
    """The paper's Algorithm 3: synchronize two clocks and stamp a new event.

    ``vc_i`` is the clock of the thread executing the new event (its
    ``owner`` component is incremented); ``vc_j`` is the clock of the other
    party (a lock being acquired, a monitor, a joined thread, ...).  Both
    clocks are updated in place to the merged value — exactly lines 1–4 of
    Algorithm 3 — and the merged value is returned as the new event's clock.

    The explicit ``owner`` argument replaces the paper's convention that the
    first argument is always "thread i's clock": it makes the increment
    target unambiguous when clocks are stored on non-thread objects.
    """
    if vc_i.width != vc_j.width:
        raise ValueError("cannot synchronize clocks of different widths")
    vc_i.tick(owner)  # line 1: vci[i] ← vci[i] + 1
    vc_i.merge_in(vc_j)  # lines 2–3: vci[k] ← max(vci[k], vcj[k])
    vc_j.copy_from(vc_i)  # line 4: vcj ← vci
    return vc_i.snapshot()  # line 5: return vci
