"""JSON (de)serialization of posets.

Traces captured by the runtime monitor can be persisted and re-loaded so
offline experiments (Table 1) run on stable inputs.  The format stores the
event chains with their clocks and metadata plus the insertion order; it is
deliberately plain JSON so posets can be inspected and diffed by hand.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import PosetError
from repro.poset.event import Access, Event
from repro.poset.poset import Poset

__all__ = ["poset_to_dict", "poset_from_dict", "save_poset", "load_poset"]

_FORMAT_VERSION = 1


def poset_to_dict(poset: Poset) -> Dict[str, Any]:
    """Serialize a poset to a JSON-compatible dictionary."""
    return {
        "version": _FORMAT_VERSION,
        "num_threads": poset.num_threads,
        "chains": [
            [
                {
                    "vc": list(e.vc),
                    "kind": e.kind,
                    "obj": e.obj,
                    "accesses": [
                        {"op": a.op, "var": a.var, "is_init": a.is_init}
                        for a in e.accesses
                    ],
                }
                for e in (poset.event(t, k) for k in range(1, poset.lengths[t] + 1))
            ]
            for t in range(poset.num_threads)
        ],
        "insertion": [list(eid) for eid in poset.insertion]
        if poset.insertion is not None
        else None,
    }


def poset_from_dict(data: Dict[str, Any]) -> Poset:
    """Deserialize a poset from :func:`poset_to_dict`'s format."""
    if data.get("version") != _FORMAT_VERSION:
        raise PosetError(f"unsupported poset format version {data.get('version')!r}")
    chains = []
    for tid, chain in enumerate(data["chains"]):
        events = []
        for pos, rec in enumerate(chain, start=1):
            events.append(
                Event(
                    tid=tid,
                    idx=pos,
                    vc=tuple(rec["vc"]),
                    kind=rec.get("kind", "internal"),
                    obj=rec.get("obj"),
                    accesses=tuple(
                        Access(a["op"], a["var"], a.get("is_init", False))
                        for a in rec.get("accesses", ())
                    ),
                )
            )
        chains.append(events)
    insertion = data.get("insertion")
    return Poset(
        chains,
        insertion=[tuple(eid) for eid in insertion] if insertion is not None else None,
    )


def save_poset(poset: Poset, path: Union[str, Path]) -> None:
    """Write a poset to ``path`` as JSON."""
    Path(path).write_text(json.dumps(poset_to_dict(poset)))


def load_poset(path: Union[str, Path]) -> Poset:
    """Load a poset previously written by :func:`save_poset`."""
    return poset_from_dict(json.loads(Path(path).read_text()))
