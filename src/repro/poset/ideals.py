"""Exact counting of consistent global states (order ideals).

``i(P)`` — the number of consistent global states — appears throughout the
paper's complexity analysis and in Table 1's ``#global states`` column.
Two independent counters are provided so the enumeration algorithms can be
cross-validated against something that shares none of their code:

* :func:`count_ideals` — a divide-and-conquer dynamic program over
  sub-intervals of the lattice.  For a maximal event ``e`` of the interval,
  ideals either exclude ``e`` (drop it) or include it (force its down-set):
  ``i(lo, hi) = i(lo, hi−e) + i(lo ∨ vc(e), hi)``, memoized on the
  ``(lo, hi)`` pair.  This is exponentially faster than enumeration on
  posets with many concurrent chains and is also used to *predict* state
  counts when sizing benchmarks.
* :func:`count_ideals_by_enumeration` — a dedup-set BFS walk; the trivial
  reference.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import EnumerationError
from repro.poset.poset import Poset
from repro.types import Cut
from repro.util.cuts import cut_join, cut_leq, zero_cut

__all__ = ["count_ideals", "count_ideals_by_enumeration", "count_ideals_in_interval"]


#: Default cap on the DP's memo table.  Sparse posets (few cross edges)
#: make the interval DP degenerate — its strength is synchronized posets —
#: so the cap turns a memory blow-up into a clean error callers can catch
#: and fall back to enumeration-based counting.
DEFAULT_MEMO_LIMIT = 2_000_000


def count_ideals(poset: Poset, memo_limit: int = DEFAULT_MEMO_LIMIT) -> int:
    """Number of consistent global states of ``poset`` (including the empty
    state), via the memoized interval DP."""
    return count_ideals_in_interval(
        poset, zero_cut(poset.num_threads), poset.lengths, memo_limit=memo_limit
    )


def count_ideals_in_interval(
    poset: Poset, lo: Cut, hi: Cut, memo_limit: int = DEFAULT_MEMO_LIMIT
) -> int:
    """Number of consistent cuts ``G`` with ``lo ≤ G ≤ hi`` componentwise.

    ``lo`` need not itself be consistent; the count is over consistent cuts
    within the box.  Raises :class:`EnumerationError` on a malformed box or
    when the memo table exceeds ``memo_limit`` entries (degenerate inputs).
    """
    n = poset.num_threads
    if len(lo) != n or len(hi) != n:
        raise EnumerationError("interval bounds have wrong width")
    for i in range(n):
        if hi[i] > poset.lengths[i]:
            raise EnumerationError(
                f"upper bound {hi} exceeds chain length on thread {i}"
            )
    memo: Dict[Tuple[Cut, Cut], int] = {}

    def is_consistent_within(cut: Cut) -> bool:
        # consistency restricted to the box: standard consistency test.
        return poset.is_consistent(cut)

    def rec(lo_: Cut, hi_: Cut) -> int:
        if not cut_leq(lo_, hi_):
            return 0
        if lo_ == hi_:
            return 1 if is_consistent_within(lo_) else 0
        key = (lo_, hi_)
        hit = memo.get(key)
        if hit is not None:
            return hit
        # pick the thread with the largest slack to split on (keeps the
        # recursion balanced); its maximal in-range event is the pivot.
        pivot = -1
        slack = -1
        for t in range(len(lo_)):
            s = hi_[t] - lo_[t]
            if s > slack:
                slack = s
                pivot = t
        e_idx = hi_[pivot]
        # Branch 1: cuts not reaching event (pivot, e_idx).
        without = rec(lo_, hi_[:pivot] + (e_idx - 1,) + hi_[pivot + 1 :])
        # Branch 2: cuts including it — force its causal past via the clock.
        vc = poset.vc(pivot, e_idx)
        forced = cut_join(lo_, vc)
        with_e = rec(forced, hi_) if cut_leq(forced, hi_) else 0
        result = without + with_e
        if len(memo) >= memo_limit:
            raise EnumerationError(
                f"ideal-counting memo exceeded {memo_limit} entries; the "
                "poset is too sparse for the interval DP — count by "
                "enumeration instead"
            )
        memo[key] = result
        return result

    return rec(lo, hi)


def count_ideals_by_enumeration(poset: Poset) -> int:
    """Reference counter: explicit BFS over the lattice with a visited set.

    Memory grows with the number of states — only use on small posets
    (tests and validation).
    """
    start = zero_cut(poset.num_threads)
    seen = {start}
    frontier = [start]
    n = poset.num_threads
    while frontier:
        nxt = []
        for cut in frontier:
            for tid in range(n):
                if poset.enabled(cut, tid):
                    succ = cut[:tid] + (cut[tid] + 1,) + cut[tid + 1 :]
                    if succ not in seen:
                        seen.add(succ)
                        nxt.append(succ)
        frontier = nxt
    return len(seen)
