"""Topological total orders ``→p`` over a poset's events.

ParaMount's interval partition is parameterized by *any* linear extension
of happened-before (paper §3.1, Property 1).  Different extensions yield
different interval shapes — and hence different parallel load balance — so
we provide several and an ablation compares them
(:mod:`repro.experiments` ablations):

* :func:`topological_order` — Kahn's algorithm with a FIFO tie-break
  (breadth-first flavor, tends to interleave threads evenly);
* :func:`lexicographic_topological_order` — always advances the smallest
  ready thread id (depth-first along thread 0 first; worst-case skewed
  intervals);
* :func:`random_topological_order` — uniform-ish random ready choice,
  seeded;
* :func:`insertion_order` — the order recorded by an online builder.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Tuple

from repro.errors import PosetError
from repro.poset.poset import Poset
from repro.types import EventId
from repro.util.rng import DeterministicRng

__all__ = [
    "topological_order",
    "lexicographic_topological_order",
    "random_topological_order",
    "insertion_order",
    "is_linear_extension",
]


def _ready(poset: Poset, progress: List[int], tid: int) -> bool:
    """Thread ``tid``'s next event has all causal predecessors emitted."""
    nxt = progress[tid] + 1
    if nxt > poset.lengths[tid]:
        return False
    v = poset.vc(tid, nxt)
    for j in range(poset.num_threads):
        if j != tid and v[j] > progress[j]:
            return False
    return True


def topological_order(poset: Poset) -> Tuple[EventId, ...]:
    """Kahn's algorithm with FIFO tie-break over threads.

    Work ``O(|E|·n)`` with the clock-based ready test — within the paper's
    ``O(|E| + |H|)`` budget since each ready test inspects one clock.
    """
    n = poset.num_threads
    progress = [0] * n
    order: List[EventId] = []
    queue: deque[int] = deque(t for t in range(n) if _ready(poset, progress, t))
    queued = [t in queue for t in range(n)]
    total = poset.num_events
    while queue:
        tid = queue.popleft()
        queued[tid] = False
        if not _ready(poset, progress, tid):
            continue
        progress[tid] += 1
        order.append((tid, progress[tid]))
        for t in range(n):
            if not queued[t] and _ready(poset, progress, t):
                queue.append(t)
                queued[t] = True
    if len(order) != total:
        raise PosetError("poset is cyclic: topological sort did not cover all events")
    return tuple(order)


def lexicographic_topological_order(poset: Poset) -> Tuple[EventId, ...]:
    """Always advance the smallest ready thread id (skewed extension)."""
    n = poset.num_threads
    progress = [0] * n
    order: List[EventId] = []
    total = poset.num_events
    while len(order) < total:
        for tid in range(n):
            if _ready(poset, progress, tid):
                progress[tid] += 1
                order.append((tid, progress[tid]))
                break
        else:
            raise PosetError("poset is cyclic: no ready thread")
    return tuple(order)


def random_topological_order(poset: Poset, rng: DeterministicRng) -> Tuple[EventId, ...]:
    """A random linear extension: at each step pick a uniformly random ready
    thread.  (Uniform over *threads*, not over all extensions — sufficient
    for the load-balance ablation.)"""
    n = poset.num_threads
    progress = [0] * n
    order: List[EventId] = []
    total = poset.num_events
    while len(order) < total:
        ready = [t for t in range(n) if _ready(poset, progress, t)]
        if not ready:
            raise PosetError("poset is cyclic: no ready thread")
        tid = rng.choice(ready)
        progress[tid] += 1
        order.append((tid, progress[tid]))
    return tuple(order)


def insertion_order(poset: Poset) -> Tuple[EventId, ...]:
    """The total order recorded when the poset was built online.

    Raises :class:`PosetError` when the poset carries no insertion order.
    """
    if poset.insertion is None:
        raise PosetError("poset has no recorded insertion order")
    return poset.insertion


def is_linear_extension(poset: Poset, order: Sequence[EventId]) -> bool:
    """Check Property 1: ``e → f ⇒ e →p f`` and the order covers each event
    exactly once."""
    n = poset.num_threads
    if sorted(order) != sorted(
        (t, k) for t in range(n) for k in range(1, poset.lengths[t] + 1)
    ):
        return False
    position = {eid: i for i, eid in enumerate(order)}
    seen = [0] * n
    for tid, idx in order:
        if idx != seen[tid] + 1:
            return False  # events of a thread must appear in chain order
        seen[tid] = idx
        v = poset.vc(tid, idx)
        for j in range(n):
            if j != tid and v[j] > 0:
                if position[(j, v[j])] > position[(tid, idx)]:
                    return False
    return True
