"""Poset-of-events substrate.

A concurrent execution is modeled as a poset ``P = (E, →)`` of events under
Lamport's happened-before relation (paper §2.1).  Events of each thread form
a chain; vector clocks encode the relation compactly; consistent global
states (order ideals) are represented as frontier vectors ("cuts").

This package provides:

* :class:`~repro.poset.vector_clock.VectorClock` and the paper's
  Algorithm 3 clock update,
* :class:`~repro.poset.event.Event` and
  :class:`~repro.poset.poset.Poset` (chains + clock tables + HB queries),
* :class:`~repro.poset.builder.PosetBuilder` for offline and online
  (causality-respecting, incremental) construction,
* topological sorts / linear extensions (:mod:`repro.poset.topological`),
* lattice operations on cuts (:mod:`repro.poset.lattice`),
* exact ideal counting for cross-validation (:mod:`repro.poset.ideals`),
* a random distributed-computation generator reproducing the paper's
  ``d-300``/``d-500``/``d-10k`` benchmark family
  (:mod:`repro.poset.random_posets`), and
* JSON (de)serialization (:mod:`repro.poset.io`).
"""

from repro.poset.builder import PosetBuilder
from repro.poset.event import Event
from repro.poset.ideals import count_ideals, count_ideals_by_enumeration
from repro.poset.lattice import (
    consistent_predecessors,
    consistent_successors,
    is_consistent_cut,
    minimal_consistent_extension,
)
from repro.poset.poset import Poset
from repro.poset.random_posets import RandomComputationSpec, random_computation
from repro.poset.topological import (
    insertion_order,
    is_linear_extension,
    lexicographic_topological_order,
    random_topological_order,
    topological_order,
)
from repro.poset.vector_clock import VectorClock, calculate_vector_clock

__all__ = [
    "Event",
    "Poset",
    "PosetBuilder",
    "VectorClock",
    "calculate_vector_clock",
    "topological_order",
    "lexicographic_topological_order",
    "random_topological_order",
    "insertion_order",
    "is_linear_extension",
    "is_consistent_cut",
    "consistent_successors",
    "consistent_predecessors",
    "minimal_consistent_extension",
    "count_ideals",
    "count_ideals_by_enumeration",
    "RandomComputationSpec",
    "random_computation",
]
