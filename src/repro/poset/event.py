"""Event objects stored in a poset.

An :class:`Event` records who executed it (thread ``tid``), its 1-based
position ``idx`` within that thread's chain, its vector clock, and optional
operation metadata used by the predicate detectors:

* ``kind`` — operation kind (``"internal"``, ``"read"``, ``"write"``,
  ``"acquire"``, ``"release"``, ``"fork"``, ``"join"``, ``"wait"``,
  ``"notify"``, ...);
* ``obj`` — the shared object the operation touches (variable name, lock
  name, or forked/joined thread id), if any;
* ``accesses`` — for merged *event collections* (paper §4.4), the set of
  per-variable accesses this event stands for.

Events are immutable; equality is by identity of ``(tid, idx)`` within a
poset plus the clock, which uniquely determines an event of an execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.types import Clock, EventId

__all__ = ["Event", "Access", "INTERNAL", "READ", "WRITE", "ACQUIRE", "RELEASE", "FORK", "JOIN", "WAIT", "NOTIFY"]

# Canonical event-kind constants (strings keep traces human-readable).
INTERNAL = "internal"
READ = "read"
WRITE = "write"
ACQUIRE = "acquire"
RELEASE = "release"
FORK = "fork"
JOIN = "join"
WAIT = "wait"
NOTIFY = "notify"


@dataclass(frozen=True)
class Access:
    """A single variable access inside an event collection (paper §4.4).

    ``op`` is :data:`READ` or :data:`WRITE`; ``var`` names the shared
    variable; ``is_init`` marks initialization writes, which the paper's
    detector deliberately ignores when reporting races (§5.2: "we do not
    consider initialization events to ever cause the data race").
    """

    op: str
    var: str
    is_init: bool = False

    def conflicts_with(self, other: "Access") -> bool:
        """True when the two accesses race if concurrent: same variable and
        at least one is a write."""
        return self.var == other.var and (self.op == WRITE or other.op == WRITE)


@dataclass(frozen=True)
class Event:
    """One event of a concurrent execution.

    The clock invariant ``vc[tid] == idx`` always holds (checked by the
    poset builder); it is what lets ``Gmin(e)`` be read straight off the
    clock (paper §2.2).
    """

    tid: int
    idx: int
    vc: Clock
    kind: str = INTERNAL
    obj: Optional[str] = None
    accesses: Tuple[Access, ...] = field(default=())
    #: Optional *weak* clock tracking only process order and fork/join (no
    #: lock-atomicity edges).  The RV-runtime baseline's front-end fills it
    #: to model jPredictor-style sliced causality, whose deliberately weaker
    #: order is the source of that tool's benign extra race reports
    #: (see :mod:`repro.detector.rv_runtime`).
    weak_vc: Optional[Clock] = None

    @property
    def eid(self) -> EventId:
        """The event's identifier ``(tid, idx)``."""
        return (self.tid, self.idx)

    def happened_before(self, other: "Event") -> bool:
        """Lamport happened-before via clock comparison: ``self → other``.

        For Fidge/Mattern clocks, ``e → f`` iff ``e.vc[e.tid] ≤
        f.vc[e.tid]`` and ``e ≠ f``.
        """
        if self.tid == other.tid:
            return self.idx < other.idx
        return self.vc[self.tid] <= other.vc[self.tid]

    def concurrent_with(self, other: "Event") -> bool:
        """True when neither event happened before the other."""
        return (
            self.eid != other.eid
            and not self.happened_before(other)
            and not other.happened_before(self)
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = f"{self.kind}" if self.obj is None else f"{self.kind}({self.obj})"
        return f"e{self.tid}[{self.idx}]:{tag}"
