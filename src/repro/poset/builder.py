"""Incremental poset construction.

:class:`PosetBuilder` supports the two construction styles the paper uses:

* **offline** (§3): append events with explicit causal dependencies; the
  builder computes Fidge/Mattern clocks, records the insertion order, and
  finally freezes into an immutable :class:`~repro.poset.poset.Poset`;
* **online** (§4, Algorithm 4): the runtime monitor computes clocks itself
  (via Algorithm 3 on thread/lock clocks) and appends pre-stamped events
  with :meth:`append_stamped`; the builder validates that insertion order
  is a linear extension of happened-before (Property 1) — the invariant the
  online algorithm's correctness rests on.

The builder also exposes :meth:`snapshot_of_maxima` — the paper's
``P.snapshotOfMaximalEventsOfThreads()`` (Algorithm 4 line 4) — returning
the current per-thread maximal cut, which serves as ``Gbnd(e)`` online.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import EventOrderError, PosetError
from repro.poset.event import Access, Event
from repro.poset.poset import Poset
from repro.types import Clock, Cut, EventId

__all__ = ["PosetBuilder", "BuilderView"]


class PosetBuilder:
    """Builds a poset one event at a time, maintaining vector clocks.

    Thread-safe: online construction may be driven from many simulated or
    real threads, so the mutating entry points take an internal mutex —
    exactly the paper's "atomic block" at Algorithm 4 lines 1–5.
    """

    def __init__(self, num_threads: int):
        if num_threads < 1:
            raise PosetError(f"need at least one thread, got {num_threads}")
        self._n = num_threads
        self._chains: List[List[Event]] = [[] for _ in range(num_threads)]
        self._insertion: List[EventId] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # accessors

    @property
    def num_threads(self) -> int:
        """Number of threads the builder was created for."""
        return self._n

    @property
    def num_events(self) -> int:
        """Events appended so far."""
        return len(self._insertion)

    def chain_length(self, tid: int) -> int:
        """Number of events appended on thread ``tid``."""
        return len(self._chains[tid])

    def insertion_order(self) -> Tuple[EventId, ...]:
        """The total order ``→p`` in which events were appended."""
        return tuple(self._insertion)

    def last_vc(self, tid: int) -> Clock:
        """Clock of the last event on ``tid`` (zero clock if none)."""
        chain = self._chains[tid]
        return chain[-1].vc if chain else (0,) * self._n

    def event(self, tid: int, idx: int) -> Event:
        """The ``idx``-th (1-based) appended event of thread ``tid``."""
        if not 1 <= idx <= len(self._chains[tid]):
            raise PosetError(f"no event ({tid},{idx}) appended yet")
        return self._chains[tid][idx - 1]

    def snapshot_of_maxima(self) -> Cut:
        """Current per-thread maximal cut — ``Gbnd`` for the online worker.

        Consistency argument (paper §4.2): every appended event's causal
        predecessors were appended before it, so the vector of current
        chain lengths always forms a consistent cut.
        """
        with self._lock:
            return tuple(len(c) for c in self._chains)

    # ------------------------------------------------------------------ #
    # offline construction

    def append(
        self,
        tid: int,
        deps: Iterable[EventId] = (),
        kind: str = "internal",
        obj: Optional[str] = None,
        accesses: Sequence[Access] = (),
    ) -> Event:
        """Append an event with explicit extra causal dependencies.

        The event's clock is the componentwise max of the thread's previous
        clock and the clocks of all ``deps``, with the own component
        incremented.  ``deps`` must already be present (otherwise the
        insertion order would not extend happened-before) — violations
        raise :class:`EventOrderError`.
        """
        with self._lock:
            if not 0 <= tid < self._n:
                raise PosetError(f"thread index {tid} out of range")
            vc = list(self.last_vc(tid))
            for dep_tid, dep_idx in deps:
                if not 0 <= dep_tid < self._n:
                    raise PosetError(f"dependency thread {dep_tid} out of range")
                if dep_idx < 1 or dep_idx > len(self._chains[dep_tid]):
                    raise EventOrderError(
                        f"dependency ({dep_tid},{dep_idx}) not inserted yet"
                    )
                dep_vc = self._chains[dep_tid][dep_idx - 1].vc
                for k in range(self._n):
                    if dep_vc[k] > vc[k]:
                        vc[k] = dep_vc[k]
            vc[tid] += 1
            event = Event(
                tid=tid,
                idx=vc[tid],
                vc=tuple(vc),
                kind=kind,
                obj=obj,
                accesses=tuple(accesses),
            )
            self._append_validated(event)
            return event

    # ------------------------------------------------------------------ #
    # online construction

    def append_stamped(self, event: Event) -> Cut:
        """Append an event whose clock was computed externally (Algorithm 3).

        Validates the online invariants and returns the *boundary snapshot*
        taken atomically with the insertion — i.e. performs the whole
        atomic block of Algorithm 4 (insert, ``Gmin`` from the clock,
        ``Gbnd`` from the maxima snapshot) in one critical section, and
        returns ``Gbnd``; ``Gmin`` is just ``event.vc``.
        """
        with self._lock:
            self._append_validated(event)
            return tuple(len(c) for c in self._chains)

    def _append_validated(self, event: Event) -> None:
        tid = event.tid
        chain = self._chains[tid]
        expected_idx = len(chain) + 1
        if event.idx != expected_idx:
            raise EventOrderError(
                f"event {event} appended out of order on thread {tid}: "
                f"expected idx {expected_idx}"
            )
        if len(event.vc) != self._n:
            raise PosetError(f"event {event} clock width != n={self._n}")
        if event.vc[tid] != event.idx:
            raise PosetError(f"event {event} violates vc[tid] == idx")
        # Property 1: every causal predecessor must already be inserted.
        for j in range(self._n):
            if event.vc[j] > len(self._chains[j]) and j != tid:
                raise EventOrderError(
                    f"event {event} depends on ({j},{event.vc[j]}), "
                    "which has not been inserted — insertion order must be "
                    "a linear extension of happened-before"
                )
        if chain and not all(a <= b for a, b in zip(chain[-1].vc, event.vc)):
            raise EventOrderError(
                f"clock of {event} is not monotone along thread {tid}"
            )
        chain.append(event)
        self._insertion.append(event.eid)

    # ------------------------------------------------------------------ #
    # live view (online enumeration)

    def view(self) -> "BuilderView":
        """A live, read-only poset view over the events inserted so far.

        The view implements the subset of the :class:`Poset` interface the
        enumeration algorithms consume (``num_threads``, ``lengths``,
        ``vc``, ``enabled``, ``is_consistent``).  It is safe to read
        concurrently with further insertions because chains only grow and
        already-inserted events are immutable; an online worker only ever
        dereferences indices at or below its ``Gbnd`` snapshot, all of
        which were inserted before the snapshot was taken (paper §4.2,
        Theorem 3's non-interference argument).
        """
        return BuilderView(self)

    # ------------------------------------------------------------------ #
    # freezing

    def build(self) -> Poset:
        """Freeze into an immutable :class:`Poset` carrying the insertion
        order as its total order ``→p``."""
        with self._lock:
            return Poset(
                [list(chain) for chain in self._chains],
                insertion=list(self._insertion),
            )


class BuilderView:
    """Read-only, growing poset view over a :class:`PosetBuilder`.

    Duck-types the query surface of :class:`~repro.poset.poset.Poset` that
    the enumeration algorithms use.  ``lengths`` reflects the *current*
    insertion state; callers enumerate only within boundary snapshots they
    obtained atomically, so growth never invalidates an ongoing walk.
    """

    __slots__ = ("_builder",)

    def __init__(self, builder: PosetBuilder):
        self._builder = builder

    @property
    def num_threads(self) -> int:
        """Number of threads of the underlying builder."""
        return self._builder.num_threads

    @property
    def lengths(self) -> Cut:
        """Current per-thread chain lengths (monotonically growing)."""
        return tuple(len(c) for c in self._builder._chains)

    def vc(self, tid: int, idx: int) -> Clock:
        """Clock of inserted event ``(tid, idx)``; ``idx ≥ 1``."""
        return self._builder._chains[tid][idx - 1].vc

    def event(self, tid: int, idx: int) -> Event:
        """The inserted event ``(tid, idx)``."""
        return self._builder.event(tid, idx)

    def enabled(self, cut, tid: int) -> bool:
        """Same enabled test as :meth:`Poset.enabled`, over inserted events."""
        chain = self._builder._chains[tid]
        nxt = cut[tid] + 1
        if nxt > len(chain):
            return False
        v = chain[nxt - 1].vc
        for j, cj in enumerate(cut):
            if j != tid and v[j] > cj:
                return False
        return True

    def is_consistent(self, cut) -> bool:
        """Same consistency test as :meth:`Poset.is_consistent`."""
        chains = self._builder._chains
        for i, ci in enumerate(cut):
            if ci < 0 or ci > len(chains[i]):
                return False
            if ci:
                v = chains[i][ci - 1].vc
                for j, cj in enumerate(cut):
                    if v[j] > cj:
                        return False
        return True

    def frontier_events(self, cut):
        """Maximal event per thread in ``cut`` (``None`` for empty threads)."""
        chains = self._builder._chains
        return [chains[t][c - 1] if c else None for t, c in enumerate(cut)]
