"""Deterministic random number utilities.

Everything stochastic in the library — random poset generation, the seeded
program scheduler, workload drivers — draws from a
:class:`DeterministicRng` so that every experiment, test, and benchmark is
exactly reproducible from a single integer seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, TypeVar

__all__ = ["DeterministicRng", "derive_seed"]

T = TypeVar("T")

_DERIVE_MIX = 0x9E3779B97F4A7C15  # golden-ratio mix constant (splitmix64)


def derive_seed(seed: int, *streams: object) -> int:
    """Derive a child seed from ``seed`` and a sequence of stream labels.

    Uses a splitmix64-style mix so that ``derive_seed(s, "a")`` and
    ``derive_seed(s, "b")`` are decorrelated and the derivation is stable
    across processes and Python versions (unlike :func:`hash`, which is
    salted for strings).
    """
    h = seed & 0xFFFFFFFFFFFFFFFF
    for stream in streams:
        data = repr(stream).encode("utf-8")
        for byte in data:
            h = (h ^ byte) & 0xFFFFFFFFFFFFFFFF
            h = (h * _DERIVE_MIX) & 0xFFFFFFFFFFFFFFFF
            h ^= h >> 29
    return h


class DeterministicRng:
    """A thin, explicitly-seeded wrapper over :class:`random.Random`.

    Instances never consult global state; forking a named substream yields
    an independent generator, which lets concurrent components (e.g. one
    generator per simulated thread) draw without contending on shared
    state — the idiom mirrors per-rank RNG streams in MPI codes.
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def fork(self, *streams: object) -> "DeterministicRng":
        """Return an independent generator for the given substream labels."""
        return DeterministicRng(derive_seed(self.seed, *streams))

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly chosen element of a non-empty sequence."""
        return self._rng.choice(seq)

    def shuffle(self, seq: List[T]) -> None:
        """In-place Fisher–Yates shuffle."""
        self._rng.shuffle(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """``k`` distinct elements sampled without replacement."""
        return self._rng.sample(seq, k)

    def geometric(self, p: float, cap: Optional[int] = None) -> int:
        """Geometric variate ≥ 1 with success probability ``p``.

        Used by workload generators for burst lengths; ``cap`` bounds the
        tail so pathological draws cannot blow up a benchmark.
        """
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        k = 1
        while self._rng.random() >= p:
            k += 1
            if cap is not None and k >= cap:
                return cap
        return k

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """One element drawn with probability proportional to its weight."""
        return self._rng.choices(items, weights=weights, k=1)[0]
