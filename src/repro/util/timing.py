"""Wall-clock timing helpers used by the experiment harness.

The paper reports wall-clock seconds; we report both wall-clock time and
(for the parallel experiments on a GIL-constrained interpreter) modeled
time from the simulated parallel machine.  See ``DESIGN.md`` §3.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Stopwatch", "format_duration"]


class Stopwatch:
    """A restartable wall-clock stopwatch based on ``perf_counter``.

    Usage::

        with Stopwatch() as sw:
            work()
        print(sw.elapsed)
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        """Start (or resume) the stopwatch."""
        if self._start is None:
            self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return total elapsed seconds."""
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self._elapsed

    def reset(self) -> None:
        """Zero the accumulated time (stops the watch if running)."""
        self._start = None
        self._elapsed = 0.0

    @property
    def elapsed(self) -> float:
        """Total elapsed seconds, including the current run if running."""
        if self._start is not None:
            return self._elapsed + (time.perf_counter() - self._start)
        return self._elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


def format_duration(seconds: float) -> str:
    """Render a duration compactly: ``852ms``, ``3.21s``, ``2m14s``."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.0f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    minutes = int(seconds // 60)
    return f"{minutes}m{seconds - 60 * minutes:.0f}s"
