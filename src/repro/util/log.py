"""The ``repro`` logger hierarchy.

Library rules (stdlib ``logging`` best practice):

* every module logs through ``get_logger(__name__)``-style child loggers
  under the single ``repro`` root;
* the library installs only a ``NullHandler`` — importing repro never
  configures logging, prints nothing, and leaves handler policy to the
  application;
* the CLI opts into output with :func:`configure_logging`
  (``--log-level``/``-v``), which attaches one stream handler to the
  ``repro`` root.

Warnings carry structured ``extra={}`` fields (degradation source/target,
quarantine kind, timeout seconds…) so a custom handler — e.g.
:class:`repro.obs.observer.SpanLogHandler`, which turns records into
instant spans on a trace — can ship them without parsing messages.
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["get_logger", "configure_logging", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"

# The library never emits to a handler the application didn't install.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("resilience")`` → ``repro.resilience``; module callers
    usually pass a dotted suffix mirroring their module path.  Passing a
    name already rooted at ``repro`` (e.g. ``__name__``) is accepted as-is.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(
    level: Optional[str] = None,
    verbosity: int = 0,
    stream=None,
) -> logging.Logger:
    """Attach a stream handler to the ``repro`` root (CLI entry point).

    ``level`` is an explicit name (``"DEBUG"``…); otherwise ``verbosity``
    maps ``0 → WARNING``, ``1 → INFO``, ``≥2 → DEBUG`` (the CLI's ``-v`` /
    ``-vv``).  Idempotent: re-configuring replaces the previously attached
    stream handler instead of stacking duplicates.
    """
    if level is not None:
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
    elif verbosity >= 2:
        resolved = logging.DEBUG
    elif verbosity == 1:
        resolved = logging.INFO
    else:
        resolved = logging.WARNING

    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_cli_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    handler._repro_cli_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(resolved)
    return root
