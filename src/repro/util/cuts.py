"""Pure functions on cut vectors (frontiers / vector clocks).

A cut is a tuple of non-negative per-thread event counts.  The natural
partial order on cuts is componentwise ``≤`` — exactly the order the paper
uses to define intervals of global states:

    ``G ≤ G' ≡ ∀i : G[i] ≤ G'[i]``                      (paper §3.1)

These helpers are deliberately allocation-light: they are called inside the
innermost loops of every enumeration algorithm.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.types import Cut

__all__ = [
    "zero_cut",
    "cut_leq",
    "cut_lt",
    "cut_geq",
    "cut_join",
    "cut_meet",
    "cut_max",
    "cut_dominates",
    "lex_compare",
    "cuts_comparable",
    "validate_cut_shape",
]


def zero_cut(n: int) -> Cut:
    """Return the empty global state for ``n`` threads (no events executed)."""
    return (0,) * n


def cut_leq(a: Sequence[int], b: Sequence[int]) -> bool:
    """Componentwise ``a ≤ b`` (the lattice order on global states)."""
    for x, y in zip(a, b):
        if x > y:
            return False
    return True


def cut_geq(a: Sequence[int], b: Sequence[int]) -> bool:
    """Componentwise ``a ≥ b``."""
    return cut_leq(b, a)


def cut_lt(a: Sequence[int], b: Sequence[int]) -> bool:
    """Strict lattice order: ``a ≤ b`` and ``a ≠ b``."""
    return cut_leq(a, b) and tuple(a) != tuple(b)


def cut_join(a: Sequence[int], b: Sequence[int]) -> Cut:
    """Least upper bound (componentwise max).

    The join of two consistent cuts is consistent — the set of consistent
    cuts forms a distributive lattice (Mattern 1988); the property is
    exercised by the property-based tests.
    """
    return tuple(x if x >= y else y for x, y in zip(a, b))


def cut_meet(a: Sequence[int], b: Sequence[int]) -> Cut:
    """Greatest lower bound (componentwise min)."""
    return tuple(x if x <= y else y for x, y in zip(a, b))


def cut_max(cuts: Iterable[Sequence[int]], n: int) -> Cut:
    """Join of an arbitrary collection of cuts (the empty join is the zero
    cut for ``n`` threads)."""
    acc = [0] * n
    for c in cuts:
        for i, v in enumerate(c):
            if v > acc[i]:
                acc[i] = v
    return tuple(acc)


def cut_dominates(a: Sequence[int], b: Sequence[int]) -> bool:
    """True when ``a`` strictly dominates ``b`` in *every* component."""
    for x, y in zip(a, b):
        if x <= y:
            return False
    return True


def lex_compare(a: Sequence[int], b: Sequence[int]) -> int:
    """Three-way lexicographic comparison with thread 0 most significant.

    Returns ``-1`` / ``0`` / ``+1``.  The lexical enumeration algorithm
    (Ganter; Garg 2003; paper Algorithm 2) walks global states in exactly
    this order.
    """
    for x, y in zip(a, b):
        if x != y:
            return -1 if x < y else 1
    return 0


def cuts_comparable(a: Sequence[int], b: Sequence[int]) -> bool:
    """True when ``a ≤ b`` or ``b ≤ a`` in the lattice order."""
    return cut_leq(a, b) or cut_leq(b, a)


def validate_cut_shape(cut: Sequence[int], n: int) -> Cut:
    """Validate that ``cut`` has ``n`` non-negative components; return it as
    a tuple.  Raises :class:`ValueError` otherwise."""
    t = tuple(cut)
    if len(t) != n:
        raise ValueError(f"cut {t!r} has {len(t)} components, expected {n}")
    for v in t:
        if not isinstance(v, int) or v < 0:
            raise ValueError(f"cut {t!r} has invalid component {v!r}")
    return t
