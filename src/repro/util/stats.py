"""Tiny statistics helpers for experiment reporting.

Only the handful of aggregates the experiment tables need — the point is
to keep the benchmark harness dependency-free and deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

__all__ = ["Summary", "summarize", "geometric_mean", "percentile"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stddev: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.4g} min={self.minimum:.4g} "
            f"max={self.maximum:.4g} sd={self.stddev:.4g}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary`; raises ``ValueError`` on empty input."""
    data: List[float] = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarize an empty sample")
    n = len(data)
    mean = sum(data) / n
    var = sum((v - mean) ** 2 for v in data) / n
    return Summary(
        count=n,
        mean=mean,
        minimum=min(data),
        maximum=max(data),
        stddev=math.sqrt(var),
    )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Speedup factors are ratios, so the paper-style "on average X times
    faster" claims are aggregated geometrically.
    """
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot take the geometric mean of an empty sample")
    for v in data:
        if v <= 0:
            raise ValueError(f"geometric mean requires positive values, got {v}")
    return math.exp(sum(math.log(v) for v in data) / len(data))


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile, ``q`` in ``[0, 100]``."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]
