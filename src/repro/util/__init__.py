"""Small shared utilities: deterministic RNG helpers, timing, statistics,
ASCII table/figure rendering, and cut/vector arithmetic helpers."""

from repro.util.cuts import (
    cut_dominates,
    cut_join,
    cut_leq,
    cut_lt,
    cut_max,
    cut_meet,
    lex_compare,
    zero_cut,
)
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.stats import Summary, geometric_mean, summarize
from repro.util.tables import TextTable, format_float, format_int
from repro.util.timing import Stopwatch, format_duration

__all__ = [
    "DeterministicRng",
    "derive_seed",
    "Stopwatch",
    "format_duration",
    "Summary",
    "summarize",
    "geometric_mean",
    "TextTable",
    "format_float",
    "format_int",
    "zero_cut",
    "cut_leq",
    "cut_lt",
    "cut_join",
    "cut_meet",
    "cut_max",
    "cut_dominates",
    "lex_compare",
]
