"""Plain-text table rendering for the experiment harness.

The paper's evaluation is communicated through tables (Tables 1–3) and
line charts (Figures 10–12).  The benchmark harness prints both as
monospace text so the reproduction can be diffed against ``EXPERIMENTS.md``
without a plotting stack.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["TextTable", "format_float", "format_int", "ascii_series"]


def format_int(v: int) -> str:
    """Thousands-separated integer: ``1234567`` → ``1,234,567``."""
    return f"{v:,}"


def format_float(v: float, digits: int = 2) -> str:
    """Fixed-point float with a sensible fallback for tiny magnitudes."""
    if v != 0 and abs(v) < 10 ** (-digits):
        return f"{v:.2e}"
    return f"{v:.{digits}f}"


class TextTable:
    """An accumulating monospace table with right-aligned numeric columns.

    Example::

        t = TextTable(["bench", "states", "time"])
        t.add_row(["d-300", 42_000, "1.23s"])
        print(t.render())
    """

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Sequence[object]) -> None:
        """Append one row; cells are stringified (ints get separators)."""
        row = []
        for cell in cells:
            if isinstance(cell, bool):
                row.append("yes" if cell else "no")
            elif isinstance(cell, int):
                row.append(format_int(cell))
            elif isinstance(cell, float):
                row.append(format_float(cell))
            else:
                row.append(str(cell))
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table to a string (no trailing newline)."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def ascii_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: Sequence[tuple],
    value_digits: int = 2,
) -> str:
    """Render named data series as a compact text block.

    ``series`` is a sequence of ``(name, values)`` pairs, each ``values``
    aligned with ``xs``.  This is how the figure benchmarks print their
    speedup curves.
    """
    table = TextTable([x_label] + [name for name, _ in series], title=title)
    for i, x in enumerate(xs):
        row: List[object] = [x]
        for _, values in series:
            v = values[i]
            row.append(format_float(float(v), value_digits) if v is not None else "-")
        table.add_row(row)
    return table.render()
