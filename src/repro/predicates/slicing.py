"""Computation slicing for conjunctive predicates.

For a conjunctive predicate ``⋀ᵢ lᵢ`` the satisfying global states are
closed under componentwise min and max (each local predicate constrains
only its own thread's frontier position), so when non-empty they form a
**sublattice** with a least and a greatest element.  The *slice* —
the interval ``[least, greatest]`` together with the per-thread satisfying
index sets — is a compact certificate: every satisfying state lies in the
box, and membership is a per-component set lookup.  Slicing turns "examine
``i(P)`` states" into "examine the (usually tiny) box", the same
state-space-reduction idea the paper cites as the alternative to
general-purpose enumeration for structured predicates (§1, §6.2).

Algorithms:

* :func:`least_satisfying` — the Garg–Waldecker forward advance
  (re-exported from :mod:`repro.predicates.conjunctive`);
* :func:`greatest_satisfying` — the dual backward advance: pointers start
  at each thread's *last* satisfying event and move down when a candidate
  demands more of another thread than its candidate allows;
* :func:`conjunctive_slice` — both ends plus enumeration of the satisfying
  states inside the box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.enumeration.lexical import LexicalEnumerator
from repro.poset.poset import Poset
from repro.predicates.conjunctive import LocalPredicate, detect_conjunctive
from repro.types import Cut

__all__ = [
    "least_satisfying",
    "greatest_satisfying",
    "ConjunctiveSlice",
    "conjunctive_slice",
]


def least_satisfying(
    poset: Poset, locals_: Sequence[Optional[LocalPredicate]]
) -> Optional[Cut]:
    """Least satisfying global state (alias of :func:`detect_conjunctive`)."""
    return detect_conjunctive(poset, locals_)


def greatest_satisfying(
    poset: Poset, locals_: Sequence[Optional[LocalPredicate]]
) -> Optional[Cut]:
    """Greatest consistent global state whose frontier satisfies every
    local predicate, or ``None``.

    Dual advance: a candidate pair ``(ti, ki)``/``(tj, kj)`` is
    incompatible when event ``(ti, ki)`` causally requires thread ``tj``
    beyond ``kj``; every solution then places ``ti`` *below* ``ki``
    (clocks are monotone and solutions sit below the pointers by
    invariant), so ``ti``'s pointer moves down.  Unconstrained threads are
    then raised as high as the constrained frontier positions allow.
    """
    n = poset.num_threads
    satisfying: List[List[int]] = []
    for tid in range(n):
        pred = locals_[tid]
        if pred is None:
            satisfying.append([])
            continue
        satisfying.append(
            [
                idx
                for idx in range(1, poset.lengths[tid] + 1)
                if pred(poset.event(tid, idx))
            ]
        )
    constrained = [t for t in range(n) if locals_[t] is not None]
    pointer = {t: len(satisfying[t]) - 1 for t in constrained}
    for t in constrained:
        if pointer[t] < 0:
            return None

    while True:
        advanced = False
        for ti in constrained:
            ki = satisfying[ti][pointer[ti]]
            for tj in constrained:
                if tj == ti:
                    continue
                kj = satisfying[tj][pointer[tj]]
                if poset.vc(ti, ki)[tj] > kj:
                    # ti's candidate needs tj beyond kj: lower ti.
                    pointer[ti] -= 1
                    if pointer[ti] < 0:
                        return None
                    advanced = True
                    break
            if advanced:
                break
        if not advanced:
            break

    cut = [0] * n
    for t in constrained:
        cut[t] = satisfying[t][pointer[t]]
    # Raise each unconstrained thread as far as the constrained frontier
    # positions permit (its events may not require more of them).
    for u in range(n):
        if locals_[u] is not None:
            continue
        m = poset.lengths[u]
        while m > 0:
            vc = poset.vc(u, m)
            if all(vc[t] <= cut[t] for t in constrained):
                break
            m -= 1
        cut[u] = m
    # The result is consistent: constrained candidates are pairwise
    # compatible and unconstrained components are maximal-but-compatible;
    # unconstrained-on-unconstrained requirements are met because a
    # required event's clock is dominated by the requiring event's clock.
    return tuple(cut)


@dataclass(frozen=True)
class ConjunctiveSlice:
    """The satisfying sublattice of a conjunctive predicate."""

    least: Cut
    greatest: Cut
    #: All satisfying states, ascending lexical order.
    states: tuple

    @property
    def count(self) -> int:
        """Number of satisfying global states."""
        return len(self.states)

    def box_volume(self) -> int:
        """Size of the bounding box (the reduction certificate: compare to
        ``i(P)``)."""
        v = 1
        for a, b in zip(self.least, self.greatest):
            v *= b - a + 1
        return v


def conjunctive_slice(
    poset: Poset, locals_: Sequence[Optional[LocalPredicate]]
) -> Optional[ConjunctiveSlice]:
    """Compute the slice, or ``None`` when no state satisfies the
    conjunction.  Enumeration is restricted to the ``[least, greatest]``
    box — usually a tiny fraction of the lattice."""
    least = least_satisfying(poset, locals_)
    if least is None:
        return None
    greatest = greatest_satisfying(poset, locals_)
    assert greatest is not None  # non-empty sublattice has both ends

    sat_sets = []
    for tid in range(poset.num_threads):
        pred = locals_[tid]
        if pred is None:
            sat_sets.append(None)
        else:
            sat_sets.append(
                {
                    idx
                    for idx in range(1, poset.lengths[tid] + 1)
                    if pred(poset.event(tid, idx))
                }
            )

    found: List[Cut] = []

    def visit(cut: Cut) -> None:
        for tid, allowed in enumerate(sat_sets):
            if allowed is not None and cut[tid] not in allowed:
                return
        found.append(cut)

    LexicalEnumerator(poset).enumerate_interval(least, greatest, visit)
    return ConjunctiveSlice(least=least, greatest=greatest, states=tuple(found))
