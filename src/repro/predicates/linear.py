"""Linear predicates and their enumeration-free detection.

A predicate ``B`` over global states is *linear* (Chase & Garg 1995) when
its satisfying set is closed under componentwise meet: for satisfying
states ``G`` and ``H``, ``G ⊓ H`` also satisfies ``B``.  A non-empty
meet-closed set inside a finite lattice has a unique least element, and
linearity is equivalent to the *forbidden-state* rule the detection
algorithm exploits: whenever a consistent cut ``G`` falsifies ``B``, some
thread ``t`` — the **crucial** thread of ``G`` — must advance in every
satisfying state above ``G``:

    ``∀ satisfying H ≥ G : H[t] > G[t]``

Detection is then a forward advance, the same shape as Garg–Waldecker for
the conjunctive special case: start at the empty state; while the current
cut fails, include the crucial thread's next event *and everything it
causally requires* (the join with that event's clock — joins of consistent
cuts are consistent, so the walk never leaves the lattice).  Each step
grows the cut by at least one event, so detection finishes within ``|E|``
predicate evaluations and returns the **least** satisfying state — no
enumeration, which is what lets the planner route linear predicates around
ParaMount entirely (Garg, arXiv:2008.12516 puts this in NC via slicing).

:class:`ConjunctivePredicate` gains a ``crucial_thread`` in its module, so
conjunctive predicates are usable here too; the genuinely-linear-but-not-
conjunctive example is :class:`DominancePredicate`, whose condition
relates *two* threads' positions and therefore has no per-thread
decomposition.
"""

from __future__ import annotations

from abc import abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import DetectorError
from repro.poset.event import Event
from repro.poset.poset import Poset
from repro.predicates.base import StatePredicate
from repro.types import Cut
from repro.util.cuts import cut_join, zero_cut

__all__ = [
    "LinearPredicate",
    "DominancePredicate",
    "LinearSlice",
    "detect_linear",
    "linear_slice",
]


class LinearPredicate(StatePredicate):
    """A predicate declaring itself linear via the crucial-thread rule.

    Subclasses implement :meth:`check` (the condition itself),
    :meth:`crucial_thread` (the forbidden-state rule that makes the forward
    advance sound), and :meth:`linearity_argument` (a human-auditable
    statement of *why* the satisfying set is meet-closed — the classifier
    demotes linear claims that do not carry one, and cross-validation
    checks the claim against full enumeration).
    """

    name = "linear"

    @abstractmethod
    def crucial_thread(
        self,
        poset: Poset,
        cut: Cut,
        frontier: Sequence[Optional[Event]],
    ) -> int:
        """For a cut falsifying the predicate: a thread that must advance
        in every satisfying state ``≥ cut``."""

    def linearity_argument(self) -> str:
        """The meet-closure argument backing the linear claim (empty ⇒ the
        classifier demotes the predicate to ``arbitrary``)."""
        return ""


class DominancePredicate(LinearPredicate):
    """``B(G) ≡ G[leader] ≥ G[follower] + margin``.

    Linear but *not* conjunctive: the condition couples two threads'
    positions, so it has no decomposition into per-thread locals.  Meet
    closure: if ``G`` and ``H`` both satisfy the inequality, so does
    ``G ⊓ H`` — the min of the leader components is attained by one of the
    two cuts, whose own follower component bounds the min of the follower
    components.  The crucial thread of a failing cut is the leader: only
    its advance can close the gap (the follower component never decreases
    going up the lattice).
    """

    name = "dominance"

    def __init__(self, leader: int, follower: int, margin: int = 1):
        if leader == follower:
            raise ValueError("leader and follower must be distinct threads")
        self.leader = leader
        self.follower = follower
        self.margin = margin

    def check(
        self,
        cut: Cut,
        frontier: Sequence[Optional[Event]],
        new_event: Optional[Event] = None,
    ) -> bool:
        return cut[self.leader] >= cut[self.follower] + self.margin

    def crucial_thread(
        self,
        poset: Poset,
        cut: Cut,
        frontier: Sequence[Optional[Event]],
    ) -> int:
        return self.leader

    def linearity_argument(self) -> str:
        return (
            f"G[{self.leader}] ≥ G[{self.follower}] + {self.margin} is "
            f"meet-closed: min(G[{self.leader}], H[{self.leader}]) is "
            f"attained by one of the two satisfying cuts, and that cut's "
            f"own follower component dominates "
            f"min(G[{self.follower}], H[{self.follower}])"
        )


@dataclass(frozen=True)
class LinearSlice:
    """Result of the forward advance: the least satisfying state and the
    trail of cuts the advance visited (a certificate that detection needed
    ``len(trail)`` predicate evaluations, not a lattice enumeration)."""

    least: Cut
    #: Every cut the advance evaluated, in order, ending at ``least``.
    trail: tuple

    @property
    def states_examined(self) -> int:
        return len(self.trail)


def detect_linear(poset: Poset, pred: StatePredicate) -> Optional[Cut]:
    """Least satisfying state of a linear predicate, or ``None``.

    ``pred`` must expose ``crucial_thread`` (a :class:`LinearPredicate`,
    or a :class:`~repro.predicates.conjunctive.ConjunctivePredicate` —
    conjunctive is a special case of linear).
    """
    s = linear_slice(poset, pred)
    return None if s is None else s.least


def linear_slice(poset: Poset, pred: StatePredicate) -> Optional[LinearSlice]:
    """Forward advance on the forbidden-state rule (see module docstring).

    Returns the least satisfying state plus the visited trail, or ``None``
    when no consistent global state satisfies the predicate.  Raises
    :class:`~repro.errors.DetectorError` when the predicate does not
    expose a ``crucial_thread`` rule or returns a nonsensical thread.
    """
    crucial = getattr(pred, "crucial_thread", None)
    if crucial is None:
        raise DetectorError(
            f"predicate {getattr(pred, 'name', type(pred).__name__)!r} has "
            f"no crucial_thread rule; linear_slice needs one"
        )
    n = poset.num_threads
    cut: Cut = zero_cut(n)
    trail: List[Cut] = []
    # Each iteration either returns or adds ≥ 1 event to the cut, so the
    # loop runs at most |E| + 1 times.
    while True:
        frontier = poset.frontier_events(cut)
        trail.append(cut)
        if pred.check(cut, frontier):
            return LinearSlice(least=cut, trail=tuple(trail))
        t = crucial(poset, cut, frontier)
        if not 0 <= t < n:
            raise DetectorError(
                f"crucial_thread returned invalid thread {t!r} (n={n})"
            )
        if cut[t] >= poset.lengths[t]:
            # The crucial thread has no event left to include: no
            # satisfying state exists above the current lower bound, and
            # the invariant says none exists elsewhere either.
            return None
        # Include the crucial event and its causal past; the join of two
        # consistent cuts is consistent, so this never leaves the lattice.
        cut = cut_join(cut, poset.vc(t, cut[t] + 1))
