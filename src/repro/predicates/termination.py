"""Termination detection as a global predicate.

A diffusing computation has terminated when (a) every process is passive
*and* (b) no message is in flight.  The naive frontier-only test — "all
frontier events are passive" — is unsound: a consistent cut can catch every
process momentarily passive while a work message is still traveling (the
classic counterexample; :func:`repro.distsim.protocols.diffusing_work`
manufactures it).

:class:`TerminationPredicate` adds the channel condition by counting: a
message is in flight in cut ``G`` exactly when its send event is in ``G``
but its receive event is not, so ``G`` is quiescent iff the number of send
events inside ``G`` equals the number of receive events inside ``G``
(every receive's matching send is in ``G`` by consistency).  Per-process
prefix counts make the check O(n) per state.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.poset.event import Event
from repro.poset.poset import Poset
from repro.predicates.base import StatePredicate
from repro.types import Cut

__all__ = ["TerminationPredicate", "naive_all_passive"]


def naive_all_passive(passive_tag: str = "passive"):
    """The *unsound* frontier-only test (kept for the demonstration)."""

    def check(cut: Cut, frontier: Sequence[Optional[Event]]) -> bool:
        for ev in frontier:
            if ev is None or ev.obj != passive_tag:
                return False
        return True

    return check


class TerminationPredicate(StatePredicate):
    """Sound termination test: all passive and channels empty."""

    name = "termination"

    def __init__(self, poset: Poset, passive_tag: str = "passive"):
        self.passive_tag = passive_tag
        n = poset.num_threads
        # prefix counts: sends[p][k] = #send events among p's first k events
        self._sends: List[List[int]] = []
        self._recvs: List[List[int]] = []
        for p in range(n):
            s = [0]
            r = [0]
            for k in range(1, poset.lengths[p] + 1):
                e = poset.event(p, k)
                s.append(s[-1] + (1 if e.kind == "send" else 0))
                r.append(r[-1] + (1 if e.kind == "receive" else 0))
            self._sends.append(s)
            self._recvs.append(r)
        self.witnesses: List[Cut] = []

    def in_flight(self, cut: Cut) -> int:
        """Messages sent but not yet received inside ``cut``."""
        sent = sum(self._sends[p][c] for p, c in enumerate(cut))
        received = sum(self._recvs[p][c] for p, c in enumerate(cut))
        return sent - received

    def check(
        self,
        cut: Cut,
        frontier: Sequence[Optional[Event]],
        new_event: Optional[Event] = None,
    ) -> bool:
        for ev in frontier:
            if ev is None or ev.obj != self.passive_tag:
                return False
        if self.in_flight(cut) != 0:
            return False
        self.witnesses.append(tuple(cut))
        return True

    def matches(self) -> List[object]:
        return list(self.witnesses)
