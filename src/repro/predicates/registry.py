"""Registered predicates per detection workload, with declared classes.

The planner's lint (``repro-tools check --predicates``) and the
cross-validation harness (:func:`repro.staticcheck.crossval.cross_validate_planner`)
need a corpus of predicates whose *declared* class can be checked against
the classifier's verdict and whose fast-path detection can be checked
against full enumeration.  This registry provides:

* a **generic suite** instantiated against any workload's poset — one
  predicate per class of the routing lattice (local, conjunctive, linear,
  stable), all soundly declared;
* an **adversarial suite** of predicates deliberately *misdeclared* as
  conjunctive: each smuggles non-local information (a vector-clock read,
  a mutable capture, an opaque helper call) into a "local" conjunct.  The
  classifier must demote every one of them to ``arbitrary`` — that
  demotion is what ``check --predicates --strict`` turns into a nonzero
  exit, and what keeps the fast path sound;
* :func:`register_predicate` for workload-specific extras.

Builders take the workload's (merged-collection) poset so conjuncts can
be parameterized by chain lengths; each call returns a **fresh** predicate
object, because predicates accumulate witnesses across checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.poset.event import Event
from repro.poset.poset import Poset
from repro.predicates.base import StatePredicate
from repro.predicates.conjunctive import ConjunctivePredicate, LocalPredicate
from repro.predicates.linear import DominancePredicate
from repro.predicates.stable import ProgressPredicate

__all__ = [
    "PredicateSpec",
    "generic_predicates",
    "adversarial_predicates",
    "predicates_for",
    "register_predicate",
]


@dataclass(frozen=True)
class PredicateSpec:
    """One registered predicate: a builder plus its author-declared class."""

    name: str
    #: Declared class name ("local" | "conjunctive" | "linear" | "stable"
    #: | "arbitrary") — what the author *claims*; the classifier verifies.
    claimed: str
    build: Callable[[Poset], StatePredicate]
    description: str = ""
    #: True for deliberate misdeclarations the classifier must catch.
    adversarial: bool = False


# --------------------------------------------------------------------- #
# sound conjuncts (module-level defs: clean source, empty/immutable closures)


def _even_index(e: Event) -> bool:
    return e.idx % 2 == 0


def _tail_pred(last: int) -> Optional[LocalPredicate]:
    """Conjunct satisfied only by a thread's final two events."""
    if last == 0:
        return None

    def pred(e: Event) -> bool:
        return e.idx >= last - 1

    return pred


def _build_even_frontier(poset: Poset) -> ConjunctivePredicate:
    return ConjunctivePredicate(
        [
            _even_index if poset.lengths[t] >= 2 else None
            for t in range(poset.num_threads)
        ]
    )


def _build_tail_window(poset: Poset) -> ConjunctivePredicate:
    return ConjunctivePredicate(
        [_tail_pred(length) for length in poset.lengths]
    )


def _build_probe_thread0(poset: Poset) -> ConjunctivePredicate:
    locals_: List[Optional[LocalPredicate]] = [None] * poset.num_threads
    if poset.num_threads:
        locals_[0] = _even_index
    return ConjunctivePredicate(locals_)


def _build_leader_lag(poset: Poset) -> DominancePredicate:
    return DominancePredicate(leader=0, follower=1, margin=1)


def _build_all_done(poset: Poset) -> ProgressPredicate:
    return ProgressPredicate(poset.lengths)


def generic_predicates() -> List[PredicateSpec]:
    """The soundly-declared suite, one entry per fast-path class."""
    return [
        PredicateSpec(
            name="probe-thread0",
            claimed="local",
            build=_build_probe_thread0,
            description="thread 0 sits on an even frontier position",
        ),
        PredicateSpec(
            name="even-frontier",
            claimed="conjunctive",
            build=_build_even_frontier,
            description="every ≥2-event thread sits on an even position",
        ),
        PredicateSpec(
            name="tail-window",
            claimed="conjunctive",
            build=_build_tail_window,
            description="every thread is within its final two events",
        ),
        PredicateSpec(
            name="leader-lag",
            claimed="linear",
            build=_build_leader_lag,
            description="thread 0 strictly ahead of thread 1 (dominance)",
        ),
        PredicateSpec(
            name="all-done",
            claimed="stable",
            build=_build_all_done,
            description="the computation has fully completed",
        ),
    ]


# --------------------------------------------------------------------- #
# adversarial misdeclarations (each must be demoted by the classifier)


def _sneaky_clock(e: Event) -> bool:
    # Reads another thread's progress off the vector clock: NOT local.
    return e.vc[0] >= 1


_SNEAKY_STATE: List[int] = []


def _sneaky_mutable(e: Event) -> bool:
    # Captures a mutable module-level list: evaluation order–dependent.
    _SNEAKY_STATE.append(e.idx)
    return e.idx % 2 == 0


def _sneaky_oracle(e: Event) -> bool:
    return e.idx % 2 == 0


def _sneaky_helper(e: Event) -> bool:
    # Delegates to an unvetted helper: locality unprovable.
    return _sneaky_oracle(e)


def _constrain_all(fn: LocalPredicate) -> Callable[[Poset], ConjunctivePredicate]:
    def build(poset: Poset) -> ConjunctivePredicate:
        return ConjunctivePredicate(
            [
                fn if poset.lengths[t] > 0 else None
                for t in range(poset.num_threads)
            ]
        )

    return build


def adversarial_predicates() -> List[PredicateSpec]:
    """Predicates misdeclared as conjunctive; the classifier must demote
    each one to ``arbitrary`` (and the planner must route it to full
    enumeration)."""
    return [
        PredicateSpec(
            name="sneaky-clock",
            claimed="conjunctive",
            build=_constrain_all(_sneaky_clock),
            description="conjunct reads e.vc[0] — cross-thread information",
            adversarial=True,
        ),
        PredicateSpec(
            name="sneaky-mutable",
            claimed="conjunctive",
            build=_constrain_all(_sneaky_mutable),
            description="conjunct appends to a mutable captured list",
            adversarial=True,
        ),
        PredicateSpec(
            name="sneaky-helper",
            claimed="conjunctive",
            build=_constrain_all(_sneaky_helper),
            description="conjunct calls an unvetted helper function",
            adversarial=True,
        ),
    ]


# --------------------------------------------------------------------- #
# per-workload extras


_WORKLOAD_EXTRAS: Dict[str, List[PredicateSpec]] = {}


def register_predicate(workload: str, spec: PredicateSpec) -> None:
    """Attach a workload-specific predicate spec (tests and extensions)."""
    _WORKLOAD_EXTRAS.setdefault(workload, []).append(spec)


def predicates_for(
    workload: str, include_adversarial: bool = False
) -> List[PredicateSpec]:
    """All registered predicate specs for one workload."""
    specs = generic_predicates() + _WORKLOAD_EXTRAS.get(workload, [])
    if include_adversarial:
        specs += adversarial_predicates()
    return specs
