"""Predicate protocol.

A *predicate* decides whether the user-specified condition holds in a
global state (paper §1).  The detectors evaluate predicates on every
enumerated state; implementations receive the state's frontier events so
the common case (conditions over maximal events, like data races) is O(n)
per state without re-deriving the frontier.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from repro.poset.event import Event
from repro.types import Cut

__all__ = ["StatePredicate"]


class StatePredicate(ABC):
    """Interface for conditions checked on global states."""

    #: Human-readable predicate name (reports and tables).
    name: str = "abstract"

    @abstractmethod
    def check(
        self,
        cut: Cut,
        frontier: Sequence[Optional[Event]],
        new_event: Optional[Event] = None,
    ) -> bool:
        """Return True when the condition holds in this global state.

        ``frontier[i]`` is the maximal event of thread ``i`` in the state
        (``None`` when the thread has executed nothing).  ``new_event`` is
        the event whose interval is being enumerated in the online setting
        (the paper's ``e`` in Algorithms 5–6) or ``None`` offline.

        Implementations may record richer findings internally; the boolean
        lets generic drivers count matching states.
        """

    def matches(self) -> List[object]:
        """Findings accumulated across :meth:`check` calls (default: none)."""
        return []
