"""Stable predicates and their bounded-sweep detection.

A predicate ``B`` is *stable* (Chandy & Lamport) when it never turns false
once true: ``B(G)`` and ``H ≥ G`` imply ``B(H)``.  Termination, deadlock,
"all workers reached the barrier" are the classic examples.  Stability
collapses *possibly* detection to a single evaluation: some consistent
state satisfies ``B`` **iff the final state does** (any witness lies below
the final state, and stability lifts its truth upward).

The detection routine therefore never enumerates.  It checks the final
cut; on success it runs a *bounded frontier sweep* — a greedy walk down
the lattice retracting one thread at a time while the predicate stays true
— to report an earlier (smaller) witness, which is more useful in reports
than "the end of the run".  The sweep is capped by ``budget`` predicate
evaluations, so the fast path stays O(budget · n) regardless of lattice
size; the witness is *a* satisfying state, not necessarily the least one
(stable satisfying sets are up-closed, not meet-closed, so a unique least
witness need not exist).
"""

from __future__ import annotations

from abc import abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.poset.event import Event
from repro.poset.poset import Poset
from repro.predicates.base import StatePredicate
from repro.types import Cut

__all__ = [
    "StablePredicate",
    "ProgressPredicate",
    "StableDetection",
    "detect_stable",
]


class StablePredicate(StatePredicate):
    """A predicate declaring itself stable (true stays true up the lattice).

    Subclasses implement :meth:`check` and :meth:`stability_argument` — a
    human-auditable statement of *why* truth is upward-closed.  The
    classifier demotes stable claims that do not carry one, and
    cross-validation checks the claim against full enumeration.
    """

    name = "stable"

    #: Marker the classifier keys on (True for every StablePredicate).
    stable = True

    @abstractmethod
    def stability_argument(self) -> str:
        """The upward-closure argument backing the stable claim."""


class ProgressPredicate(StablePredicate):
    """``B(G) ≡ ∀i : G[i] ≥ targets[i]`` — every thread reached its goal.

    The canonical stable predicate: components only grow going up the
    lattice, so once every thread has passed its target the condition can
    never be retracted.  With ``targets == poset.lengths`` this is "the
    computation has fully completed".
    """

    name = "progress"

    def __init__(self, targets: Sequence[int]):
        self.targets: Cut = tuple(targets)

    def check(
        self,
        cut: Cut,
        frontier: Sequence[Optional[Event]],
        new_event: Optional[Event] = None,
    ) -> bool:
        return all(c >= t for c, t in zip(cut, self.targets))

    def stability_argument(self) -> str:
        return (
            "H ≥ G is componentwise, so G[i] ≥ targets[i] for all i "
            "implies H[i] ≥ G[i] ≥ targets[i]: truth is upward-closed"
        )


@dataclass(frozen=True)
class StableDetection:
    """Outcome of the stable fast path."""

    #: A satisfying consistent state (``None`` ⇒ no state satisfies B).
    witness: Optional[Cut]
    #: Predicate evaluations spent (1 for the final-cut test + the sweep).
    states_examined: int

    @property
    def detected(self) -> bool:
        return self.witness is not None


def detect_stable(
    poset: Poset, pred: StatePredicate, budget: int = 256
) -> StableDetection:
    """Possibly-detection for a stable predicate (see module docstring).

    Soundness rests entirely on stability: ``B`` holds somewhere iff it
    holds at the final cut.  The sweep afterwards only *improves* the
    witness and is capped at ``budget`` evaluations.
    """
    n = poset.num_threads
    final: Cut = poset.lengths
    examined = 1
    if not pred.check(final, poset.frontier_events(final)):
        return StableDetection(witness=None, states_examined=examined)

    witness = final
    improved = True
    while improved and examined < budget:
        improved = False
        for tid in range(n):
            if witness[tid] == 0 or examined >= budget:
                continue
            cand = witness[:tid] + (witness[tid] - 1,) + witness[tid + 1 :]
            if not poset.is_consistent(cand):
                continue
            examined += 1
            if pred.check(cand, poset.frontier_events(cand)):
                witness = cand
                improved = True
    return StableDetection(witness=witness, states_examined=examined)
