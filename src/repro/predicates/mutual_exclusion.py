"""Mutual-exclusion violation predicate.

Detects global states in which two threads are simultaneously inside a
critical section of the same resource — the "negation of an invariant"
flavour of condition from the paper's introduction.  Events are mapped to
the resource whose critical section they execute in by a caller-supplied
function (workloads tag such events via ``Event.obj``), and a violation is
two concurrent frontier events in the same resource's section.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.poset.event import Event
from repro.predicates.base import StatePredicate
from repro.predicates.data_race import events_are_concurrent
from repro.types import Cut

__all__ = ["MutualExclusionPredicate"]

#: Maps an event to the resource whose critical section it is in, if any.
ResourceFn = Callable[[Event], Optional[str]]


def _default_resource(event: Event) -> Optional[str]:
    """Default mapping: events tagged ``kind="critical"`` name their
    resource in ``obj``."""
    return event.obj if event.kind == "critical" else None


class MutualExclusionPredicate(StatePredicate):
    """True on states where a mutual-exclusion invariant is violated."""

    name = "mutual-exclusion"

    def __init__(self, resource_of: ResourceFn = _default_resource):
        self.resource_of = resource_of
        #: (resource, eid, eid) triples for every violation found.
        self.violations: List[Tuple[str, tuple, tuple]] = []

    def check(self, cut: Cut, frontier, new_event=None) -> bool:
        inside = [
            (ev, self.resource_of(ev))
            for ev in frontier
            if ev is not None and self.resource_of(ev) is not None
        ]
        found = False
        for i in range(len(inside)):
            a, ra = inside[i]
            for j in range(i + 1, len(inside)):
                b, rb = inside[j]
                if ra == rb and events_are_concurrent(a, b):
                    self.violations.append((ra, a.eid, b.eid))
                    found = True
        return found

    def matches(self) -> List[object]:
        return list(self.violations)
