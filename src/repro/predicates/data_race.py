"""The data-race predicate (paper Algorithms 5 and 6).

A data race is a pair of conflicting accesses (same variable, at least one
write) by different threads that may execute concurrently.  On an
enumerated global state, the predicate compares the new event ``e`` against
the other threads' frontier events; with event collections (§4.4) each
comparison scans the collections' stored accesses (Algorithm 6's inner
loops).

One correction relative to the paper's pseudo-code: Algorithms 5–6 omit an
explicit concurrency test, relying on the claim that frontier events of
different threads are never HB-ordered.  That claim holds when lock events
are materialized in the poset (Part I's construction) but *not* in the
optimized collection poset, where HB between collections flows transitively
through clock merges — e.g. a lock-ordered writer/reader pair can both be
frontier-maximal in some state.  We therefore check
:func:`events_are_concurrent` before reporting, which is what makes the
detector report exactly the true HB-races (the tests cross-validate against
an exhaustive pairwise oracle).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Set, Tuple

from repro.poset.event import Event
from repro.predicates.base import StatePredicate
from repro.types import Cut

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.detector.report import DetectionReport

__all__ = ["DataRacePredicate", "events_are_concurrent"]


def events_are_concurrent(a: Event, b: Event) -> bool:
    """Clock-based concurrency test (neither event happened before the
    other)."""
    if a.tid == b.tid:
        return False
    return a.vc[a.tid] > b.vc[a.tid] and b.vc[b.tid] > a.vc[b.tid]


class DataRacePredicate(StatePredicate):
    """Algorithm 6 over event collections (Algorithm 5 is the special case
    of singleton collections).

    Parameters
    ----------
    filter_init:
        When True (the ParaMount detector's behaviour, §5.2), access pairs
        where either side is an initialization write never race.  The RV
        baseline runs with ``filter_init=False``, which is where its benign
        extra reports come from.
    benign_vars:
        Variables known benign (test-driver state); reported races on them
        are flagged ``benign`` so tables can annotate false alarms.
    report:
        Optional shared :class:`DetectionReport` that race findings are
        recorded into.
    """

    name = "data-race"

    def __init__(
        self,
        filter_init: bool = True,
        benign_vars: frozenset = frozenset(),
        report: "Optional[DetectionReport]" = None,
    ):
        # Imported here, not at module level: the detector package's
        # __init__ imports this module, so a top-level import would cycle.
        from repro.detector.report import DetectionReport

        self.filter_init = filter_init
        self.benign_vars = benign_vars
        self.report = report if report is not None else DetectionReport(
            detector="data-race", benchmark="?"
        )
        #: Pairs already checked, to skip duplicate work across states.
        self._checked_pairs: Set[Tuple[Tuple[int, int], Tuple[int, int]]] = set()

    def check(
        self,
        cut: Cut,
        frontier: Sequence[Optional[Event]],
        new_event: Optional[Event] = None,
    ) -> bool:
        """Check the state's frontier for racing access pairs.

        Online (``new_event`` given): compare ``e`` against every other
        thread's frontier event — the literal Algorithm 6.  Offline: compare
        all frontier pairs (the shape of Figure 3's predicate).
        """
        found = False
        if new_event is not None:
            for other in frontier:
                if other is None or other.tid == new_event.tid:
                    continue
                found |= self._check_pair(new_event, other)
        else:
            n = len(frontier)
            for i in range(n):
                a = frontier[i]
                if a is None:
                    continue
                for j in range(i + 1, n):
                    b = frontier[j]
                    if b is None:
                        continue
                    found |= self._check_pair(a, b)
        return found

    def _check_pair(self, a: Event, b: Event) -> bool:
        key = (a.eid, b.eid) if a.eid <= b.eid else (b.eid, a.eid)
        if key in self._checked_pairs:
            # Already examined in a previous state; re-report nothing, but
            # the pair may have raced before — treat as no new finding.
            return False
        self._checked_pairs.add(key)
        if not events_are_concurrent(a, b):
            return False
        from repro.detector.report import RaceRecord

        found = False
        for acc_a in a.accesses:
            for acc_b in b.accesses:
                if not acc_a.conflicts_with(acc_b):
                    continue
                if self.filter_init and (acc_a.is_init or acc_b.is_init):
                    continue
                self.report.record(
                    RaceRecord(
                        var=acc_a.var,
                        first=(a.tid, acc_a.op),
                        second=(b.tid, acc_b.op),
                        benign=acc_a.var in self.benign_vars
                        or acc_a.is_init
                        or acc_b.is_init,
                    )
                )
                found = True
        return found
