"""Conjunctive predicates (Garg & Waldecker 1994) — a polynomial special
case, implemented both ways.

A conjunctive predicate is ``⋀ᵢ lᵢ`` with each ``lᵢ`` local to thread
``i``.  For this class the full lattice need not be enumerated: the
classic detection algorithm advances per-thread candidate events until it
finds a frontier of pairwise-concurrent satisfying events or exhausts a
thread, in ``O(n²·|E|)`` time.  The paper cites this line of work (§1, §6)
as the motivation for *general-purpose* enumeration: when no structure is
assumed, enumeration is unavoidable.

We ship both the polynomial detector (:func:`detect_conjunctive`) and an
enumeration-based :class:`ConjunctivePredicate` so the tests can
cross-validate one against the other — and the ablation benchmark can show
the exponential/polynomial gap the paper alludes to.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.poset.event import Event
from repro.poset.poset import Poset
from repro.predicates.base import StatePredicate
from repro.types import Cut

__all__ = ["ConjunctivePredicate", "detect_conjunctive"]

#: Per-thread local predicate over events.
LocalPredicate = Callable[[Event], bool]


def detect_conjunctive(
    poset: Poset, locals_: Sequence[Optional[LocalPredicate]]
) -> Optional[Cut]:
    """Find a consistent cut whose frontier satisfies every local predicate.

    ``locals_[i]`` is the predicate for thread ``i`` (``None`` means thread
    ``i`` is unconstrained — any frontier, including the empty one, is
    accepted for it).  Returns a witness cut, or ``None`` when no global
    state satisfies the conjunction.

    Algorithm (Garg–Waldecker, phrased on clocks): keep, per constrained
    thread, a pointer to its earliest not-yet-eliminated satisfying event.
    Two candidate events ``(ti, ki)`` and ``(tj, kj)`` can be *frontier
    positions of one consistent cut* iff neither requires more of the other
    thread than the candidate position provides::

        vc(ti, ki)[tj] ≤ kj   and   vc(tj, kj)[ti] ≤ ki

    (ordered events can still share a frontier — the state following the
    earlier event may persist while the later executes — so plain event
    concurrency is the wrong test).  When ``vc(tj, kj)[ti] > ki``, every
    solution must place thread ``ti`` beyond ``ki`` (monotone clocks), so
    ``ti``'s pointer advances; symmetric for ``tj``.  Each elimination is
    provably safe, so when the candidates become pairwise compatible, the
    join of their clocks is the least witness cut.
    """
    n = poset.num_threads
    satisfying: List[List[int]] = []
    for tid in range(n):
        pred = locals_[tid]
        if pred is None:
            satisfying.append([])
            continue
        satisfying.append(
            [
                idx
                for idx in range(1, poset.lengths[tid] + 1)
                if pred(poset.event(tid, idx))
            ]
        )
    constrained = [t for t in range(n) if locals_[t] is not None]
    pointer = {t: 0 for t in constrained}
    for t in constrained:
        if not satisfying[t]:
            return None

    while True:
        advanced = False
        for ti in constrained:
            ki = satisfying[ti][pointer[ti]]
            for tj in constrained:
                if tj == ti:
                    continue
                kj = satisfying[tj][pointer[tj]]
                if poset.vc(tj, kj)[ti] > ki:
                    # tj's candidate requires ti beyond ki: eliminate ki.
                    pointer[ti] += 1
                    if pointer[ti] >= len(satisfying[ti]):
                        return None
                    advanced = True
                    break
            if advanced:
                break
        if not advanced:
            break

    # Candidates are pairwise frontier-compatible; the join of their clocks
    # is consistent and has each candidate as its thread's frontier event.
    cut = [0] * n
    for t in constrained:
        vc = poset.vc(t, satisfying[t][pointer[t]])
        for k in range(n):
            if vc[k] > cut[k]:
                cut[k] = vc[k]
    # Unconstrained threads stay at whatever the join forced (possibly 0).
    return tuple(cut)


class ConjunctivePredicate(StatePredicate):
    """Enumeration-based evaluation of the same conjunction.

    ``check`` is True when, for every constrained thread, the frontier
    event exists and satisfies its local predicate.  Used to cross-validate
    :func:`detect_conjunctive` over full enumerations.
    """

    name = "conjunctive"

    def __init__(self, locals_: Sequence[Optional[LocalPredicate]]):
        self.locals_: List[Optional[LocalPredicate]] = list(locals_)
        self.witnesses: List[Cut] = []

    def check(
        self,
        cut: Cut,
        frontier: Sequence[Optional[Event]],
        new_event: Optional[Event] = None,
    ) -> bool:
        for tid, pred in enumerate(self.locals_):
            if pred is None:
                continue
            ev = frontier[tid]
            if ev is None or not pred(ev):
                return False
        self.witnesses.append(tuple(cut))
        return True

    def crucial_thread(
        self,
        poset: Poset,
        cut: Cut,
        frontier: Sequence[Optional[Event]],
    ) -> int:
        """Conjunctive is a special case of linear: in a failing state some
        constrained thread's frontier event is missing or falsifies its
        local predicate, and — since a local predicate only reads its own
        thread's frontier — every satisfying state above this cut must
        advance that thread past the offending position."""
        for tid, pred in enumerate(self.locals_):
            if pred is None:
                continue
            ev = frontier[tid]
            if ev is None or not pred(ev):
                return tid
        raise ValueError(
            "crucial_thread queried on a satisfying state (no failing conjunct)"
        )

    def matches(self) -> List[object]:
        return list(self.witnesses)
