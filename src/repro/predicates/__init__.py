"""Predicates evaluated on enumerated global states.

The race predicate (paper Algorithms 5–6) drives the Table 2 experiments;
the conjunctive and mutual-exclusion predicates exercise the
general-purpose claim — ParaMount "makes no assumptions on the nature of
the predicate" — and back the extension experiments.
"""

from repro.predicates.base import StatePredicate
from repro.predicates.conjunctive import ConjunctivePredicate, detect_conjunctive
from repro.predicates.data_race import DataRacePredicate, events_are_concurrent
from repro.predicates.modalities import definitely, possibly, satisfying_states
from repro.predicates.mutual_exclusion import MutualExclusionPredicate
from repro.predicates.slicing import (
    ConjunctiveSlice,
    conjunctive_slice,
    greatest_satisfying,
    least_satisfying,
)

__all__ = [
    "StatePredicate",
    "DataRacePredicate",
    "events_are_concurrent",
    "ConjunctivePredicate",
    "detect_conjunctive",
    "MutualExclusionPredicate",
    "possibly",
    "definitely",
    "satisfying_states",
    "ConjunctiveSlice",
    "conjunctive_slice",
    "least_satisfying",
    "greatest_satisfying",
]
