"""Predicates evaluated on enumerated global states.

The race predicate (paper Algorithms 5–6) drives the Table 2 experiments;
the conjunctive, linear, stable and mutual-exclusion predicates exercise
the general-purpose claim — ParaMount "makes no assumptions on the nature
of the predicate" — and back the extension experiments.  The structured
classes (conjunctive ⊂ linear, stable) additionally feed the detection
planner's fast paths: see :mod:`repro.staticcheck.predclass` and
:mod:`repro.detector.planner`.
"""

from repro.predicates.base import StatePredicate
from repro.predicates.conjunctive import ConjunctivePredicate, detect_conjunctive
from repro.predicates.data_race import DataRacePredicate, events_are_concurrent
from repro.predicates.linear import (
    DominancePredicate,
    LinearPredicate,
    LinearSlice,
    detect_linear,
    linear_slice,
)
from repro.predicates.modalities import definitely, possibly, satisfying_states
from repro.predicates.mutual_exclusion import MutualExclusionPredicate
from repro.predicates.registry import (
    PredicateSpec,
    adversarial_predicates,
    generic_predicates,
    predicates_for,
    register_predicate,
)
from repro.predicates.slicing import (
    ConjunctiveSlice,
    conjunctive_slice,
    greatest_satisfying,
    least_satisfying,
)
from repro.predicates.stable import (
    ProgressPredicate,
    StableDetection,
    StablePredicate,
    detect_stable,
)

__all__ = [
    "StatePredicate",
    "DataRacePredicate",
    "events_are_concurrent",
    "ConjunctivePredicate",
    "detect_conjunctive",
    "LinearPredicate",
    "DominancePredicate",
    "LinearSlice",
    "detect_linear",
    "linear_slice",
    "StablePredicate",
    "ProgressPredicate",
    "StableDetection",
    "detect_stable",
    "MutualExclusionPredicate",
    "possibly",
    "definitely",
    "satisfying_states",
    "ConjunctiveSlice",
    "conjunctive_slice",
    "least_satisfying",
    "greatest_satisfying",
    "PredicateSpec",
    "generic_predicates",
    "adversarial_predicates",
    "predicates_for",
    "register_predicate",
]
