"""The Cooper–Marzullo detection modalities: *possibly* and *definitely*.

The paper's notion of predicate detection descends from Cooper & Marzullo
[6], who distinguish two questions about a predicate ``φ`` over global
states:

* ``possibly(φ)`` — does *some* consistent observation pass through a
  state satisfying ``φ``?  Equivalent to "φ holds in at least one
  consistent global state" (what the paper's detector reports).
* ``definitely(φ)`` — does *every* consistent observation pass through a
  state satisfying ``φ``?  Strictly stronger; the right question for
  conditions that must be unavoidable (e.g. "the system necessarily passes
  through a quiescent configuration").

``possibly`` is a short-circuiting enumeration.  ``definitely`` uses the
classic level algorithm: walk the lattice breadth-first but *refuse to
expand* states satisfying ``φ``; if the final state is still reachable
through ``φ``-free states, some observation avoids ``φ`` — not definite.
(An observation is a path of single-event steps from the empty to the
final state, which is exactly a maximal chain of the lattice.)

Both accept any :class:`~repro.predicates.base.StatePredicate` or a plain
callable ``(cut, frontier) -> bool``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Union

from repro.poset.event import Event
from repro.poset.poset import Poset
from repro.predicates.base import StatePredicate
from repro.types import Cut
from repro.util.cuts import zero_cut

__all__ = ["possibly", "definitely", "satisfying_states"]

PredicateLike = Union[StatePredicate, Callable[[Cut, Sequence[Optional[Event]]], bool]]


def _as_callable(pred: PredicateLike):
    if isinstance(pred, StatePredicate):
        return lambda cut, frontier: pred.check(cut, frontier)
    return pred


def possibly(poset: Poset, pred: PredicateLike) -> Optional[Cut]:
    """First satisfying consistent global state, or ``None``.

    Short-circuiting lexical walk — worst case visits every state (the
    general-purpose lower bound the paper discusses), but returns at the
    first witness.
    """
    from repro.enumeration.lexical import lex_first, lex_successor

    check = _as_callable(pred)
    lo = zero_cut(poset.num_threads)
    hi = poset.lengths
    cut = lex_first(poset, lo, hi)
    while cut is not None:
        if check(cut, poset.frontier_events(cut)):
            return cut
        cut = lex_successor(poset, cut, lo, hi)
    return None


def definitely(poset: Poset, pred: PredicateLike) -> bool:
    """True when every observation passes through a ``φ`` state.

    Level-by-level reachability over ``φ``-free states: if the final state
    can be reached without ever satisfying ``φ``, some interleaving avoids
    the predicate.  The empty and final states themselves count (an
    observation passes through both).
    """
    check = _as_callable(pred)
    n = poset.num_threads
    start = zero_cut(n)
    final = poset.lengths
    if check(start, poset.frontier_events(start)):
        return True

    level: Set[Cut] = {start}
    while level:
        next_level: Set[Cut] = set()
        for cut in level:
            for tid in range(n):
                if not poset.enabled(cut, tid):
                    continue
                succ = cut[:tid] + (cut[tid] + 1,) + cut[tid + 1 :]
                if succ in next_level:
                    continue
                if check(succ, poset.frontier_events(succ)):
                    continue  # φ blocks this path — do not expand through it
                if succ == final:
                    return False  # a φ-free observation exists
                next_level.add(succ)
        level = next_level
    return True


def satisfying_states(poset: Poset, pred: PredicateLike) -> List[Cut]:
    """All consistent global states satisfying the predicate (full
    enumeration; for diagnostics and tests)."""
    from repro.enumeration.lexical import LexicalEnumerator

    check = _as_callable(pred)
    out: List[Cut] = []

    def visit(cut: Cut) -> None:
        if check(cut, poset.frontier_events(cut)):
            out.append(cut)

    LexicalEnumerator(poset).enumerate(visit)
    return out
