"""Shared type aliases and protocols used across the :mod:`repro` package.

The library manipulates three pervasive value shapes:

* a **cut** (equivalently *frontier* or *global state vector*): a tuple of
  per-thread event counts, ``cut[i]`` being the number of events of thread
  ``i`` included in the global state (``0`` means none);
* a **clock**: a vector clock, also a tuple of per-thread counts, where
  ``clock[j]`` is the number of events of thread ``j`` known to have
  happened before (or equal, for the owner component);
* an **event id**: a pair ``(tid, idx)`` with 1-based ``idx`` identifying
  the ``idx``-th event executed by thread ``tid``.

Cuts and clocks intentionally share the representation: the least
consistent global state containing an event *is* that event's vector clock
(paper §2.2), and the library exploits this identification throughout.
"""

from __future__ import annotations

from typing import Callable, Protocol, Tuple, runtime_checkable

__all__ = [
    "Cut",
    "Clock",
    "EventId",
    "CutVisitor",
    "SupportsEnumerate",
]

#: A global state as a frontier vector of per-thread event counts.
Cut = Tuple[int, ...]

#: A vector clock; identical representation to :data:`Cut`.
Clock = Tuple[int, ...]

#: Identifier of an event: ``(thread index, 1-based index within thread)``.
EventId = Tuple[int, int]

#: Callback invoked once per enumerated global state.
CutVisitor = Callable[[Cut], None]


@runtime_checkable
class SupportsEnumerate(Protocol):
    """Protocol satisfied by every enumeration algorithm in the library.

    An enumerator walks all consistent global states of a poset and invokes
    a visitor callback exactly once per state (all algorithms shipped here
    provide the *exactly once* guarantee; the paper notes the original
    Cooper–Marzullo BFS may repeat states, and we implement the enhanced,
    deduplicated variant just as the paper's evaluation does).
    """

    def enumerate(self, visit: CutVisitor) -> int:
        """Enumerate all states, calling ``visit`` per state.

        Returns the number of states enumerated.
        """
        ...
