"""Result records for ParaMount runs.

Each interval's enumeration produces an :class:`IntervalStats`; the driver
aggregates them into a :class:`ParaMountResult`.  These records feed the
simulated-parallel scheduler (:mod:`repro.core.simulated`) and the
experiment tables, so they carry abstract work/memory metrics alongside the
state counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.types import Cut, EventId

__all__ = [
    "IntervalStats",
    "TaskFailure",
    "DegradationEvent",
    "ParaMountResult",
]


@dataclass(frozen=True)
class IntervalStats:
    """Cost record of enumerating one interval ``I(e)``."""

    event: EventId
    lo: Cut
    hi: Cut
    states: int
    work: int
    peak_live: int


@dataclass(frozen=True)
class TaskFailure:
    """Provenance of one interval task that failed permanently.

    Recorded (never raised) when a task exhausted its
    :class:`~repro.core.executors.RetryPolicy`: the run completes with the
    failure on the record, so a partial result is still usable and the
    missing intervals are identifiable — by Theorem 2 the lost states are
    exactly the failed intervals' states, nothing else.
    """

    task_index: int
    attempts: int
    error: str
    executor: str = ""
    #: The interval's event, filled in by the ParaMount driver.
    event: Optional[EventId] = None


@dataclass(frozen=True)
class DegradationEvent:
    """One step down a graceful-degradation ladder.

    ``kind`` is ``"executor"`` (e.g. a broken process pool stepping
    ``processes → threads → serial``) or ``"subroutine"`` (a BFS interval
    exceeding its memory budget falling back to bounded lexical).
    """

    kind: str
    from_name: str
    to_name: str
    reason: str


@dataclass
class ParaMountResult:
    """Aggregate outcome of a ParaMount run.

    ``states``/``work``/``peak_live`` are the sums/maxima over intervals;
    ``order_work`` is the cost of computing the total order and interval
    bounds (the ``O(|E| + |H|)`` + ``O(n)``-per-worker part of §3.4);
    ``wall_time`` is the measured wall-clock of the actual run, whatever
    executor performed it.
    """

    states: int = 0
    work: int = 0
    peak_live: int = 0
    order_work: int = 0
    wall_time: float = 0.0
    intervals: List[IntervalStats] = field(default_factory=list)
    #: Intervals whose task failed permanently (retries exhausted).
    failures: List[TaskFailure] = field(default_factory=list)
    #: Graceful-degradation steps taken during the run.
    degradations: List[DegradationEvent] = field(default_factory=list)
    #: Task re-submissions performed by a resilient executor.
    retries: int = 0
    #: Intervals restored from a checkpoint journal instead of re-enumerated.
    resumed_intervals: int = 0

    def add_interval(self, stats: IntervalStats) -> None:
        """Fold one interval's stats into the aggregate."""
        self.intervals.append(stats)
        self.states += stats.states
        self.work += stats.work
        if stats.peak_live > self.peak_live:
            self.peak_live = stats.peak_live

    def interval_work(self) -> List[int]:
        """Per-interval work vector in ``→p`` order (scheduler input)."""
        return [s.work for s in self.intervals]

    def interval_sizes(self) -> List[int]:
        """Per-interval state counts in ``→p`` order."""
        return [s.states for s in self.intervals]

    def load_imbalance(self) -> float:
        """Max/mean of per-interval work (1.0 = perfectly balanced).

        Reported by the total-order ablation: skewed linear extensions
        produce a few giant intervals that bound parallel speedup.
        """
        works = [s.work for s in self.intervals if s.work > 0]
        if not works:
            return 1.0
        mean = sum(works) / len(works)
        return max(works) / mean if mean else 1.0

    def summary_row(self) -> Tuple[int, int, int, float]:
        """(states, work, peak_live, wall_time) for table rendering."""
        return (self.states, self.work, self.peak_live, self.wall_time)

    @property
    def complete(self) -> bool:
        """True when every interval was enumerated (no permanent failures)."""
        return not self.failures

    @property
    def degraded(self) -> bool:
        """True when any degradation ladder was descended during the run."""
        return bool(self.degradations)
