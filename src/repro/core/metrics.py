"""Result records for ParaMount runs.

Each interval's enumeration produces an :class:`IntervalStats`; the driver
aggregates them into a :class:`ParaMountResult`.  These records feed the
simulated-parallel scheduler (:mod:`repro.core.simulated`) and the
experiment tables, so they carry abstract work/memory metrics alongside the
state counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.types import Cut, EventId
from repro.util.cuts import cut_join, cut_meet

__all__ = [
    "IntervalStats",
    "TaskFailure",
    "DegradationEvent",
    "ParaMountResult",
]


@dataclass(frozen=True)
class IntervalStats:
    """Cost record of enumerating one interval ``I(e)``.

    With adaptive scheduling an interval may be split into sub-intervals
    (same ``event``, disjoint boxes); each sub-task produces its own stats
    and the driver folds them back with :meth:`merged`.
    """

    event: EventId
    lo: Cut
    hi: Cut
    states: int
    work: int
    peak_live: int
    #: Measured enumeration seconds for this task (0.0 when untimed).
    seconds: float = 0.0

    def merged(self, other: "IntervalStats") -> "IntervalStats":
        """Combine two sub-interval records of the same event.

        Counts and times add; the bounds become the enclosing box (for
        Figure-6a splits that is exactly the parent interval's box once
        every piece is merged); peak memory is the max, since sub-tasks of
        one interval never run concurrently on the same worker heap.
        """
        if other.event != self.event:
            raise ValueError(
                f"cannot merge stats of {self.event} with {other.event}"
            )
        return IntervalStats(
            event=self.event,
            lo=cut_meet(self.lo, other.lo),
            hi=cut_join(self.hi, other.hi),
            states=self.states + other.states,
            work=self.work + other.work,
            peak_live=max(self.peak_live, other.peak_live),
            seconds=self.seconds + other.seconds,
        )


@dataclass(frozen=True)
class TaskFailure:
    """Provenance of one interval task that failed permanently.

    Recorded (never raised) when a task exhausted its
    :class:`~repro.core.executors.RetryPolicy`: the run completes with the
    failure on the record, so a partial result is still usable and the
    missing intervals are identifiable — by Theorem 2 the lost states are
    exactly the failed intervals' states, nothing else.
    """

    task_index: int
    attempts: int
    error: str
    executor: str = ""
    #: The interval's event, filled in by the ParaMount driver.
    event: Optional[EventId] = None


@dataclass(frozen=True)
class DegradationEvent:
    """One step down a graceful-degradation ladder.

    ``kind`` is ``"executor"`` (e.g. a broken process pool stepping
    ``processes → threads → serial``) or ``"subroutine"`` (a BFS interval
    exceeding its memory budget falling back to bounded lexical).
    """

    kind: str
    from_name: str
    to_name: str
    reason: str


@dataclass
class ParaMountResult:
    """Aggregate outcome of a ParaMount run.

    ``states``/``work``/``peak_live`` are the sums/maxima over intervals;
    ``order_work`` is the cost of computing the total order and interval
    bounds (the ``O(|E| + |H|)`` + ``O(n)``-per-worker part of §3.4);
    ``wall_time`` is the measured wall-clock of the actual run, whatever
    executor performed it.
    """

    states: int = 0
    work: int = 0
    peak_live: int = 0
    order_work: int = 0
    wall_time: float = 0.0
    intervals: List[IntervalStats] = field(default_factory=list)
    #: Intervals whose task failed permanently (retries exhausted).
    failures: List[TaskFailure] = field(default_factory=list)
    #: Graceful-degradation steps taken during the run.
    degradations: List[DegradationEvent] = field(default_factory=list)
    #: Task re-submissions performed by a resilient executor.
    retries: int = 0
    #: Intervals restored from a checkpoint journal instead of re-enumerated.
    resumed_intervals: int = 0
    #: Per-task stats in dispatch order (== ``intervals`` when unsplit).
    tasks: List[IntervalStats] = field(default_factory=list)
    #: Schedule that shaped the task list ("fifo", "largest", "split", ...).
    schedule: str = "fifo"
    #: Workers the schedule was planned for.
    workers: int = 1
    #: Intervals the scheduler split into sub-intervals.
    split_intervals: int = 0
    #: Tasks taken from another worker's deque by a stealing executor.
    steals: int = 0
    #: Measured per-worker busy seconds (stealing executors only).
    worker_load: List[float] = field(default_factory=list)
    #: True when a ``--deadline`` budget expired before every interval ran;
    #: the result then covers only the intervals that finished in time.
    deadline_expired: bool = False
    #: Leases re-dispatched to a surviving worker (distributed runs only).
    redispatches: int = 0
    #: Leases that expired unacknowledged (crashed/hung/partitioned worker).
    leases_expired: int = 0
    #: Remote hosts that committed at least one interval (distributed runs).
    hosts: List[str] = field(default_factory=list)

    def add_interval(self, stats: IntervalStats) -> None:
        """Fold one interval's stats into the aggregate."""
        self.intervals.append(stats)
        self.states += stats.states
        self.work += stats.work
        if stats.peak_live > self.peak_live:
            self.peak_live = stats.peak_live

    def interval_work(self) -> List[int]:
        """Per-interval work vector in ``→p`` order (scheduler input)."""
        return [s.work for s in self.intervals]

    def interval_sizes(self) -> List[int]:
        """Per-interval state counts in ``→p`` order."""
        return [s.states for s in self.intervals]

    def load_imbalance(self) -> float:
        """Max/mean of per-interval work (1.0 = perfectly balanced).

        Reported by the total-order ablation: skewed linear extensions
        produce a few giant intervals that bound parallel speedup.
        """
        works = [s.work for s in self.intervals if s.work > 0]
        if not works:
            return 1.0
        mean = sum(works) / len(works)
        return max(works) / mean if mean else 1.0

    def schedule_imbalance(self) -> float:
        """Max/mean of per-*worker* load under the executed schedule.

        The counterpart of :meth:`load_imbalance` after splitting/stealing:
        per-task imbalance would stay high after a split (the mean shrinks
        as tasks multiply), so the meaningful quantity is how evenly the
        post-split tasks pack onto the workers.  Uses the measured
        per-worker busy time when a stealing executor reported it;
        otherwise packs ``tasks`` (falling back to ``intervals``) onto
        ``workers`` bins with the same greedy largest-first list scheduling
        the executors use — by each task's *measured* ``seconds`` when
        every task carries one (the serial, thread, and mp paths all time
        tasks via the driver's injected clock), by modeled ``work`` only
        for records that predate the timing fix (e.g. old checkpoints).
        """
        loads = [x for x in self.worker_load if x > 0]
        if not loads:
            tasks = self.tasks or self.intervals
            if tasks and all(s.seconds > 0 for s in tasks):
                works = sorted((s.seconds for s in tasks), reverse=True)
            else:
                works = sorted(
                    (s.work for s in tasks if s.work > 0), reverse=True
                )
            if not works:
                return 1.0
            bins = [0.0] * max(self.workers, 1)
            for w in works:
                k = bins.index(min(bins))
                bins[k] += w
            loads = [b for b in bins if b > 0]
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 1.0

    def summary_row(self) -> Tuple[int, int, int, float]:
        """(states, work, peak_live, wall_time) for table rendering."""
        return (self.states, self.work, self.peak_live, self.wall_time)

    @property
    def complete(self) -> bool:
        """True when every interval was enumerated — no permanent failures
        and no intervals abandoned to a wall-clock deadline."""
        return not self.failures and not self.deadline_expired

    @property
    def degraded(self) -> bool:
        """True when any degradation ladder was descended during the run."""
        return bool(self.degradations)
