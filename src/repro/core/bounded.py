"""Bounded enumeration of one interval — the paper's Algorithm 2.

The paper's insight (§3.2) is that *any* sequential enumeration algorithm
becomes a ParaMount subroutine once it (1) respects interval bounds and
(2) enumerates each state in the interval exactly once.  Our sequential
enumerators already expose ``enumerate_interval``; this module packages the
call with the interval bookkeeping (empty-state ownership) so both the
offline driver (Algorithm 1) and the online worker (Algorithm 4) share one
code path, and so the subroutine is selected by name exactly the way the
paper instantiates B-Para ("bounded BFS") and L-Para ("bounded lexical").
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.core.intervals import Interval
from repro.core.metrics import IntervalStats
from repro.enumeration.base import Enumerator, make_enumerator
from repro.types import CutVisitor

__all__ = ["bounded_enumeration", "make_bounded_subroutine"]

Clock = Callable[[], float]


def make_bounded_subroutine(
    name: str, poset, memory_budget: Optional[int] = None
) -> Enumerator:
    """Instantiate the sequential subroutine for a ParaMount run.

    ``name`` is ``"lexical"`` (L-Para), ``"lexical-fast"`` /
    ``"lexical-packed"`` (the tuned and packed-kernel variants of L-Para),
    ``"level-space"`` (B-Para's level order in O(n) live space), ``"bfs"``
    (B-Para) or ``"dfs"`` (validation).  ``memory_budget`` caps the
    subroutine's live intermediate states, modeling a bounded heap.

    Subroutines travel by *name* through every executor (mp workers and
    dist hosts re-instantiate from the name plus the shipped poset); the
    packed subroutines convert interval bounds to their flat-array form
    inside ``enumerate_interval``, so neither closures nor packed tables
    ever cross the wire.
    """
    return make_enumerator(name, poset, memory_budget=memory_budget)


def bounded_enumeration(
    subroutine: Enumerator,
    interval: Interval,
    visit: Optional[CutVisitor] = None,
    clock: Optional[Clock] = None,
) -> IntervalStats:
    """Enumerate every consistent global state in ``interval`` exactly once.

    This is Algorithm 2 generalized over subroutines: the subroutine starts
    from the interval's least state and stops at its boundary state.  For
    the first interval in ``→p`` the lower bound is the zero cut, which adds
    exactly the empty global state (see :mod:`repro.core.intervals`).

    ``clock`` is the seconds source that times the task (default
    ``time.perf_counter``); the drivers pass their observer's injected
    clock so ``IntervalStats.seconds`` and any recorded spans share one
    timeline on every executor path.

    Returns the interval's :class:`IntervalStats` (Lemma 1 gives the
    exactly-once property per interval; Theorem 2 lifts it to the whole
    lattice across intervals).
    """
    if clock is None:
        clock = time.perf_counter
    t0 = clock()
    result = subroutine.enumerate_interval(interval.lo, interval.hi, visit)
    return IntervalStats(
        event=interval.event,
        lo=interval.lo,
        hi=interval.hi,
        states=result.states,
        work=result.work,
        peak_live=result.peak_live,
        seconds=clock() - t0,
    )
