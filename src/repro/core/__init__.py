"""ParaMount — the paper's contribution (§3–§4).

* :mod:`repro.core.intervals` — the interval partition: ``Gmin(e)`` from
  vector clocks, ``Gbnd(e)`` from the total order ``→p`` (Definition 1),
  and ``I(e)`` (Definition 2);
* :mod:`repro.core.bounded` — Algorithm 2, bounded enumeration of one
  interval via any sequential subroutine (lexical or BFS);
* :mod:`repro.core.paramount` — Algorithm 1, the offline parallel driver;
* :mod:`repro.core.online` — Algorithm 4, the online worker driven by a
  live event stream;
* :mod:`repro.core.executors` — serial / thread-pool / process-pool
  backends;
* :mod:`repro.core.simulated` — the deterministic parallel-machine cost
  model used to regenerate the paper's speedup figures on a GIL-bound
  single-core interpreter (see DESIGN.md §3);
* :mod:`repro.core.metrics` — per-interval statistics.
"""

from repro.core.bounded import bounded_enumeration
from repro.core.executors import (
    Executor,
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    ThreadExecutor,
)
from repro.core.intervals import Interval, compute_intervals, interval_of_cut
from repro.core.metrics import (
    DegradationEvent,
    IntervalStats,
    ParaMountResult,
    TaskFailure,
)
from repro.core.online import OnlineParaMount
from repro.core.paramount import ParaMount
from repro.core.simulated import CostModel, simulate_schedule

__all__ = [
    "Interval",
    "compute_intervals",
    "interval_of_cut",
    "bounded_enumeration",
    "ParaMount",
    "OnlineParaMount",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "RetryPolicy",
    "CostModel",
    "simulate_schedule",
    "IntervalStats",
    "ParaMountResult",
    "TaskFailure",
    "DegradationEvent",
]
