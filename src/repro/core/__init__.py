"""ParaMount — the paper's contribution (§3–§4).

* :mod:`repro.core.intervals` — the interval partition: ``Gmin(e)`` from
  vector clocks, ``Gbnd(e)`` from the total order ``→p`` (Definition 1),
  and ``I(e)`` (Definition 2);
* :mod:`repro.core.bounded` — Algorithm 2, bounded enumeration of one
  interval via any sequential subroutine (lexical or BFS);
* :mod:`repro.core.paramount` — Algorithm 1, the offline parallel driver;
* :mod:`repro.core.online` — Algorithm 4, the online worker driven by a
  live event stream;
* :mod:`repro.core.scheduling` — adaptive task shaping between the
  partition and the executors: Figure-6a recursive splitting,
  largest-first dispatch, and the weights work-stealing backends use;
* :mod:`repro.core.executors` — serial / thread-pool (plain and
  work-stealing) / process-pool backends;
* :mod:`repro.core.simulated` — the deterministic parallel-machine cost
  model used to regenerate the paper's speedup figures on a GIL-bound
  single-core interpreter (see DESIGN.md §3);
* :mod:`repro.core.metrics` — per-interval statistics.
"""

from repro.core.bounded import bounded_enumeration
from repro.core.executors import (
    Executor,
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    ThreadExecutor,
    WorkStealingThreadExecutor,
)
from repro.core.intervals import (
    Interval,
    IntervalIndex,
    compute_intervals,
    interval_of_cut,
)
from repro.core.metrics import (
    DegradationEvent,
    IntervalStats,
    ParaMountResult,
    TaskFailure,
)
from repro.core.online import OnlineParaMount
from repro.core.paramount import ParaMount
from repro.core.scheduling import (
    SchedulePlan,
    SchedulePolicy,
    pivot_split,
    plan_schedule,
    split_interval,
    validate_split,
)
from repro.core.simulated import CostModel, simulate_schedule

__all__ = [
    "Interval",
    "IntervalIndex",
    "compute_intervals",
    "interval_of_cut",
    "bounded_enumeration",
    "ParaMount",
    "OnlineParaMount",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "WorkStealingThreadExecutor",
    "ProcessExecutor",
    "RetryPolicy",
    "SchedulePolicy",
    "SchedulePlan",
    "pivot_split",
    "split_interval",
    "validate_split",
    "plan_schedule",
    "CostModel",
    "simulate_schedule",
    "IntervalStats",
    "ParaMountResult",
    "TaskFailure",
    "DegradationEvent",
]
