"""Adaptive interval scheduling: split, largest-first dispatch, stealing.

ParaMount's intervals partition the lattice (Theorem 2) but their sizes
are wildly skewed — the total-order ablation shows a skewed linear
extension concentrating nearly all states in a handful of intervals, so
parallel wall-clock is bottlenecked on the largest interval no matter how
many workers run.  This module is the scheduling layer between
:func:`~repro.core.intervals.compute_intervals` and the executors:

* **recursive splitting** (paper Figure 6a): any interval ``[lo, hi]`` can
  be decomposed into disjoint sub-intervals by lowering its bound.  Pick
  the pivot event ``e = (t, hi[t])`` on the largest-slack thread (the same
  pivot rule as the ideal-counting DP in :mod:`repro.poset.ideals`); the
  cuts *without* ``e`` form the box ``[lo, hi − e]`` and the cuts *with*
  ``e`` form ``[lo ∨ vc(e), hi]`` — disjoint boxes whose consistent cuts
  exactly tile the parent's (every consistent cut containing ``e``
  dominates ``vc(e)``).  Splitting recurses until every piece's
  :attr:`~repro.core.intervals.Interval.size_bound` fits a per-worker
  budget;
* **largest-first dispatch**: tasks are ordered by descending size bound
  so the critical-path interval starts immediately instead of landing
  last in FIFO order (classic LPT list scheduling);
* **work stealing** is performed by the executors
  (:class:`~repro.core.executors.WorkStealingThreadExecutor`, and chunk
  re-splitting in :mod:`repro.core.mp`); this module supplies the task
  weights they steal by.

Sub-intervals keep their parent's ``event`` identity, so per-event
statistics, checkpoint identity (journal records are keyed by
``(event, lo, hi)``), and the sanitizer's disjointness check all survive
splitting unchanged.  :func:`validate_split` is the partition-preservation
check: sub-interval size bounds stay within the parent's and the exact
consistent-cut counts (via the independent ideal-counting DP) sum to it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.intervals import Interval
from repro.errors import IntervalError
from repro.poset.poset import Poset
from repro.types import Cut, EventId
from repro.util.cuts import cut_join, cut_leq

__all__ = [
    "SchedulePolicy",
    "SchedulePlan",
    "pivot_split",
    "split_interval",
    "validate_split",
    "plan_schedule",
    "balance_chunks",
]

#: Schedule names accepted by ``ParaMount(schedule=...)`` and the CLI.
SCHEDULE_NAMES = ("fifo", "largest", "split", "split-steal", "adaptive")


@dataclass(frozen=True)
class SchedulePolicy:
    """How interval tasks are shaped and ordered before execution.

    The named presets (``SchedulePolicy.parse``):

    ``"fifo"``
        The pre-scheduling behavior: one task per interval, dispatched in
        ``→p`` order.  Kept as an escape hatch — preferable when tasks are
        near-uniform (splitting buys nothing) or when a run must be
        byte-compatible with a journal written before scheduling existed.
    ``"largest"``
        One task per interval, dispatched largest-first (LPT).
    ``"split"``
        Largest-first plus recursive splitting of oversized intervals.
    ``"split-steal"`` / ``"adaptive"``
        ``"split"`` plus a hint that work-stealing backends should be
        used where available.  This is the default policy.
    """

    largest_first: bool = True
    split: bool = True
    steal: bool = True
    #: Target number of tasks per worker; the split budget is
    #: ``total size bound / (workers · oversubscribe)``.
    oversubscribe: int = 4
    #: Cap on the number of pieces one interval may be split into.
    max_parts: int = 64
    #: Run :func:`validate_split` on every split (exact count check via
    #: the ideal-counting DP) — for tests and diagnostics, not hot paths.
    validate: bool = False

    @property
    def name(self) -> str:
        if not self.largest_first:
            return "fifo"
        if not self.split:
            return "largest"
        return "split-steal" if self.steal else "split"

    @classmethod
    def parse(
        cls, spec: Union[None, str, "SchedulePolicy"]
    ) -> "SchedulePolicy":
        """Resolve ``None`` / a preset name / an explicit policy."""
        if spec is None:
            return cls()  # adaptive: split + largest-first + steal
        if isinstance(spec, cls):
            return spec
        name = str(spec).lower()
        if name == "fifo":
            return cls(largest_first=False, split=False, steal=False)
        if name == "largest":
            return cls(largest_first=True, split=False, steal=False)
        if name == "split":
            return cls(largest_first=True, split=True, steal=False)
        if name in ("split-steal", "adaptive"):
            return cls(largest_first=True, split=True, steal=True)
        raise ValueError(
            f"unknown schedule {spec!r}; expected one of {SCHEDULE_NAMES}"
        )


@dataclass
class SchedulePlan:
    """The concrete task list produced by :func:`plan_schedule`."""

    policy: SchedulePolicy
    #: Tasks in dispatch order (sub-intervals keep the parent's event).
    tasks: List[Interval]
    #: Per-task size budget used for splitting (``None`` when unsplit).
    budget: Optional[int]
    #: Identity string recorded in checkpoint journals: two runs produce
    #: interchangeable journals iff their descriptors match.
    descriptor: str
    #: Number of parent intervals that were split.
    split_intervals: int = 0
    #: Pieces per split parent event (1 for unsplit parents is omitted).
    parts_of: Dict[EventId, int] = field(default_factory=dict)

    def descriptors(self) -> List[Tuple[EventId, Cut, Cut]]:
        """The task triples in dispatch order — the wire form of the plan.

        Each ``(event, lo, hi)`` triple is simultaneously the checkpoint
        :class:`~repro.resilience.checkpoint.TaskKey` and everything a
        remote worker needs (with the poset) to re-run the task, which is
        what lets the distributed backend ship descriptors instead of
        closures.
        """
        return [(iv.event, iv.lo, iv.hi) for iv in self.tasks]


def pivot_split(
    poset: Poset, interval: Interval
) -> Optional[Tuple[Interval, Optional[Interval]]]:
    """One Figure-6a decomposition step, or ``None`` if unsplittable.

    The pivot is the maximal in-range event of the largest-slack thread —
    the same rule that keeps the ideal-counting DP balanced.  Returns
    ``(without, with_)`` where ``without`` excludes the pivot event and
    ``with_`` (possibly ``None`` when no consistent cut in the box
    contains the pivot) forces its causal past via the vector clock.
    """
    lo, hi = interval.lo, interval.hi
    pivot = -1
    slack = 0
    for t in range(len(lo)):
        s = hi[t] - lo[t]
        if s > slack:
            slack = s
            pivot = t
    if pivot < 0:  # a single cut: nothing to split
        return None
    e_idx = hi[pivot]
    without = Interval(
        event=interval.event,
        lo=lo,
        hi=hi[:pivot] + (e_idx - 1,) + hi[pivot + 1 :],
        owns_empty=interval.owns_empty,
    )
    forced = cut_join(lo, poset.vc(pivot, e_idx))
    with_: Optional[Interval] = None
    if cut_leq(forced, hi):
        with_ = Interval(event=interval.event, lo=forced, hi=hi)
    return without, with_


def split_interval(
    poset: Poset,
    interval: Interval,
    budget: int,
    max_parts: int = 64,
) -> List[Interval]:
    """Recursively split ``interval`` until every piece's size bound fits
    ``budget`` (or ``max_parts`` pieces exist), largest piece first.

    The pieces are pairwise-disjoint boxes whose consistent cuts exactly
    tile the parent's — the property :func:`validate_split` certifies and
    the property-based tests exercise on random posets.
    """
    if budget < 1:
        raise ValueError(f"budget must be ≥ 1, got {budget}")
    if interval.size_bound <= budget:
        return [interval]
    # Max-heap on size bound; the counter breaks ties deterministically.
    counter = 0
    heap: List[Tuple[int, int, Interval]] = [
        (-interval.size_bound, counter, interval)
    ]
    done: List[Interval] = []
    while heap and len(heap) + len(done) < max_parts:
        neg_bound, _, piece = heapq.heappop(heap)
        if -neg_bound <= budget:
            done.append(piece)
            continue
        split = pivot_split(poset, piece)
        if split is None:
            done.append(piece)
            continue
        without, with_ = split
        for part in (without, with_):
            if part is not None:
                counter += 1
                heapq.heappush(heap, (-part.size_bound, counter, part))
    done.extend(piece for _, _, piece in heap)
    return done


def validate_split(
    poset: Poset, parent: Interval, parts: Sequence[Interval]
) -> None:
    """Partition-preservation check for one split.

    Raises :class:`IntervalError` unless (1) every piece keeps the
    parent's event, (2) every piece's box lies inside the parent's, so the
    size bounds cannot exceed it, (3) the boxes are pairwise disjoint, and
    (4) the exact consistent-cut counts — computed by the independent
    ideal-counting DP — sum to the parent's count.
    """
    from repro.poset.ideals import count_ideals_in_interval

    for piece in parts:
        if piece.event != parent.event:
            raise IntervalError(
                f"split piece changed identity: {piece.event} != {parent.event}"
            )
        if not (cut_leq(parent.lo, piece.lo) and cut_leq(piece.hi, parent.hi)):
            raise IntervalError(
                f"split piece [{piece.lo}, {piece.hi}] escapes parent "
                f"[{parent.lo}, {parent.hi}]"
            )
    for i, a in enumerate(parts):
        for b in parts[i + 1 :]:
            if cut_leq(a.lo, b.hi) and cut_leq(b.lo, a.hi):
                raise IntervalError(
                    f"split pieces overlap: [{a.lo}, {a.hi}] and "
                    f"[{b.lo}, {b.hi}]"
                )
    total = sum(
        count_ideals_in_interval(poset, piece.lo, piece.hi) for piece in parts
    )
    expected = count_ideals_in_interval(poset, parent.lo, parent.hi)
    if total != expected:
        raise IntervalError(
            f"split of {parent.event} lost states: pieces count {total}, "
            f"parent counts {expected}"
        )


def plan_schedule(
    poset: Poset,
    intervals: Sequence[Interval],
    policy: Union[None, str, SchedulePolicy],
    workers: int,
) -> SchedulePlan:
    """Turn the static interval partition into a dispatchable task list.

    Scheduling only engages with more than one worker: a serial run gains
    nothing from extra task boundaries or reordering, so with
    ``workers <= 1`` the plan is the partition itself in ``→p`` order —
    byte-identical behavior to the pre-scheduling driver.  With more
    workers, intervals whose size bound exceeds the per-worker budget
    ``total / (workers · oversubscribe)`` are split, and tasks are
    dispatched largest-first.
    """
    policy = SchedulePolicy.parse(policy)
    tasks: List[Interval] = list(intervals)
    budget: Optional[int] = None
    split_intervals = 0
    parts_of: Dict[EventId, int] = {}
    if policy.split and workers > 1 and tasks:
        total = sum(iv.size_bound for iv in tasks)
        budget = max(total // (workers * policy.oversubscribe), 1)
        shaped: List[Interval] = []
        for interval in tasks:
            parts = split_interval(poset, interval, budget, policy.max_parts)
            if len(parts) > 1:
                if policy.validate:
                    validate_split(poset, interval, parts)
                split_intervals += 1
                parts_of[interval.event] = len(parts)
            shaped.extend(parts)
        tasks = shaped
    if policy.largest_first and workers > 1:
        # Stable sort: equally-sized tasks stay in →p order.
        tasks.sort(key=lambda iv: -iv.size_bound)
    descriptor = (
        "unsplit"
        if budget is None
        else f"split(budget={budget},cap={policy.max_parts})"
    )
    return SchedulePlan(
        policy=policy,
        tasks=tasks,
        budget=budget,
        descriptor=descriptor,
        split_intervals=split_intervals,
        parts_of=parts_of,
    )


def balance_chunks(
    items: Sequence, weights: Sequence[int], num_chunks: int
) -> List[List]:
    """Greedy LPT binning of weighted items into at most ``num_chunks``
    chunks, returned heaviest-first (the mp backend's largest-first
    dispatch unit).  Empty chunks are dropped."""
    if num_chunks < 1:
        raise ValueError(f"num_chunks must be ≥ 1, got {num_chunks}")
    bins: List[List] = [[] for _ in range(num_chunks)]
    loads = [0] * num_chunks
    order = sorted(range(len(items)), key=lambda i: -weights[i])
    for i in order:
        k = loads.index(min(loads))
        bins[k].append(items[i])
        loads[k] += weights[i]
    paired = sorted(zip(loads, range(num_chunks)), key=lambda p: -p[0])
    return [bins[k] for load, k in paired if bins[k]]
