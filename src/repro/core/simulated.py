"""Deterministic simulated parallel machine.

Why this exists (DESIGN.md §3): the paper measures wall-clock speedups of
1–8 Java threads on an 8-core machine.  CPython's GIL serializes compute
threads and this container has a single core, so real wall-clock cannot
exhibit the paper's parallelism.  Instead, the enumeration algorithms
meter their *abstract work* (inner-loop iterations) and *peak live
intermediate states*, and this module converts those meters into modeled
seconds on a k-worker machine:

* **work → time**: each work unit costs ``seconds_per_work_unit``; each
  task (interval) additionally pays a constant scheduling/setup overhead
  (storing ``Gmin``/``Gbnd`` is the paper's ``O(n)`` per-worker cost).
* **memory → GC pressure**: a task whose live intermediate state exceeds
  ``gc_threshold`` cuts is slowed by a logarithmic garbage-collection
  factor.  This is the mechanism the paper gives for B-Para(1) beating
  sequential BFS and for the superlinear speedups of Figure 10 ("the
  running time spent by Java garbage collector is significantly reduced").
* **k workers**: intervals are scheduled by greedy list scheduling in
  ``→p`` order — each worker pulls the next interval when it becomes free,
  exactly Algorithm 1's worker loop.  The makespan is the modeled parallel
  time.

Everything is deterministic, so speedup curves are exactly reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["CostModel", "ScheduleResult", "simulate_schedule"]


@dataclass(frozen=True)
class CostModel:
    """Converts abstract enumeration costs into modeled seconds."""

    #: Seconds per abstract work unit (one inner-loop iteration).  The
    #: default roughly matches the paper's Java testbed scale: lexical
    #: enumeration there did ~1e8 unit-equivalents per second.
    seconds_per_work_unit: float = 1.0e-8
    #: Fixed per-task overhead in seconds (worker pulls an event, stores
    #: Gmin/Gbnd — the O(n) step of Algorithm 1 lines 4–5).
    task_overhead_seconds: float = 2.0e-6
    #: Live intermediate states a heap tolerates before GC pressure begins.
    gc_threshold: int = 4096
    #: Strength of the GC slowdown (multiplier per doubling above threshold).
    gc_alpha: float = 0.30

    def gc_factor(self, peak_live: int) -> float:
        """Multiplicative GC slowdown for a task holding ``peak_live`` cuts."""
        if peak_live <= self.gc_threshold:
            return 1.0
        return 1.0 + self.gc_alpha * math.log2(peak_live / self.gc_threshold)

    def task_seconds(self, work: int, peak_live: int) -> float:
        """Modeled seconds for one enumeration task."""
        return self.task_overhead_seconds + (
            work * self.seconds_per_work_unit * self.gc_factor(peak_live)
        )

    def sequential_seconds(self, work: int, peak_live: int) -> float:
        """Modeled seconds for a whole sequential run (a single task whose
        live set is the algorithm's global intermediate state)."""
        return work * self.seconds_per_work_unit * self.gc_factor(peak_live)


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling tasks on a k-worker simulated machine."""

    num_workers: int
    makespan: float
    total_busy: float
    per_worker_busy: List[float]

    @property
    def utilization(self) -> float:
        """Mean worker utilization (busy / makespan)."""
        if self.makespan <= 0:
            return 1.0
        return self.total_busy / (self.num_workers * self.makespan)


def simulate_schedule(task_seconds: Sequence[float], num_workers: int) -> ScheduleResult:
    """Greedy in-order list scheduling: worker ``argmin(finish)`` takes the
    next task.  This is exactly the paper's worker loop, where each thread
    pulls the next event in ``→p`` when it finishes an interval.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be ≥ 1, got {num_workers}")
    finish = [0.0] * num_workers
    busy = [0.0] * num_workers
    for t in task_seconds:
        if t < 0:
            raise ValueError(f"negative task time {t}")
        w = min(range(num_workers), key=finish.__getitem__)
        finish[w] += t
        busy[w] += t
    makespan = max(finish) if finish else 0.0
    return ScheduleResult(
        num_workers=num_workers,
        makespan=makespan,
        total_busy=sum(busy),
        per_worker_busy=busy,
    )
