"""The online ParaMount worker — the paper's Algorithm 4.

Events arrive one at a time while the monitored program runs.  Each
insertion happens inside one critical section that (a) appends the event to
the poset, (b) reads ``Gmin(e)`` off the event's clock, and (c) snapshots
the per-thread maxima as ``Gbnd(e)`` — the builder's
:meth:`~repro.poset.builder.PosetBuilder.append_stamped` is exactly that
atomic block.  The interval ``I(e)`` is then enumerated *outside* the
critical section, possibly concurrently with further insertions and other
interval enumerations (Theorem 3: an enumeration bounded by ``Gbnd(e)``
never looks at events inserted later, so there is no interference).

Because the insertion order is, by construction, a linear extension of
happened-before (the builder rejects anything else), the online intervals
partition the lattice of the final poset exactly as in the offline case —
the equivalence the tests check.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from repro.core.bounded import bounded_enumeration, make_bounded_subroutine
from repro.core.intervals import Interval
from repro.core.metrics import IntervalStats, ParaMountResult
from repro.errors import ReproError
from repro.obs.observer import ensure_observer
from repro.poset.builder import PosetBuilder
from repro.poset.event import Event
from repro.poset.poset import Poset
from repro.types import Cut
from repro.util.cuts import zero_cut
from repro.util.log import get_logger

__all__ = ["OnlineParaMount"]

logger = get_logger(__name__)

#: Callback invoked per enumerated state: ``(cut, triggering_event)``.
OnlineVisitor = Callable[[Cut, Event], None]


class OnlineParaMount:
    """Online, parallel enumeration of global states from a live event feed.

    Parameters
    ----------
    num_threads:
        Width of the monitored computation.
    subroutine:
        Bounded sequential subroutine (``"lexical"`` by default, as in the
        paper's online detector, or ``"bfs"``/``"dfs"``).
    on_state:
        Optional callback invoked for every enumerated global state with
        the cut and the event whose interval produced it — this is where a
        predicate detector plugs in (paper Figure 7).  When insertions come
        from multiple threads the callback must be thread-safe (pass
        ``synchronized=True`` to get a built-in mutex).
    synchronized:
        Wrap ``on_state`` and the statistics in a mutex so :meth:`insert`
        may be called from concurrently running threads.
    memory_budget:
        Per-interval cap on live intermediate states.
    strict:
        In strict mode (the default, today's behavior) a malformed
        insertion — an event whose arrival order is not a linear extension
        of happened-before, a clock of the wrong width, or any other
        :class:`~repro.errors.ReproError` — propagates to the caller.
        With ``strict=False`` the offending event is *quarantined* instead:
        :meth:`insert` returns ``None``, the healthy stream continues, and
        the structured report is available as :attr:`quarantine`.
    split_budget:
        Optional size-bound budget for the inserted event's interval.  When
        set, an interval whose
        :attr:`~repro.core.intervals.Interval.size_bound` exceeds the
        budget is enumerated as its Figure-6a sub-intervals (see
        :mod:`repro.core.scheduling`) instead of in one go.  The visit
        multiset is unchanged, but a detector that aborts or yields between
        sub-intervals regains control every ``split_budget`` states worth
        of box volume — the online analogue of the offline split schedule.
        ``None`` (the default) keeps today's one-task-per-event behavior.
    observer:
        Optional :class:`repro.obs.Observer`.  Every insertion records a
        ``clock`` span (the critical section: append + stamp) and an
        ``enumerate`` span per interval task, feeds
        ``events_inserted_total`` and the canonical enumeration series,
        and drives the observer's live progress reporter, if any.  The
        default no-op observer leaves the hot path untouched.
    """

    def __init__(
        self,
        num_threads: int,
        subroutine: str = "lexical",
        on_state: Optional[OnlineVisitor] = None,
        synchronized: bool = False,
        memory_budget: Optional[int] = None,
        strict: bool = True,
        split_budget: Optional[int] = None,
        observer=None,
    ):
        self.builder = PosetBuilder(num_threads)
        self._view = self.builder.view()
        self._subroutine = make_bounded_subroutine(
            subroutine, self._view, memory_budget=memory_budget
        )
        self._on_state = on_state
        self._stats_lock = threading.Lock() if synchronized else None
        self._visit_lock = threading.Lock() if synchronized else None
        self._result = ParaMountResult()
        self._intervals: List[Interval] = []
        self.strict = strict
        if split_budget is not None and split_budget < 1:
            raise ValueError(f"split_budget must be ≥ 1, got {split_budget}")
        self.split_budget = split_budget
        self.observer = ensure_observer(observer)
        self._inserted = 0
        from repro.resilience.quarantine import QuarantineReport

        self.quarantine = QuarantineReport()

    @property
    def num_threads(self) -> int:
        """Width of the monitored computation."""
        return self.builder.num_threads

    def insert(self, event: Event) -> Optional[IntervalStats]:
        """Insert one event and enumerate its interval ``I(e)``.

        Returns the interval's statistics.  May be called concurrently from
        many threads when constructed with ``synchronized=True`` — the
        paper's detector calls it from the thread that just executed the
        event ("no additional threads are spawned for ParaMount", §5.2).

        In non-strict mode a malformed event is quarantined and ``None``
        is returned; the poset, intervals, and totals are untouched, so
        the detector keeps running on the healthy prefix of every thread.
        """
        obs = self.observer
        index = self._inserted
        self._inserted += 1
        try:
            with obs.span("append_stamped", "clock"):
                # Algorithm 4 lines 1–5
                gbnd = self.builder.append_stamped(event)
        except ReproError as exc:
            if self.strict:
                raise
            # QuarantineReport.add logs the structured warning.
            if obs.enabled:
                obs.instant(
                    "quarantine", "clock", event=str(event.eid), index=index
                )
                obs.counter("events_quarantined_total").inc()
            self.quarantine.add(
                index,
                "online-event",
                str(exc),
                payload=(event.eid, event.vc),
            )
            return None
        if obs.enabled:
            obs.counter("events_inserted_total").inc()
        if obs.progress is not None:
            obs.progress.on_event()
        owns_empty = sum(gbnd) == 1  # first event in →p owns the empty state
        interval = Interval(
            event=event.eid,
            lo=zero_cut(self.num_threads) if owns_empty else event.vc,
            hi=gbnd,
            owns_empty=owns_empty,
        )
        visit = None
        if self._on_state is not None:
            on_state = self._on_state
            if self._visit_lock is not None:
                lock = self._visit_lock

                def visit(cut: Cut) -> None:
                    with lock:
                        on_state(cut, event)

            else:

                def visit(cut: Cut) -> None:
                    on_state(cut, event)

        # Null observer passes clock=None: bounded_enumeration then uses
        # time.perf_counter itself, keeping unobserved runs unchanged.
        task_clock = obs.clock if obs.enabled else None
        t_start = obs.clock() if obs.enabled else 0.0
        if (
            self.split_budget is not None
            and interval.size_bound > self.split_budget
        ):
            from repro.core.scheduling import split_interval

            # The snapshot view is safe here: sub-interval bounds stay
            # within Gbnd(e), which never references later insertions
            # (Theorem 3), so splitting commutes with concurrent inserts.
            stats = None
            pieces = 0
            for piece in split_interval(
                self._view, interval, self.split_budget
            ):
                piece_stats = bounded_enumeration(
                    self._subroutine, piece, visit, clock=task_clock
                )
                pieces += 1
                stats = (
                    piece_stats if stats is None else stats.merged(piece_stats)
                )
            if obs.enabled and pieces > 1:
                obs.counter("intervals_split_total").inc()
        else:
            stats = bounded_enumeration(
                self._subroutine, interval, visit, clock=task_clock
            )
        if obs.enabled:
            obs.record(
                f"I({interval.event})",
                "enumerate",
                t_start,
                obs.clock() - t_start,
                attrs={"event": str(interval.event), "states": stats.states},
            )
        obs.task_done(stats)
        if self._stats_lock is not None:
            with self._stats_lock:
                self._result.add_interval(stats)
                self._intervals.append(interval)
        else:
            self._result.add_interval(stats)
            self._intervals.append(interval)
        return stats

    @property
    def result(self) -> ParaMountResult:
        """Aggregate statistics over all intervals enumerated so far."""
        return self._result

    @property
    def intervals(self) -> List[Interval]:
        """The intervals processed so far, in insertion order."""
        return list(self._intervals)

    def snapshot_poset(self) -> Poset:
        """Freeze the poset built so far (e.g. at program termination)."""
        return self.builder.build()
