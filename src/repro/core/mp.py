"""True-parallel interval counting with a process pool.

CPython threads cannot speed up the enumeration compute (GIL), but
ParaMount's intervals are embarrassingly parallel, so on a multicore host
*processes* can.  This module ships the plumbing that makes that practical:

* the poset is serialized **once** and installed in each worker process by
  a pool initializer (sending it with every task would drown the speedup);
* tasks are interval *chunks* (contiguous runs of the ``→p`` order) to
  amortize dispatch overhead;
* workers return only counts and cost meters — visitor callbacks cannot
  cross process boundaries, so this backend suits counting and
  self-contained predicate evaluation, exactly like the
  :class:`~repro.core.executors.ProcessExecutor` contract.

The backend is crash-survivable: chunks are idempotent (Theorem 2), so a
dead worker (``BrokenProcessPool``), a hung chunk (``chunk_timeout``), or
a chunk that raises is retried with exponential backoff on a **rebuilt**
pool up to :class:`~repro.core.executors.RetryPolicy` attempts; a chunk
that still fails is degraded to in-parent serial enumeration, and only a
failure that survives even that lands as a
:class:`~repro.core.metrics.TaskFailure` on the result.  A
:class:`~repro.resilience.FaultSpec` injects deterministic worker crashes
(a literal ``os._exit``), hangs, slowdowns, poisoned chunks, and
initializer failures for testing; a
:class:`~repro.resilience.CheckpointJournal` records finished intervals
from the parent so a killed run resumes where it left off.

On a single-core container this runs correctly but no faster — the modeled
machine (:mod:`repro.core.simulated`) remains the speedup-measurement
instrument; this module is the deployment path for real multicore hosts.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.executors import RetryPolicy
from repro.core.intervals import Interval, compute_intervals
from repro.core.metrics import (
    DegradationEvent,
    IntervalStats,
    ParaMountResult,
    TaskFailure,
)
from repro.core.scheduling import (
    SchedulePolicy,
    balance_chunks,
    pivot_split,
    plan_schedule,
)
from repro.enumeration.base import make_enumerator
from repro.errors import InjectedFaultError
from repro.obs.observer import ensure_observer
from repro.poset.io import poset_from_dict, poset_to_dict
from repro.poset.poset import Poset
from repro.types import EventId
from repro.util.log import get_logger
from repro.util.timing import Stopwatch

__all__ = ["paramount_count_multiprocessing"]

logger = get_logger(__name__)

# Per-worker-process cache, installed by the pool initializer.
_WORKER_POSET: Optional[Poset] = None
_WORKER_SUBROUTINE: str = "lexical"
_WORKER_BUDGET: Optional[int] = None
_WORKER_FAULTS = None


def _init_worker(
    poset_data: Dict,
    subroutine: str,
    memory_budget: Optional[int],
    fault_spec=None,
    pool_round: int = 0,
) -> None:
    """Pool initializer: deserialize the poset once per worker process.

    With a fault spec whose ``init_crash_rounds`` exceeds ``pool_round``,
    the initializer raises — concurrent.futures then marks the whole pool
    broken, exactly like a real initializer bug or an import-time OOM.
    """
    global _WORKER_POSET, _WORKER_SUBROUTINE, _WORKER_BUDGET, _WORKER_FAULTS
    if fault_spec is not None and pool_round < fault_spec.init_crash_rounds:
        raise InjectedFaultError("crash", "initializer", pool_round)
    _WORKER_POSET = poset_from_dict(poset_data)
    _WORKER_SUBROUTINE = subroutine
    _WORKER_BUDGET = memory_budget
    _WORKER_FAULTS = fault_spec


#: One worker-result row: the task's identity triple plus its counters.
#: Rows carry their own ``(lo, hi)`` because with adaptive scheduling a
#: chunk may hold *sub*-intervals of a split parent — the bounds are the
#: checkpoint identity of the row, not recoverable from the event alone.
#: The trailing ``(seconds, epoch_t0, pid)`` triple is the row's timing:
#: measured enumeration seconds (``time.perf_counter`` in the worker, so
#: ``IntervalStats.seconds`` is real on the mp path too), the interval's
#: start on the shared epoch timeline (``time.time``, which *is*
#: comparable across processes), and the worker's pid — enough for the
#: parent's observer to rebase the span onto its own clock and draw one
#: trace lane per worker process.
Row = Tuple[EventId, tuple, tuple, int, int, int, float, float, int]


def _enumerate_chunk(
    poset: Poset,
    subroutine: str,
    memory_budget: Optional[int],
    chunk: Sequence[Tuple[EventId, tuple, tuple]],
) -> List[Row]:
    enumerator = make_enumerator(subroutine, poset, memory_budget=memory_budget)
    out: List[Row] = []
    pid = os.getpid()
    for event, lo, hi in chunk:
        epoch_t0 = time.time()
        t0 = time.perf_counter()
        result = enumerator.enumerate_interval(lo, hi)
        seconds = time.perf_counter() - t0
        out.append(
            (
                event,
                lo,
                hi,
                result.states,
                result.work,
                result.peak_live,
                seconds,
                epoch_t0,
                pid,
            )
        )
    return out


def _count_chunk(
    chunk_index: int,
    attempt: int,
    chunk: Sequence[Tuple[EventId, tuple, tuple]],
) -> List[Row]:
    """Enumerate a chunk of intervals in the worker; return their stats.

    Consults the installed fault plan first: a ``crash`` is a literal
    ``os._exit`` (breaking the real pool), a ``hang``/``slow`` sleeps, and
    a poisoned chunk raises on every attempt.
    """
    assert _WORKER_POSET is not None, "worker initializer did not run"
    if _WORKER_FAULTS is not None:
        from repro.resilience.faults import FAULT_CRASH, apply_fault

        kind = _WORKER_FAULTS.decide(("mp", chunk_index), attempt)
        if kind == FAULT_CRASH:
            os._exit(1)  # an abrupt worker death, not a Python exception
        apply_fault(kind, _WORKER_FAULTS, ("mp", chunk_index), attempt)
    return _enumerate_chunk(
        _WORKER_POSET, _WORKER_SUBROUTINE, _WORKER_BUDGET, chunk
    )


def paramount_count_multiprocessing(
    poset: Poset,
    subroutine: str = "lexical",
    workers: int = 2,
    chunk_size: int = 16,
    memory_budget: Optional[int] = None,
    order: Optional[Sequence[EventId]] = None,
    retry: Optional[RetryPolicy] = None,
    chunk_timeout: Optional[float] = None,
    fault_spec=None,
    checkpoint=None,
    schedule="fifo",
    observer=None,
) -> ParaMountResult:
    """Count all consistent global states with a real process pool.

    Returns the same :class:`~repro.core.metrics.ParaMountResult` shape as
    :meth:`ParaMount.run`, with per-interval stats in ``→p`` order; the
    total equals the sequential count (the partition theorem is
    backend-independent).  Worker failures are retried per ``retry`` and
    finally degraded to in-parent serial enumeration — every retry,
    degradation, and permanent failure is recorded on the result.

    ``schedule`` defaults to ``"fifo"`` here (unlike the in-process
    driver): static contiguous chunking keeps chunk indices — the identity
    a :class:`~repro.resilience.FaultSpec` keys on and the unit
    ``chunk_size`` describes — stable across runs.  With
    ``schedule="split-steal"`` (or ``"split"``/``"largest"``) oversized
    intervals are pre-split via the Figure-6a decomposition, chunks are
    LPT-balanced by size bound and dispatched heaviest-first, and a chunk
    that exceeds ``chunk_timeout`` has its unfinished intervals re-split
    into smaller chunks instead of being retried whole.

    ``observer`` (an optional :class:`repro.obs.Observer`) receives spans
    for planning and every enumerated interval — workers time intervals on
    the shared epoch clock and ship ``(seconds, epoch_t0, pid)`` back in
    each :data:`Row`, so the parent rebases them onto its own timeline
    with one trace lane per worker process — plus retry markers and the
    canonical counters.
    """
    if workers < 1:
        raise ValueError(f"workers must be ≥ 1, got {workers}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be ≥ 1, got {chunk_size}")
    obs = ensure_observer(observer)
    retry = retry if retry is not None else RetryPolicy()
    policy = SchedulePolicy.parse(schedule)
    with obs.span("compute_intervals", "plan", events=poset.num_events):
        intervals: List[Interval] = compute_intervals(poset, order)
    with obs.span("plan_schedule", "plan", workers=workers):
        plan = plan_schedule(poset, intervals, policy, workers)

    completed: Dict[tuple, IntervalStats] = {}
    if checkpoint is not None:
        from repro.resilience.checkpoint import poset_digest

        completed = checkpoint.load(
            poset_digest(poset), subroutine, plan.tasks, schedule=plan.descriptor
        )
    payload = [
        (iv.event, iv.lo, iv.hi)
        for iv in plan.tasks
        if (iv.event, iv.lo, iv.hi) not in completed
    ]
    adaptive = policy.largest_first and workers > 1
    if adaptive:
        weights = [
            Interval(event=e, lo=lo, hi=hi).size_bound for e, lo, hi in payload
        ]
        num_chunks = max(
            workers * policy.oversubscribe,
            -(-len(payload) // chunk_size),  # ceil division
        )
        chunks = balance_chunks(payload, weights, num_chunks)
    else:
        chunks = [
            payload[i : i + chunk_size]
            for i in range(0, len(payload), chunk_size)
        ]

    result = ParaMountResult()
    result.order_work = poset.num_events * poset.num_threads
    result.resumed_intervals = len(completed)
    result.schedule = plan.policy.name
    result.workers = workers
    result.split_intervals = plan.split_intervals
    if obs.enabled:
        if checkpoint is not None and getattr(checkpoint, "observer", None) is None:
            checkpoint.observer = obs
        if plan.split_intervals:
            obs.counter("intervals_split_total").inc(plan.split_intervals)
    if obs.progress is not None:
        obs.progress.set_total(len(plan.tasks))
        for _ in completed:
            obs.progress.on_task_done(0, 0.0)
    poset_data = poset_to_dict(poset)
    stats_by_event: Dict[EventId, IntervalStats] = {}
    done_keys = set(completed)
    for stats in completed.values():
        prior = stats_by_event.get(stats.event)
        stats_by_event[stats.event] = (
            stats if prior is None else prior.merged(stats)
        )

    def absorb(rows: List[Row]) -> None:
        for event, lo, hi, states, work, peak, seconds, epoch_t0, pid in rows:
            key = (event, tuple(lo), tuple(hi))
            if key in done_keys:  # a resubmitted row that already landed
                continue
            done_keys.add(key)
            stats = IntervalStats(
                event=event,
                lo=key[1],
                hi=key[2],
                states=states,
                work=work,
                peak_live=peak,
                seconds=seconds,
            )
            result.tasks.append(stats)
            prior = stats_by_event.get(event)
            stats_by_event[event] = (
                stats if prior is None else prior.merged(stats)
            )
            if checkpoint is not None:
                checkpoint.record(stats)
            if obs.enabled:
                obs.record_epoch(
                    f"I({event})",
                    "enumerate",
                    epoch_t0,
                    seconds,
                    worker=f"pid-{pid}",
                    attrs={"event": str(event), "states": states, "work": work},
                )
                obs.gauge("queue_depth").set(
                    max(len(plan.tasks) - len(done_keys), 0)
                )
            obs.task_done(stats)

    resplit = _make_resplitter(poset) if adaptive and policy.split else None
    with Stopwatch() as sw:
        _run_chunks(
            chunks,
            poset_data,
            poset,
            subroutine,
            workers,
            memory_budget,
            retry,
            chunk_timeout,
            fault_spec,
            absorb,
            result,
            resplit=resplit,
            done_keys=done_keys,
            observer=obs,
        )
    for interval in intervals:  # aggregate in →p order
        stats = stats_by_event.get(interval.event)
        if stats is not None:
            result.add_interval(replace(stats, lo=interval.lo, hi=interval.hi))
    result.wall_time = sw.elapsed
    return result


def _make_resplitter(poset: Poset):
    """Chunk re-splitting for straggler chunks (split schedules only).

    Takes the unfinished rows of a timed-out chunk and returns smaller
    chunks: each row's interval goes through one
    :func:`~repro.core.scheduling.pivot_split` step and the resulting rows
    are rebalanced into twice as many chunks.  Returns ``None`` when
    nothing can be split further (all point boxes) — the caller then falls
    back to the plain retry path.
    """

    def resplit(rows):
        out = []
        split_any = False
        for event, lo, hi in rows:
            parts = pivot_split(poset, Interval(event=event, lo=lo, hi=hi))
            if parts is None:
                out.append((event, lo, hi))
                continue
            split_any = True
            for piece in parts:
                if piece is not None:
                    out.append((piece.event, piece.lo, piece.hi))
        if not split_any or len(out) < 2:
            return None
        weights = [
            Interval(event=e, lo=lo, hi=hi).size_bound for e, lo, hi in out
        ]
        return balance_chunks(out, weights, min(len(out), 4))

    return resplit


def _run_chunks(
    chunks,
    poset_data,
    poset,
    subroutine,
    workers,
    memory_budget,
    retry,
    chunk_timeout,
    fault_spec,
    absorb,
    result,
    resplit=None,
    done_keys=None,
    observer=None,
) -> None:
    """Drive all chunks through the pool with retry/rebuild/degrade.

    With ``resplit`` set (split schedules), a chunk that times out is not
    retried whole: its unfinished rows are re-split into smaller chunks
    appended to the queue, inheriting the straggler's attempt count —
    stragglers shrink instead of hogging a worker again.
    """
    chunks = list(chunks)  # re-splitting appends new chunks
    pending = {index: 0 for index in range(len(chunks))}  # chunk -> attempts
    pool = None
    pool_round = 0
    obs = ensure_observer(observer)

    def make_pool():
        nonlocal pool_round
        p = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(poset_data, subroutine, memory_budget, fault_spec, pool_round),
        )
        pool_round += 1
        return p

    def abandon_pool(p) -> None:
        # A broken or hung pool must not block the parent; workers that
        # are mid-hang exit on their own once their sleep elapses.
        p.shutdown(wait=False, cancel_futures=True)

    try:
        round_number = 0
        while pending:
            if pool is None:
                pool = make_pool()
            failed: Dict[int, str] = {}
            timed_out: set = set()
            pool_broke = False
            submitted: Dict[int, concurrent.futures.Future] = {}
            try:
                for index, attempt in pending.items():
                    submitted[index] = pool.submit(
                        _count_chunk, index, attempt, chunks[index]
                    )
            except BrokenProcessPool:
                # The pool can be discovered broken at submit time (e.g. an
                # initializer crash surfaced between rounds).
                for index in pending:
                    if index not in submitted:
                        failed[index] = "process pool broke at submission"
                pool_broke = True
            for index, future in submitted.items():
                if pool_broke:
                    # Sibling futures of a broken pool fail immediately;
                    # collect them without waiting out the timeout again.
                    if index not in failed:
                        failed[index] = "process pool broke"
                    continue
                try:
                    absorb(future.result(timeout=chunk_timeout))
                    del pending[index]
                except concurrent.futures.TimeoutError:
                    failed[index] = (
                        f"chunk {index} exceeded the {chunk_timeout:g}s timeout"
                    )
                    timed_out.add(index)
                    pool_broke = True  # abandon: a hung worker poisons slots
                except BrokenProcessPool:
                    failed[index] = (
                        f"process pool broke under chunk {index} "
                        f"(worker died or initializer failed)"
                    )
                    pool_broke = True
                except Exception as exc:
                    failed[index] = f"{type(exc).__name__}: {exc}"
            if pool_broke:
                abandon_pool(pool)
                pool = None
            if not failed:
                continue
            round_number += 1
            result.retries += len(failed)
            if obs.enabled:
                obs.counter("retry_attempts_total").inc(len(failed))
                for index, reason in failed.items():
                    obs.instant(
                        "retry", "resilience", chunk=index, reason=reason
                    )
            time.sleep(retry.delay(min(round_number, 8)))
            for index, reason in failed.items():
                pending[index] += 1
                if (
                    resplit is not None
                    and index in timed_out
                    and pending[index] < retry.max_attempts
                ):
                    rows = [
                        row
                        for row in chunks[index]
                        if done_keys is None or tuple(row) not in done_keys
                    ]
                    smaller = resplit(rows) if rows else None
                    if smaller:
                        # Straggler: shrink it instead of retrying whole.
                        attempts = pending.pop(index)
                        for new_chunk in smaller:
                            chunks.append(new_chunk)
                            pending[len(chunks) - 1] = attempts
                        continue
                if pending[index] < retry.max_attempts:
                    continue
                # Retries exhausted: degrade this chunk to in-parent serial
                # enumeration (the bottom of the executor ladder).
                del pending[index]
                logger.warning(
                    "chunk %d degraded processes -> serial: %s",
                    index,
                    reason,
                    extra={
                        "degrade_kind": "executor",
                        "degrade_from": "processes",
                        "degrade_to": "serial",
                        "chunk_index": index,
                    },
                )
                if obs.enabled:
                    obs.instant(
                        "degrade_executor",
                        "resilience",
                        chunk=index,
                        to="serial",
                    )
                result.degradations.append(
                    DegradationEvent(
                        kind="executor",
                        from_name="processes",
                        to_name="serial",
                        reason=f"chunk {index}: {reason}",
                    )
                )
                try:
                    absorb(
                        _enumerate_chunk(
                            poset, subroutine, memory_budget, chunks[index]
                        )
                    )
                except Exception as exc:
                    result.failures.append(
                        TaskFailure(
                            task_index=index,
                            attempts=retry.max_attempts,
                            error=f"{type(exc).__name__}: {exc}",
                            executor="processes",
                        )
                    )
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
