"""True-parallel interval counting with a process pool.

CPython threads cannot speed up the enumeration compute (GIL), but
ParaMount's intervals are embarrassingly parallel, so on a multicore host
*processes* can.  This module ships the plumbing that makes that practical:

* the poset is serialized **once** and installed in each worker process by
  a pool initializer (sending it with every task would drown the speedup);
* tasks are interval *chunks* (contiguous runs of the ``→p`` order) to
  amortize dispatch overhead;
* workers return only counts and cost meters — visitor callbacks cannot
  cross process boundaries, so this backend suits counting and
  self-contained predicate evaluation, exactly like the
  :class:`~repro.core.executors.ProcessExecutor` contract.

On a single-core container this runs correctly but no faster — the modeled
machine (:mod:`repro.core.simulated`) remains the speedup-measurement
instrument; this module is the deployment path for real multicore hosts.
"""

from __future__ import annotations

import concurrent.futures
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.intervals import Interval, compute_intervals
from repro.core.metrics import IntervalStats, ParaMountResult
from repro.enumeration.base import make_enumerator
from repro.poset.io import poset_from_dict, poset_to_dict
from repro.poset.poset import Poset
from repro.types import EventId
from repro.util.timing import Stopwatch

__all__ = ["paramount_count_multiprocessing"]

# Per-worker-process cache, installed by the pool initializer.
_WORKER_POSET: Optional[Poset] = None
_WORKER_SUBROUTINE: str = "lexical"
_WORKER_BUDGET: Optional[int] = None


def _init_worker(poset_data: Dict, subroutine: str, memory_budget: Optional[int]) -> None:
    """Pool initializer: deserialize the poset once per worker process."""
    global _WORKER_POSET, _WORKER_SUBROUTINE, _WORKER_BUDGET
    _WORKER_POSET = poset_from_dict(poset_data)
    _WORKER_SUBROUTINE = subroutine
    _WORKER_BUDGET = memory_budget


def _count_chunk(
    chunk: Sequence[Tuple[EventId, tuple, tuple]],
) -> List[Tuple[EventId, int, int, int]]:
    """Enumerate a chunk of intervals in the worker; return their stats."""
    assert _WORKER_POSET is not None, "worker initializer did not run"
    enumerator = make_enumerator(
        _WORKER_SUBROUTINE, _WORKER_POSET, memory_budget=_WORKER_BUDGET
    )
    out: List[Tuple[EventId, int, int, int]] = []
    for event, lo, hi in chunk:
        result = enumerator.enumerate_interval(lo, hi)
        out.append((event, result.states, result.work, result.peak_live))
    return out


def paramount_count_multiprocessing(
    poset: Poset,
    subroutine: str = "lexical",
    workers: int = 2,
    chunk_size: int = 16,
    memory_budget: Optional[int] = None,
    order: Optional[Sequence[EventId]] = None,
) -> ParaMountResult:
    """Count all consistent global states with a real process pool.

    Returns the same :class:`~repro.core.metrics.ParaMountResult` shape as
    :meth:`ParaMount.run`, with per-interval stats in ``→p`` order; the
    total equals the sequential count (the partition theorem is
    backend-independent).
    """
    if workers < 1:
        raise ValueError(f"workers must be ≥ 1, got {workers}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be ≥ 1, got {chunk_size}")
    intervals: List[Interval] = compute_intervals(poset, order)
    by_event = {iv.event: iv for iv in intervals}
    payload = [(iv.event, iv.lo, iv.hi) for iv in intervals]
    chunks = [
        payload[i : i + chunk_size] for i in range(0, len(payload), chunk_size)
    ]
    result = ParaMountResult()
    result.order_work = poset.num_events * poset.num_threads
    with Stopwatch() as sw:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(poset_to_dict(poset), subroutine, memory_budget),
        ) as pool:
            for chunk_stats in pool.map(_count_chunk, chunks):
                for event, states, work, peak in chunk_stats:
                    interval = by_event[event]
                    result.add_interval(
                        IntervalStats(
                            event=event,
                            lo=interval.lo,
                            hi=interval.hi,
                            states=states,
                            work=work,
                            peak_live=peak,
                        )
                    )
    result.wall_time = sw.elapsed
    return result
