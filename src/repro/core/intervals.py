"""The interval partition at the heart of ParaMount (paper §3.1).

For a total order ``→p`` over the events (any linear extension of
happened-before — Property 1) and each event ``e``:

* ``Gmin(e)`` is the least global state containing ``e``, read directly off
  the vector clock: ``Gmin(e) = e.vc`` (§2.2);
* ``Gbnd(e)`` is the global state containing exactly the events ordered at
  or before ``e``: ``Gbnd(e) = {f | f = e ∨ f →p e}`` (Definition 1),
  which is always consistent (Theorem 1);
* the interval ``I(e) = {G | Gmin(e) ≤ G ≤ Gbnd(e)}`` (Definition 2).

The intervals partition the full set of consistent global states: every
state belongs to the interval of the ``→p``-last event in it (Lemma 2), and
to no other (Lemma 3).  The empty state is special-cased into the first
event's interval (paper Figure 6a) by lowering that interval's bound to the
zero cut — which adds exactly the empty state, since the only consistent
cut below ``Gbnd(e₁)`` not containing ``e₁`` is empty (``e₁`` is
``→p``-first).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Sequence

from repro.errors import IntervalError
from repro.poset.poset import Poset
from repro.types import Cut, EventId
from repro.util.cuts import cut_leq, zero_cut

__all__ = ["Interval", "IntervalIndex", "compute_intervals", "interval_of_cut"]


@dataclass(frozen=True)
class Interval:
    """One enumeration interval ``I(e)`` with its bounds.

    ``lo`` is ``Gmin(e)`` except for the first event in ``→p``, whose ``lo``
    is the zero cut so the empty global state is enumerated exactly once.
    """

    event: EventId
    lo: Cut
    hi: Cut
    #: True only for the first event in the total order (owns the empty state).
    owns_empty: bool = False

    def contains(self, cut: Sequence[int]) -> bool:
        """Membership test ``G ∈ I(e)`` (componentwise bounds check)."""
        return cut_leq(self.lo, cut) and cut_leq(cut, self.hi)

    @cached_property
    def size_bound(self) -> int:
        """Product of per-thread slacks + 1 — an upper bound on the interval
        size.  Cached: the scheduler compares it inside sort keys and
        split/steal loops, so it must not be recomputed per comparison.
        """
        v = 1
        for a, b in zip(self.lo, self.hi):
            v *= b - a + 1
        return v

    @cached_property
    def log_size_bound(self) -> float:
        """``log2`` of :attr:`size_bound`, computed term-by-term.

        Overflow-safe for the huge raytracer/random posets whose box
        volumes exceed float range: summing per-thread ``log2`` terms never
        materializes the (arbitrary-precision, slow-to-compare) product.
        """
        return sum(math.log2(b - a + 1) for a, b in zip(self.lo, self.hi))

    def box_volume(self) -> int:
        """Deprecated spelling of :attr:`size_bound` (kept for callers)."""
        return self.size_bound


def compute_intervals(
    poset: Poset, order: Optional[Sequence[EventId]] = None
) -> List[Interval]:
    """Compute the full interval partition for a poset and total order.

    ``order`` defaults to the poset's recorded insertion order.  The walk
    maintains the per-thread counts of emitted events, so ``Gbnd(e)`` is
    read off in ``O(n)`` per event — ``O(n·|E|)`` total, matching the
    paper's per-worker ``O(n)`` cost (§3.4).

    Raises :class:`IntervalError` if the order is not a permutation of the
    events or produces inconsistent bounds (both would indicate the order is
    not a linear extension).
    """
    if order is None:
        if poset.insertion is None:
            raise IntervalError(
                "no total order given and the poset has no insertion order"
            )
        order = poset.insertion
    n = poset.num_threads
    if len(order) != poset.num_events:
        raise IntervalError(
            f"total order covers {len(order)} events, poset has {poset.num_events}"
        )
    counts = [0] * n
    intervals: List[Interval] = []
    for pos, (tid, idx) in enumerate(order):
        if idx != counts[tid] + 1:
            raise IntervalError(
                f"order is not a linear extension: event ({tid},{idx}) "
                f"appears after {counts[tid]} events of thread {tid}"
            )
        counts[tid] += 1
        hi = tuple(counts)
        gmin = poset.vc(tid, idx)
        if not cut_leq(gmin, hi):
            raise IntervalError(
                f"order is not a linear extension: Gmin({(tid, idx)})={gmin} "
                f"exceeds Gbnd={hi}"
            )
        if pos == 0:
            intervals.append(
                Interval(event=(tid, idx), lo=zero_cut(n), hi=hi, owns_empty=True)
            )
        else:
            intervals.append(Interval(event=(tid, idx), lo=gmin, hi=hi))
    return intervals


class IntervalIndex:
    """O(n)-per-query interval membership via Lemma 2.

    A consistent cut ``G`` belongs to the interval of its ``→p``-last
    event.  The frontier event of each thread ``t`` in ``G`` is
    ``(t, G[t])``, and within a chain the ``→p`` position grows with the
    index, so the ``→p``-last event of ``G`` is the frontier event with the
    greatest ``→p`` position — an ``O(n)`` argmax over a precomputed
    position table, replacing the old linear scan over all ``|E|``
    intervals.

    ``intervals`` must be the full partition in ``→p`` order (exactly what
    :func:`compute_intervals` returns).
    """

    def __init__(self, intervals: Sequence[Interval]):
        self._intervals = tuple(intervals)
        self._position: Dict[EventId, int] = {
            iv.event: i for i, iv in enumerate(self._intervals)
        }
        if len(self._position) != len(self._intervals):
            raise IntervalError("intervals contain duplicate events")
        self._empty_owner: Optional[Interval] = next(
            (iv for iv in self._intervals if iv.owns_empty), None
        )

    def of_cut(self, cut: Sequence[int]) -> Optional[Interval]:
        """The interval owning ``cut`` (Lemma 2), or ``None`` when the cut
        is outside every interval (e.g. an inconsistent cut)."""
        position = self._position
        best = -1
        for t, c in enumerate(cut):
            if c:
                pos = position.get((t, c), -1)
                if pos < 0:
                    return None  # frontier event unknown to this partition
                if pos > best:
                    best = pos
        owner = self._intervals[best] if best >= 0 else self._empty_owner
        if owner is None or not owner.contains(cut):
            return None
        return owner


def interval_of_cut(
    poset: Poset,
    intervals: Sequence[Interval],
    cut: Cut,
    validate: bool = False,
) -> Optional[Interval]:
    """The unique interval containing ``cut``, or ``None`` if no interval
    does (which for a consistent cut would contradict Lemma 2).

    Resolved in ``O(n)`` through the ``→p``-last frontier event of the cut
    (:class:`IntervalIndex`; Lemma 2).  Repeated queries against one
    partition should build an :class:`IntervalIndex` once instead of
    calling this helper, which rebuilds the position table per call.

    With ``validate=True`` the original exhaustive scan also runs: it
    cross-checks the fast answer, and raises :class:`IntervalError` if the
    cut lies in two intervals (a partition violation) or if the two
    resolutions disagree.
    """
    fast = IntervalIndex(intervals).of_cut(cut)
    if not validate:
        return fast
    found: Optional[Interval] = None
    for interval in intervals:
        if interval.contains(cut):
            if found is not None:
                raise IntervalError(
                    f"cut {cut} is in two intervals: {found.event} and "
                    f"{interval.event} — partition violated"
                )
            found = interval
    if found is not fast:
        raise IntervalError(
            f"cut {cut}: Lemma-2 resolution gives "
            f"{fast.event if fast else None}, exhaustive scan gives "
            f"{found.event if found else None}"
        )
    return found
