"""The offline ParaMount driver — the paper's Algorithm 1.

Given a poset, ParaMount:

1. fixes a total order ``→p`` (a topological sort, or the poset's recorded
   insertion order — Property 1 either way);
2. derives every event's interval ``I(e) = [Gmin(e), Gbnd(e)]``
   (:mod:`repro.core.intervals`);
3. hands the intervals to an executor, each enumerated independently by the
   bounded sequential subroutine (Algorithm 2);
4. aggregates counts and cost meters into a
   :class:`~repro.core.metrics.ParaMountResult`.

Because the intervals partition the lattice (Theorem 2), the union of the
workers' outputs is exactly the set of consistent global states, each
visited exactly once — regardless of executor, worker count, or subroutine.

The same disjointness makes every interval task *idempotent*, which is
what the resilience plumbing rides on: a
:class:`~repro.resilience.ResilientExecutor` may retry or degrade tasks
(its failure/degradation log is drained into the result), a checkpoint
journal (:class:`~repro.resilience.CheckpointJournal`) lets a killed run
resume enumerating only its unfinished intervals, and a BFS interval that
exceeds its memory budget can fall back to the bounded lexical subroutine
(``degrade_on_oom``) instead of aborting the run.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.bounded import bounded_enumeration, make_bounded_subroutine
from repro.core.executors import Executor, SerialExecutor, ThreadExecutor
from repro.core.intervals import Interval, compute_intervals
from repro.core.metrics import DegradationEvent, IntervalStats, ParaMountResult
from repro.core.scheduling import SchedulePlan, SchedulePolicy, plan_schedule
from repro.errors import OutOfMemoryError
from repro.obs.observer import Observer, ensure_observer
from repro.poset.poset import Poset
from repro.poset.topological import topological_order
from repro.types import CutVisitor, EventId
from repro.util.log import get_logger
from repro.util.timing import Stopwatch

__all__ = ["ParaMount"]

logger = get_logger(__name__)

OrderSpec = Union[None, Sequence[EventId], Callable[[Poset], Sequence[EventId]]]
ScheduleSpec = Union[None, str, SchedulePolicy]

#: Subroutines that keep O(n) live state — the degradation targets.
_LEXICAL_SUBROUTINES = ("lexical", "lexical-fast", "lexical-packed", "level-space")


class ParaMount:
    """Parallel enumeration of all consistent global states of a poset.

    Parameters
    ----------
    poset:
        The input poset of events.
    subroutine:
        Sequential algorithm run inside each interval: ``"lexical"``
        (L-Para, the default), ``"bfs"`` (B-Para) or ``"dfs"``.
    order:
        The total order ``→p``: ``None`` (use the poset's insertion order,
        falling back to a topological sort), an explicit event-id sequence,
        or a callable ``poset -> order``.
    executor:
        Backend executing interval tasks (default
        :class:`~repro.core.executors.SerialExecutor`).  An executor
        exposing ``drain_log()`` (e.g.
        :class:`~repro.resilience.ResilientExecutor`) may return ``None``
        for permanently failed tasks; the run then completes with the
        failures recorded in the result instead of raising.
    memory_budget:
        Per-task cap on live intermediate states (models a bounded heap for
        the BFS subroutine).
    sanitizer:
        Optional enumeration sanitizer (an object with
        ``observe_interval(interval)`` and ``observe_state(interval, cut)``,
        e.g. :class:`repro.staticcheck.sanitize.EnumerationSanitizer`).
        When set, every interval's bounds and every enumerated state are
        checked — in particular Theorem 2's disjointness (no state visited
        twice across intervals).
    checkpoint:
        Optional interval checkpoint journal — a
        :class:`~repro.resilience.CheckpointJournal` or a path.  Completed
        intervals are appended as they finish; on a later run with the
        same journal, only unfinished intervals are re-enumerated (their
        states are *not* re-visited, so a user visitor sees only the fresh
        intervals' states on a resumed run).
    degrade_on_oom:
        When true, an interval whose BFS/DFS enumeration exceeds
        ``memory_budget`` is re-enumerated with the bounded lexical
        subroutine (O(n) live state) instead of raising
        :class:`~repro.errors.OutOfMemoryError`; each fallback is recorded
        as a ``"subroutine"`` degradation in the result.
    schedule:
        Task-shaping policy (:mod:`repro.core.scheduling`): ``None`` (the
        adaptive default — recursive splitting of oversized intervals plus
        largest-first dispatch), a preset name (``"fifo"``, ``"largest"``,
        ``"split"``, ``"split-steal"``), or an explicit
        :class:`~repro.core.scheduling.SchedulePolicy`.  Scheduling only
        reshapes the task list when the executor has more than one worker;
        serial runs behave exactly like ``"fifo"``.  ``"fifo"`` is the
        pre-scheduling behavior, kept as an escape hatch for near-uniform
        partitions and for resuming journals written before splitting
        existed.
    observer:
        Optional :class:`~repro.obs.Observer` receiving spans (interval
        partitioning, schedule planning, every enumeration task, checkpoint
        flushes, degradations) and metrics (``states_enumerated_total``,
        ``intervals_split_total``, ``steals_total``,
        ``retry_attempts_total``, ``enumeration_seconds``).  The default is
        the shared no-op observer, which leaves results byte-identical to
        an unobserved run.  The observer's injected clock also times every
        interval task, so ``IntervalStats.seconds`` is measured on the
        same timeline as the recorded spans.
    deadline:
        Global wall-clock budget in seconds.  Once it expires, no further
        interval task starts (in-flight ones finish and are kept); the
        run returns a partial result with ``deadline_expired=True``
        instead of running past the budget.  By Theorem 2 the partial
        result undercounts by exactly the skipped intervals' states, and
        a checkpoint journal lets a later run finish only those.
    """

    def __init__(
        self,
        poset: Poset,
        subroutine: str = "lexical",
        order: OrderSpec = None,
        executor: Optional[Executor] = None,
        memory_budget: Optional[int] = None,
        sanitizer=None,
        checkpoint=None,
        degrade_on_oom: bool = False,
        schedule: ScheduleSpec = None,
        observer: Optional[Observer] = None,
        deadline: Optional[float] = None,
    ):
        self.poset = poset
        self.subroutine_name = subroutine
        self.executor = executor if executor is not None else SerialExecutor()
        self.memory_budget = memory_budget
        self.sanitizer = sanitizer
        self.degrade_on_oom = degrade_on_oom
        self.schedule = SchedulePolicy.parse(schedule)
        self.observer = ensure_observer(observer)
        #: Global wall-clock budget in seconds (``None`` = unbounded).
        #: When it expires mid-run, dispatch stops, in-flight intervals
        #: drain, and the result comes back partial with
        #: ``deadline_expired=True`` (so ``complete`` is False).
        self.deadline = deadline
        if isinstance(checkpoint, (str, Path)):
            from repro.resilience.checkpoint import CheckpointJournal

            checkpoint = CheckpointJournal(checkpoint)
        self.checkpoint = checkpoint
        if callable(order):
            self._order: Sequence[EventId] = order(poset)
        elif order is not None:
            self._order = order
        elif poset.insertion is not None:
            self._order = poset.insertion
        else:
            self._order = topological_order(poset)
        with self.observer.span(
            "compute_intervals", "plan", events=poset.num_events
        ):
            self.intervals: List[Interval] = compute_intervals(
                poset, self._order
            )

    @property
    def order(self) -> Sequence[EventId]:
        """The total order ``→p`` in use."""
        return self._order

    def run(self, visit: Optional[CutVisitor] = None) -> ParaMountResult:
        """Enumerate every consistent global state exactly once.

        ``visit`` is called once per state; with a concurrent executor the
        calls may arrive from multiple threads, so the visitor is wrapped in
        a mutex for thread backends (states of one interval still arrive in
        the subroutine's order; interleaving across intervals is arbitrary,
        exactly as in the paper's parallel enumeration).
        """
        subroutine = make_bounded_subroutine(
            self.subroutine_name, self.poset, memory_budget=self.memory_budget
        )
        wrapped = self._wrap_visitor(visit)
        sanitizer = self.sanitizer
        if sanitizer is not None:
            for interval in self.intervals:
                sanitizer.observe_interval(interval)

        obs = self.observer
        with obs.span(
            "plan_schedule",
            "plan",
            intervals=len(self.intervals),
            workers=self.executor.num_workers,
        ):
            plan = plan_schedule(
                self.poset,
                self.intervals,
                self.schedule,
                self.executor.num_workers,
            )
        with obs.span("load_checkpoint", "checkpoint"):
            completed = self._load_checkpoint(plan)
        pending = [
            iv
            for iv in plan.tasks
            if (iv.event, iv.lo, iv.hi) not in completed
        ]
        journal = self.checkpoint
        degradations: List[DegradationEvent] = []
        log_lock = threading.Lock()
        deadline_at = (
            time.monotonic() + self.deadline
            if self.deadline is not None
            else None
        )
        deadline_skips: List[EventId] = []
        # Distributed (and other descriptor-shipping) executors get the run
        # context the closures close over, so they can re-run tasks from
        # (event, lo, hi) descriptors on remote hosts.
        bind = getattr(self.executor, "bind_run", None)
        if callable(bind):
            bind(
                self.poset,
                self.subroutine_name,
                memory_budget=self.memory_budget,
                journal=journal,
                deadline_at=deadline_at,
            )
        # The observer's clock times every task on every executor path, so
        # IntervalStats.seconds and the recorded spans share one timeline.
        # The null observer passes None: bounded_enumeration then reads
        # time.perf_counter at call time, keeping unobserved runs (and the
        # byte-identical no-op guarantee) on the uninstrumented path.
        task_clock = obs.clock if obs.enabled else None
        if obs.enabled:
            if getattr(self.executor, "observer", None) is None:
                self.executor.observer = obs
            if journal is not None and getattr(journal, "observer", None) is None:
                journal.observer = obs
            if plan.split_intervals:
                obs.counter("intervals_split_total").inc(plan.split_intervals)
            # The packed subroutine reports when its bitmask fast path was
            # unavailable (poset too large) and it fell back to the array
            # kernel — exported so perf dashboards can spot the slow path.
            if getattr(subroutine, "fallback_reason", None):
                obs.counter("packed_kernel_fallbacks_total").inc()
        if obs.progress is not None:
            obs.progress.set_total(len(plan.tasks))
            for _ in completed:
                obs.progress.on_task_done(0, 0.0)

        def make_task(interval: Interval) -> Callable[[], IntervalStats]:
            if sanitizer is None:
                task_visit = wrapped
            else:
                # observe every enumerated state even with no user visitor,
                # so the partition check covers the whole lattice.
                def task_visit(cut, _iv=interval):
                    sanitizer.observe_state(_iv, cut)
                    if wrapped is not None:
                        wrapped(cut)

            def task() -> Optional[IntervalStats]:
                if (
                    deadline_at is not None
                    and time.monotonic() >= deadline_at
                ):
                    # past the wall-clock budget: skip instead of starting
                    with log_lock:
                        deadline_skips.append(interval.event)
                    return None
                t_start = task_clock() if task_clock is not None else 0.0
                try:
                    stats = bounded_enumeration(
                        subroutine, interval, task_visit, clock=task_clock
                    )
                except OutOfMemoryError as exc:
                    if (
                        not self.degrade_on_oom
                        or self.subroutine_name in _LEXICAL_SUBROUTINES
                    ):
                        raise
                    # Bounded lexical keeps O(n) live state: always fits.
                    fallback = make_bounded_subroutine(
                        "lexical", self.poset, memory_budget=self.memory_budget
                    )
                    stats = bounded_enumeration(
                        fallback, interval, task_visit, clock=task_clock
                    )
                    with log_lock:
                        degradations.append(
                            DegradationEvent(
                                kind="subroutine",
                                from_name=self.subroutine_name,
                                to_name="lexical",
                                reason=f"interval {interval.event}: {exc}",
                            )
                        )
                    logger.warning(
                        "interval %s degraded %s -> lexical: %s",
                        interval.event,
                        self.subroutine_name,
                        exc,
                        extra={
                            "degrade_kind": "subroutine",
                            "degrade_from": self.subroutine_name,
                            "degrade_to": "lexical",
                            "interval_event": str(interval.event),
                        },
                    )
                    if obs.enabled:
                        obs.instant(
                            "degrade_subroutine",
                            "enumerate",
                            event=str(interval.event),
                            to="lexical",
                        )
                if journal is not None:
                    journal.record(stats)
                if obs.enabled:
                    obs.record(
                        f"I({interval.event})",
                        "enumerate",
                        t_start,
                        obs.clock() - t_start,
                        attrs={
                            "event": str(interval.event),
                            "states": stats.states,
                            "work": stats.work,
                        },
                    )
                obs.task_done(stats)
                return stats

            # Work-stealing executors deal and steal by this weight.
            task.weight = interval.size_bound
            # Descriptor-shipping executors read the interval back off the
            # closure instead of sending the closure itself over the wire.
            task.interval = interval
            return task

        result = ParaMountResult()
        # O(n·|E|) to build →p and all interval bounds (§3.4).
        result.order_work = self.poset.num_events * self.poset.num_threads
        with Stopwatch() as sw:
            with obs.span("map_tasks", "schedule", tasks=len(pending)):
                raw = self.executor.map_tasks(
                    [make_task(iv) for iv in pending]
                )
        by_task: Dict[tuple, IntervalStats] = dict(completed)
        for interval, stats in zip(pending, raw):
            if stats is not None:
                by_task[(interval.event, interval.lo, interval.hi)] = stats
        # Per-task stats in dispatch order; then fold the (possibly split)
        # tasks back into one record per interval, in →p order.
        by_event: Dict[EventId, IntervalStats] = {}
        for task_iv in plan.tasks:
            stats = by_task.get((task_iv.event, task_iv.lo, task_iv.hi))
            if stats is None:
                continue
            result.tasks.append(stats)
            prior = by_event.get(task_iv.event)
            by_event[task_iv.event] = (
                stats if prior is None else prior.merged(stats)
            )
        for interval in self.intervals:  # aggregate in →p order
            stats = by_event.get(interval.event)
            if stats is not None:
                # Report the parent's bounds even if some sub-task failed.
                result.add_interval(
                    replace(stats, lo=interval.lo, hi=interval.hi)
                )
        result.wall_time = sw.elapsed
        result.resumed_intervals = len(completed)
        result.degradations.extend(degradations)
        result.schedule = plan.policy.name
        result.workers = self.executor.num_workers
        result.split_intervals = plan.split_intervals
        if deadline_skips:
            result.deadline_expired = True
            logger.warning(
                "deadline expired with %d task(s) unstarted",
                len(deadline_skips),
            )
        self._drain_schedule_observability(result)
        self._drain_executor_log(result, pending)
        return result

    # ------------------------------------------------------------------ #

    def _load_checkpoint(self, plan: SchedulePlan) -> Dict[tuple, IntervalStats]:
        if self.checkpoint is None:
            return {}
        from repro.resilience.checkpoint import poset_digest

        return self.checkpoint.load(
            poset_digest(self.poset),
            self.subroutine_name,
            plan.tasks,
            schedule=plan.descriptor,
        )

    def _drain_schedule_observability(self, result: ParaMountResult) -> None:
        """Pull steal/busy/robustness counters off the executor (or ladder)."""
        candidates = [self.executor]
        candidates.extend(getattr(self.executor, "ladder", None) or ())
        inner = getattr(self.executor, "inner", None)
        if inner is not None:
            candidates.append(inner)
        for executor in candidates:
            steals = getattr(executor, "last_steals", None)
            busy = getattr(executor, "last_worker_busy", None)
            if steals is not None:
                result.steals += steals
            if busy:
                result.worker_load = list(busy)
            # distributed backend provenance
            result.redispatches += getattr(executor, "last_redispatches", 0)
            result.leases_expired += getattr(
                executor, "last_leases_expired", 0
            )
            hosts = getattr(executor, "last_hosts", None)
            if hosts:
                result.hosts = list(hosts)
            if getattr(executor, "last_deadline_expired", False):
                result.deadline_expired = True

    def _drain_executor_log(
        self, result: ParaMountResult, pending: Sequence[Interval]
    ) -> None:
        """Fold a resilient executor's provenance into the result."""
        drain = getattr(self.executor, "drain_log", None)
        if not callable(drain):
            return
        failures, degradations, retries = drain()
        result.retries += retries
        result.degradations.extend(degradations)
        for failure in failures:
            event = None
            if 0 <= failure.task_index < len(pending):
                event = pending[failure.task_index].event
            result.failures.append(replace(failure, event=event))

    def _wrap_visitor(self, visit: Optional[CutVisitor]) -> Optional[CutVisitor]:
        if visit is None or isinstance(self.executor, SerialExecutor):
            return visit
        if not self._executor_is_concurrent():
            return visit
        lock = threading.Lock()

        def locked_visit(cut):  # pragma: no cover - exercised in thread tests
            with lock:
                visit(cut)

        return locked_visit

    def _executor_is_concurrent(self) -> bool:
        """True when tasks may run on multiple in-process threads."""
        if isinstance(self.executor, ThreadExecutor):
            return True
        ladder = getattr(self.executor, "ladder", None)
        if ladder is not None:
            return any(isinstance(e, ThreadExecutor) for e in ladder)
        inner = getattr(self.executor, "inner", None)
        if inner is not None:
            return isinstance(inner, ThreadExecutor)
        return False
