"""The offline ParaMount driver — the paper's Algorithm 1.

Given a poset, ParaMount:

1. fixes a total order ``→p`` (a topological sort, or the poset's recorded
   insertion order — Property 1 either way);
2. derives every event's interval ``I(e) = [Gmin(e), Gbnd(e)]``
   (:mod:`repro.core.intervals`);
3. hands the intervals to an executor, each enumerated independently by the
   bounded sequential subroutine (Algorithm 2);
4. aggregates counts and cost meters into a
   :class:`~repro.core.metrics.ParaMountResult`.

Because the intervals partition the lattice (Theorem 2), the union of the
workers' outputs is exactly the set of consistent global states, each
visited exactly once — regardless of executor, worker count, or subroutine.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence, Union

from repro.core.bounded import bounded_enumeration, make_bounded_subroutine
from repro.core.executors import Executor, SerialExecutor, ThreadExecutor
from repro.core.intervals import Interval, compute_intervals
from repro.core.metrics import IntervalStats, ParaMountResult
from repro.poset.poset import Poset
from repro.poset.topological import topological_order
from repro.types import CutVisitor, EventId
from repro.util.timing import Stopwatch

__all__ = ["ParaMount"]

OrderSpec = Union[None, Sequence[EventId], Callable[[Poset], Sequence[EventId]]]


class ParaMount:
    """Parallel enumeration of all consistent global states of a poset.

    Parameters
    ----------
    poset:
        The input poset of events.
    subroutine:
        Sequential algorithm run inside each interval: ``"lexical"``
        (L-Para, the default), ``"bfs"`` (B-Para) or ``"dfs"``.
    order:
        The total order ``→p``: ``None`` (use the poset's insertion order,
        falling back to a topological sort), an explicit event-id sequence,
        or a callable ``poset -> order``.
    executor:
        Backend executing interval tasks (default
        :class:`~repro.core.executors.SerialExecutor`).
    memory_budget:
        Per-task cap on live intermediate states (models a bounded heap for
        the BFS subroutine).
    sanitizer:
        Optional enumeration sanitizer (an object with
        ``observe_interval(interval)`` and ``observe_state(interval, cut)``,
        e.g. :class:`repro.staticcheck.sanitize.EnumerationSanitizer`).
        When set, every interval's bounds and every enumerated state are
        checked — in particular Theorem 2's disjointness (no state visited
        twice across intervals).
    """

    def __init__(
        self,
        poset: Poset,
        subroutine: str = "lexical",
        order: OrderSpec = None,
        executor: Optional[Executor] = None,
        memory_budget: Optional[int] = None,
        sanitizer=None,
    ):
        self.poset = poset
        self.subroutine_name = subroutine
        self.executor = executor if executor is not None else SerialExecutor()
        self.memory_budget = memory_budget
        self.sanitizer = sanitizer
        if callable(order):
            self._order: Sequence[EventId] = order(poset)
        elif order is not None:
            self._order = order
        elif poset.insertion is not None:
            self._order = poset.insertion
        else:
            self._order = topological_order(poset)
        self.intervals: List[Interval] = compute_intervals(poset, self._order)

    @property
    def order(self) -> Sequence[EventId]:
        """The total order ``→p`` in use."""
        return self._order

    def run(self, visit: Optional[CutVisitor] = None) -> ParaMountResult:
        """Enumerate every consistent global state exactly once.

        ``visit`` is called once per state; with a concurrent executor the
        calls may arrive from multiple threads, so the visitor is wrapped in
        a mutex for thread backends (states of one interval still arrive in
        the subroutine's order; interleaving across intervals is arbitrary,
        exactly as in the paper's parallel enumeration).
        """
        subroutine = make_bounded_subroutine(
            self.subroutine_name, self.poset, memory_budget=self.memory_budget
        )
        wrapped = self._wrap_visitor(visit)
        sanitizer = self.sanitizer
        if sanitizer is not None:
            for interval in self.intervals:
                sanitizer.observe_interval(interval)

        def make_task(interval: Interval) -> Callable[[], IntervalStats]:
            if sanitizer is None:
                task_visit = wrapped
            else:
                # observe every enumerated state even with no user visitor,
                # so the partition check covers the whole lattice.
                def task_visit(cut, _iv=interval):
                    sanitizer.observe_state(_iv, cut)
                    if wrapped is not None:
                        wrapped(cut)

            def task() -> IntervalStats:
                return bounded_enumeration(subroutine, interval, task_visit)

            return task

        result = ParaMountResult()
        # O(n·|E|) to build →p and all interval bounds (§3.4).
        result.order_work = self.poset.num_events * self.poset.num_threads
        with Stopwatch() as sw:
            stats = self.executor.map_tasks([make_task(iv) for iv in self.intervals])
        for s in stats:
            result.add_interval(s)
        result.wall_time = sw.elapsed
        return result

    def _wrap_visitor(self, visit: Optional[CutVisitor]) -> Optional[CutVisitor]:
        if visit is None or not isinstance(self.executor, ThreadExecutor):
            return visit
        lock = threading.Lock()

        def locked_visit(cut):  # pragma: no cover - exercised in thread tests
            with lock:
                visit(cut)

        return locked_visit
