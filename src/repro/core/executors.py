"""Execution backends for ParaMount workers.

The paper runs one Java thread per worker pulling events off the total
order (Algorithm 1).  We provide:

* :class:`SerialExecutor` — run interval tasks in ``→p`` order on the
  calling thread (the baseline, and the engine underneath the simulated
  parallel machine);
* :class:`ThreadExecutor` — a real shared-memory thread pool.  Functionally
  identical to the paper's setup; on CPython the GIL serializes the compute
  so it demonstrates correctness under concurrency, not speedup (the
  speedup experiments use :mod:`repro.core.simulated` — DESIGN.md §3);
* :class:`ProcessExecutor` — a process pool for true parallelism when the
  per-task payload is picklable (no shared visitor callbacks).

All executors preserve task order in the returned list, so per-interval
statistics line up with the ``→p`` order regardless of backend.
"""

from __future__ import annotations

import concurrent.futures
import os
from abc import ABC, abstractmethod
from typing import Callable, List, Sequence, TypeVar

__all__ = ["Executor", "SerialExecutor", "ThreadExecutor", "ProcessExecutor"]

T = TypeVar("T")


class Executor(ABC):
    """Maps a list of zero-argument tasks to their results, order-preserving."""

    #: Short backend name used in experiment tables.
    name: str = "abstract"

    def __init__(self, num_workers: int = 1):
        if num_workers < 1:
            raise ValueError(f"num_workers must be ≥ 1, got {num_workers}")
        #: Worker count (the paper's "number of threads").
        self.num_workers = num_workers

    @abstractmethod
    def map_tasks(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        """Run all tasks; return results in task order."""


class SerialExecutor(Executor):
    """Run tasks one after another on the calling thread."""

    name = "serial"

    def __init__(self) -> None:
        super().__init__(num_workers=1)

    def map_tasks(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        return [task() for task in tasks]


class ThreadExecutor(Executor):
    """A real thread pool (``concurrent.futures.ThreadPoolExecutor``).

    Visitors invoked from tasks run concurrently: callers must pass
    thread-safe visitors (the detector's predicate evaluators take a lock
    or use thread-local accumulation).
    """

    name = "threads"

    def map_tasks(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        if not tasks:
            return []
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.num_workers
        ) as pool:
            futures = [pool.submit(task) for task in tasks]
            return [f.result() for f in futures]


class ProcessExecutor(Executor):
    """A process pool for GIL-free parallelism.

    Tasks must be picklable top-level callables; enumeration visitors
    cannot cross the process boundary, so this backend suits counting and
    self-contained predicate evaluation (the task returns its findings).
    Worker count defaults to the machine's CPU count.
    """

    name = "processes"

    def __init__(self, num_workers: int = 0):
        super().__init__(num_workers=num_workers or os.cpu_count() or 1)

    def map_tasks(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        if not tasks:
            return []
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self.num_workers
        ) as pool:
            futures = [pool.submit(task) for task in tasks]
            return [f.result() for f in futures]
