"""Execution backends for ParaMount workers.

The paper runs one Java thread per worker pulling events off the total
order (Algorithm 1).  We provide:

* :class:`SerialExecutor` — run interval tasks in ``→p`` order on the
  calling thread (the baseline, and the engine underneath the simulated
  parallel machine);
* :class:`ThreadExecutor` — a real shared-memory thread pool.  Functionally
  identical to the paper's setup; on CPython the GIL serializes the compute
  so it demonstrates correctness under concurrency, not speedup (the
  speedup experiments use :mod:`repro.core.simulated` — DESIGN.md §3);
* :class:`ProcessExecutor` — a process pool for true parallelism when the
  per-task payload is picklable (no shared visitor callbacks).

All executors preserve task order in the returned list, so per-interval
statistics line up with the ``→p`` order regardless of backend.

Failure model (see DESIGN.md §"Fault model and recovery"): exceptions
raised *by* a task propagate unchanged; infrastructure failures — a hung
gather, a dead worker process, an unpicklable payload — surface as typed
:class:`~repro.errors.ExecutorError` subclasses so callers can retry or
degrade.  :class:`RetryPolicy` is the shared bounded-retry/backoff
schedule used by :class:`repro.resilience.ResilientExecutor` and
:func:`repro.core.mp.paramount_count_multiprocessing`.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import threading
import time
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Sequence, TypeVar

from repro.errors import (
    BrokenPoolError,
    ExecutorTimeoutError,
    TaskNotPicklableError,
)
from repro.util.log import get_logger
from repro.util.rng import DeterministicRng, derive_seed

logger = get_logger(__name__)

__all__ = [
    "Executor",
    "RetryPolicy",
    "SerialExecutor",
    "ThreadExecutor",
    "WorkStealingThreadExecutor",
    "ProcessExecutor",
]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``max_attempts`` counts *total* tries of one task (1 = no retry).  The
    delay before retry ``k`` (1-based) is
    ``min(base_delay · backoff^(k-1), max_delay)``, stretched by up to
    ``jitter`` (a fraction) drawn from :mod:`repro.util.rng` so that
    concurrent retriers seeded identically still produce reproducible —
    yet decorrelated — schedules.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    backoff: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be ≥ 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be ≥ 0")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be ≥ 1, got {self.backoff}")

    def delay(self, attempt: int) -> float:
        """Backoff delay in seconds before retry number ``attempt`` (≥ 1)."""
        d = min(self.base_delay * self.backoff ** max(attempt - 1, 0), self.max_delay)
        if self.jitter and d > 0:
            rng = DeterministicRng(derive_seed(self.seed, "retry", attempt))
            d *= 1.0 + self.jitter * rng.random()
        return d


class Executor(ABC):
    """Maps a list of zero-argument tasks to their results, order-preserving."""

    #: Short backend name used in experiment tables.
    name: str = "abstract"

    #: Optional :class:`repro.obs.Observer` — the ParaMount driver wires
    #: its own in before mapping when observability is enabled; stealing
    #: executors emit steal markers and counters through it.
    observer = None

    def __init__(self, num_workers: int = 1):
        if num_workers < 1:
            raise ValueError(f"num_workers must be ≥ 1, got {num_workers}")
        #: Worker count (the paper's "number of threads").
        self.num_workers = num_workers

    @abstractmethod
    def map_tasks(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        """Run all tasks; return results in task order."""

    def _record_queue_depth(self, remaining: int) -> None:
        """Feed the live ``queue_depth`` gauge and the trace counter track.

        The gauge is updated on every completion (a set is cheap); counter
        samples go to the trace at most every ~250ms so a million-task run
        does not bloat the span buffers.  No-op without an enabled
        observer — the unobserved path pays one attribute check.
        """
        obs = self.observer
        if obs is None or not getattr(obs, "enabled", False):
            return
        obs.gauge("queue_depth").set(remaining)
        now = obs.clock()
        last = getattr(self, "_depth_sampled_at", None)
        if last is None or now - last >= 0.25 or remaining == 0:
            self._depth_sampled_at = now
            obs.counter_sample("queue_depth", remaining)


class SerialExecutor(Executor):
    """Run tasks one after another on the calling thread."""

    name = "serial"

    def __init__(self) -> None:
        super().__init__(num_workers=1)

    def map_tasks(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        results: List[T] = []
        n = len(tasks)
        for index, task in enumerate(tasks):
            results.append(task())
            self._record_queue_depth(n - index - 1)
        return results


class ThreadExecutor(Executor):
    """A real thread pool (``concurrent.futures.ThreadPoolExecutor``).

    Visitors invoked from tasks run concurrently: callers must pass
    thread-safe visitors (the detector's predicate evaluators take a lock
    or use thread-local accumulation).

    ``task_timeout`` bounds the wait for each task's *result* during the
    gather; exceeding it cancels the remaining futures and raises
    :class:`~repro.errors.ExecutorTimeoutError` carrying the offending
    task index.  A thread already running its task cannot be interrupted —
    its result is simply discarded, which is safe because interval tasks
    are idempotent.
    """

    name = "threads"

    def __init__(self, num_workers: int = 1, task_timeout: Optional[float] = None):
        super().__init__(num_workers=num_workers)
        #: Per-task gather timeout in seconds (``None`` = wait forever).
        self.task_timeout = task_timeout

    def map_tasks(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        if not tasks:
            return []
        pool = concurrent.futures.ThreadPoolExecutor(max_workers=self.num_workers)
        futures = [pool.submit(task) for task in tasks]
        results: List[T] = []
        try:
            for index, future in enumerate(futures):
                try:
                    results.append(future.result(timeout=self.task_timeout))
                    self._record_queue_depth(len(tasks) - index - 1)
                except concurrent.futures.TimeoutError:
                    for pending in futures:
                        pending.cancel()
                    pool.shutdown(wait=False, cancel_futures=True)
                    logger.warning(
                        "task %d exceeded its %.3fs gather timeout",
                        index,
                        self.task_timeout or 0.0,
                        extra={
                            "executor": self.name,
                            "task_index": index,
                            "timeout_seconds": self.task_timeout or 0.0,
                        },
                    )
                    raise ExecutorTimeoutError(
                        index, self.task_timeout or 0.0, executor=self.name
                    ) from None
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return results


class WorkStealingThreadExecutor(ThreadExecutor):
    """A thread pool with per-worker deques and largest-first stealing.

    Each worker owns a deque of tasks dealt LPT-style by task ``weight``
    (read from the task's ``weight`` attribute, defaulting to 1 — the
    ParaMount driver sets it to the interval's size bound).  Deques hold
    tasks in descending weight, so a worker always runs its largest
    remaining task next; a worker whose deque drains steals the largest
    pending task across all other deques.  Combined with interval
    splitting this bounds the schedule's makespan the way LPT list
    scheduling does, without trusting the initial deal.

    Per-run observability: :attr:`last_steals` counts tasks executed by a
    worker other than the one they were dealt to, and
    :attr:`last_worker_busy` holds each worker's measured busy seconds —
    the driver surfaces both through ``ParaMountResult``.

    ``task_timeout`` here bounds the *no-progress* window: if no task
    completes for that long, the gather gives up and raises
    :class:`~repro.errors.ExecutorTimeoutError` carrying the lowest
    unfinished task index (running threads cannot be interrupted; their
    results are discarded, which is safe because tasks are idempotent).
    """

    name = "threads-steal"

    def __init__(self, num_workers: int = 1, task_timeout: Optional[float] = None):
        super().__init__(num_workers=num_workers, task_timeout=task_timeout)
        #: Steals performed during the most recent :meth:`map_tasks`.
        self.last_steals = 0
        #: Per-worker busy seconds during the most recent :meth:`map_tasks`.
        self.last_worker_busy: List[float] = []

    def map_tasks(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        self.last_steals = 0
        self.last_worker_busy = []
        if not tasks:
            return []
        obs = self.observer
        observe = obs is not None and getattr(obs, "enabled", False)
        n = len(tasks)
        weights = [getattr(task, "weight", 1) for task in tasks]
        k = min(self.num_workers, n)
        # LPT deal: heaviest task to the least-loaded deque.  Tasks arrive
        # at each deque in descending weight, so its front is its largest.
        deques: List[Deque[int]] = [deque() for _ in range(k)]
        loads = [0] * k
        for i in sorted(range(n), key=lambda i: (-weights[i], i)):
            w = loads.index(min(loads))
            deques[w].append(i)
            loads[w] += weights[i]
        lock = threading.Lock()
        progress = threading.Condition(lock)
        results: List[Optional[T]] = [None] * n
        finished = [False] * n
        completed = [0]
        steals = [0]
        busy = [0.0] * k
        errors: List[BaseException] = []
        stop = [False]

        def next_index(worker: int) -> Optional[int]:
            with lock:
                if stop[0] or errors:
                    return None
                if deques[worker]:
                    return deques[worker].popleft()
                victim = None
                for q in deques:
                    if q and (victim is None or weights[q[0]] > weights[victim[0]]):
                        victim = q
                if victim is None:
                    return None
                steals[0] += 1
                index = victim.popleft()
                if observe:
                    obs.instant(
                        "steal", "schedule", task=index, weight=weights[index]
                    )
                    obs.counter("steals_total").inc()
                    obs.gauge("tasks_queued").set(
                        sum(len(q) for q in deques)
                    )
                return index

        def worker_loop(worker: int) -> None:
            if observe:
                # Every worker opens its trace lane even if it never wins a
                # task (on a GIL-bound host one thread may drain the deal).
                obs.instant("worker_start", "schedule", dealt=len(deques[worker]))
            while True:
                index = next_index(worker)
                if index is None:
                    return
                t0 = time.perf_counter()
                try:
                    value = tasks[index]()
                except BaseException as exc:  # propagated by the gather
                    with progress:
                        errors.append(exc)
                        progress.notify_all()
                    return
                busy[worker] += time.perf_counter() - t0
                with progress:
                    results[index] = value
                    finished[index] = True
                    completed[0] += 1
                    remaining = n - completed[0]
                    progress.notify_all()
                self._record_queue_depth(remaining)

        threads = [
            threading.Thread(
                target=worker_loop, args=(w,), daemon=True, name=f"steal-{w}"
            )
            for w in range(k)
        ]
        for thread in threads:
            thread.start()
        timed_out: Optional[int] = None
        with progress:
            while completed[0] < n and not errors:
                before = completed[0]
                progress.wait(timeout=self.task_timeout)
                if (
                    self.task_timeout is not None
                    and completed[0] == before
                    and not errors
                    and completed[0] < n
                ):
                    stop[0] = True
                    timed_out = next(i for i in range(n) if not finished[i])
                    break
        if timed_out is not None:
            # Running threads are abandoned (daemon), like ThreadExecutor.
            logger.warning(
                "no task completed within %.3fs; abandoning run at task %d",
                self.task_timeout or 0.0,
                timed_out,
                extra={
                    "executor": self.name,
                    "task_index": timed_out,
                    "timeout_seconds": self.task_timeout or 0.0,
                },
            )
            raise ExecutorTimeoutError(
                timed_out, self.task_timeout or 0.0, executor=self.name
            )
        for thread in threads:
            thread.join()
        self.last_steals = steals[0]
        self.last_worker_busy = list(busy)
        if errors:
            raise errors[0]
        return [results[i] for i in range(n)]  # type: ignore[misc]


class ProcessExecutor(Executor):
    """A process pool for GIL-free parallelism.

    Tasks must be picklable top-level callables; enumeration visitors
    cannot cross the process boundary, so this backend suits counting and
    self-contained predicate evaluation (the task returns its findings).
    Worker count defaults to the machine's CPU count.

    Infrastructure failures are translated into typed errors:
    a dead worker (crash, OOM kill, failed initializer) raises
    :class:`~repro.errors.BrokenPoolError`; an unpicklable task raises
    :class:`~repro.errors.TaskNotPicklableError`; a gather timeout raises
    :class:`~repro.errors.ExecutorTimeoutError`.  Exceptions raised *by*
    tasks propagate unchanged.
    """

    name = "processes"

    def __init__(self, num_workers: int = 0, task_timeout: Optional[float] = None):
        super().__init__(num_workers=num_workers or os.cpu_count() or 1)
        #: Per-task gather timeout in seconds (``None`` = wait forever).
        self.task_timeout = task_timeout

    def map_tasks(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        if not tasks:
            return []
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.num_workers)
        results: List[T] = []
        abandoned = False
        try:
            futures = [pool.submit(task) for task in tasks]
            for index, future in enumerate(futures):
                try:
                    results.append(future.result(timeout=self.task_timeout))
                except concurrent.futures.TimeoutError:
                    abandoned = True
                    raise ExecutorTimeoutError(
                        index, self.task_timeout or 0.0, executor=self.name
                    ) from None
                except (pickle.PicklingError, AttributeError, TypeError) as exc:
                    # CPython reports unpicklable payloads inconsistently:
                    # PicklingError, or AttributeError/TypeError with a
                    # "Can't pickle ..." message from the queue feeder.
                    if (
                        isinstance(exc, pickle.PicklingError)
                        or "pickle" in str(exc).lower()
                    ):
                        raise TaskNotPicklableError(index, exc) from exc
                    raise
                except BrokenProcessPool as exc:
                    abandoned = True
                    raise BrokenPoolError(
                        f"the process pool broke while awaiting task {index} "
                        f"(a worker died: crashed, OOM-killed, or failed in "
                        f"its initializer); resubmit the unfinished tasks on "
                        f"a fresh pool or degrade to threads/serial"
                    ) from exc
        finally:
            # A hung or dead pool must not block shutdown; a healthy one
            # may be reaped synchronously.
            pool.shutdown(wait=not abandoned, cancel_futures=abandoned)
        return results
