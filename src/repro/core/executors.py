"""Execution backends for ParaMount workers.

The paper runs one Java thread per worker pulling events off the total
order (Algorithm 1).  We provide:

* :class:`SerialExecutor` — run interval tasks in ``→p`` order on the
  calling thread (the baseline, and the engine underneath the simulated
  parallel machine);
* :class:`ThreadExecutor` — a real shared-memory thread pool.  Functionally
  identical to the paper's setup; on CPython the GIL serializes the compute
  so it demonstrates correctness under concurrency, not speedup (the
  speedup experiments use :mod:`repro.core.simulated` — DESIGN.md §3);
* :class:`ProcessExecutor` — a process pool for true parallelism when the
  per-task payload is picklable (no shared visitor callbacks).

All executors preserve task order in the returned list, so per-interval
statistics line up with the ``→p`` order regardless of backend.

Failure model (see DESIGN.md §"Fault model and recovery"): exceptions
raised *by* a task propagate unchanged; infrastructure failures — a hung
gather, a dead worker process, an unpicklable payload — surface as typed
:class:`~repro.errors.ExecutorError` subclasses so callers can retry or
degrade.  :class:`RetryPolicy` is the shared bounded-retry/backoff
schedule used by :class:`repro.resilience.ResilientExecutor` and
:func:`repro.core.mp.paramount_count_multiprocessing`.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
from abc import ABC, abstractmethod
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import (
    BrokenPoolError,
    ExecutorTimeoutError,
    TaskNotPicklableError,
)
from repro.util.rng import DeterministicRng, derive_seed

__all__ = [
    "Executor",
    "RetryPolicy",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``max_attempts`` counts *total* tries of one task (1 = no retry).  The
    delay before retry ``k`` (1-based) is
    ``min(base_delay · backoff^(k-1), max_delay)``, stretched by up to
    ``jitter`` (a fraction) drawn from :mod:`repro.util.rng` so that
    concurrent retriers seeded identically still produce reproducible —
    yet decorrelated — schedules.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    backoff: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be ≥ 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be ≥ 0")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be ≥ 1, got {self.backoff}")

    def delay(self, attempt: int) -> float:
        """Backoff delay in seconds before retry number ``attempt`` (≥ 1)."""
        d = min(self.base_delay * self.backoff ** max(attempt - 1, 0), self.max_delay)
        if self.jitter and d > 0:
            rng = DeterministicRng(derive_seed(self.seed, "retry", attempt))
            d *= 1.0 + self.jitter * rng.random()
        return d


class Executor(ABC):
    """Maps a list of zero-argument tasks to their results, order-preserving."""

    #: Short backend name used in experiment tables.
    name: str = "abstract"

    def __init__(self, num_workers: int = 1):
        if num_workers < 1:
            raise ValueError(f"num_workers must be ≥ 1, got {num_workers}")
        #: Worker count (the paper's "number of threads").
        self.num_workers = num_workers

    @abstractmethod
    def map_tasks(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        """Run all tasks; return results in task order."""


class SerialExecutor(Executor):
    """Run tasks one after another on the calling thread."""

    name = "serial"

    def __init__(self) -> None:
        super().__init__(num_workers=1)

    def map_tasks(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        return [task() for task in tasks]


class ThreadExecutor(Executor):
    """A real thread pool (``concurrent.futures.ThreadPoolExecutor``).

    Visitors invoked from tasks run concurrently: callers must pass
    thread-safe visitors (the detector's predicate evaluators take a lock
    or use thread-local accumulation).

    ``task_timeout`` bounds the wait for each task's *result* during the
    gather; exceeding it cancels the remaining futures and raises
    :class:`~repro.errors.ExecutorTimeoutError` carrying the offending
    task index.  A thread already running its task cannot be interrupted —
    its result is simply discarded, which is safe because interval tasks
    are idempotent.
    """

    name = "threads"

    def __init__(self, num_workers: int = 1, task_timeout: Optional[float] = None):
        super().__init__(num_workers=num_workers)
        #: Per-task gather timeout in seconds (``None`` = wait forever).
        self.task_timeout = task_timeout

    def map_tasks(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        if not tasks:
            return []
        pool = concurrent.futures.ThreadPoolExecutor(max_workers=self.num_workers)
        futures = [pool.submit(task) for task in tasks]
        results: List[T] = []
        try:
            for index, future in enumerate(futures):
                try:
                    results.append(future.result(timeout=self.task_timeout))
                except concurrent.futures.TimeoutError:
                    for pending in futures:
                        pending.cancel()
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise ExecutorTimeoutError(
                        index, self.task_timeout or 0.0, executor=self.name
                    ) from None
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return results


class ProcessExecutor(Executor):
    """A process pool for GIL-free parallelism.

    Tasks must be picklable top-level callables; enumeration visitors
    cannot cross the process boundary, so this backend suits counting and
    self-contained predicate evaluation (the task returns its findings).
    Worker count defaults to the machine's CPU count.

    Infrastructure failures are translated into typed errors:
    a dead worker (crash, OOM kill, failed initializer) raises
    :class:`~repro.errors.BrokenPoolError`; an unpicklable task raises
    :class:`~repro.errors.TaskNotPicklableError`; a gather timeout raises
    :class:`~repro.errors.ExecutorTimeoutError`.  Exceptions raised *by*
    tasks propagate unchanged.
    """

    name = "processes"

    def __init__(self, num_workers: int = 0, task_timeout: Optional[float] = None):
        super().__init__(num_workers=num_workers or os.cpu_count() or 1)
        #: Per-task gather timeout in seconds (``None`` = wait forever).
        self.task_timeout = task_timeout

    def map_tasks(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        if not tasks:
            return []
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.num_workers)
        results: List[T] = []
        abandoned = False
        try:
            futures = [pool.submit(task) for task in tasks]
            for index, future in enumerate(futures):
                try:
                    results.append(future.result(timeout=self.task_timeout))
                except concurrent.futures.TimeoutError:
                    abandoned = True
                    raise ExecutorTimeoutError(
                        index, self.task_timeout or 0.0, executor=self.name
                    ) from None
                except (pickle.PicklingError, AttributeError, TypeError) as exc:
                    # CPython reports unpicklable payloads inconsistently:
                    # PicklingError, or AttributeError/TypeError with a
                    # "Can't pickle ..." message from the queue feeder.
                    if (
                        isinstance(exc, pickle.PicklingError)
                        or "pickle" in str(exc).lower()
                    ):
                        raise TaskNotPicklableError(index, exc) from exc
                    raise
                except BrokenProcessPool as exc:
                    abandoned = True
                    raise BrokenPoolError(
                        f"the process pool broke while awaiting task {index} "
                        f"(a worker died: crashed, OOM-killed, or failed in "
                        f"its initializer); resubmit the unfinished tasks on "
                        f"a fresh pool or degrade to threads/serial"
                    ) from exc
        finally:
            # A hung or dead pool must not block shutdown; a healthy one
            # may be reaped synchronously.
            pool.shutdown(wait=not abandoned, cancel_futures=abandoned)
        return results
