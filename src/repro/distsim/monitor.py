"""Convert a distributed simulation run into a poset of events.

The run's events already carry Fidge/Mattern clocks; this module groups
them into per-process chains and freezes a :class:`~repro.poset.poset.Poset`
whose insertion order is the execution order — a linear extension of
happened-before (a receive always executes after its send), so the poset
is directly consumable by offline *and* online ParaMount.
"""

from __future__ import annotations

from collections import defaultdict
from typing import List

from repro.distsim.simulator import SimulationRun
from repro.poset.event import Event
from repro.poset.poset import Poset

__all__ = ["poset_from_run", "events_from_run"]


def events_from_run(run: SimulationRun) -> List[Event]:
    """The run's events as poset events, in execution order."""
    out: List[Event] = []
    for de in run.events:
        out.append(
            Event(
                tid=de.pid,
                idx=de.idx,
                vc=de.vc,
                kind=de.kind,
                obj=de.tag,
            )
        )
    return out


def poset_from_run(run: SimulationRun) -> Poset:
    """Freeze the run into a poset (chains per process, recorded order)."""
    events = events_from_run(run)
    chains = defaultdict(list)
    for e in events:
        chains[e.tid].append(e)
    return Poset(
        [chains.get(p, []) for p in range(run.num_processes)],
        insertion=[e.eid for e in events],
    )
