"""Deterministic event-driven simulation of message-passing processes.

Processes are generator functions over a :class:`ProcessContext`, yielding
three kinds of actions:

* ``Send(dest, payload, tag)`` — asynchronously send a message;
* ``Receive()`` — block until a message is available; the yield expression
  evaluates to the delivered :class:`Message`;
* ``Internal(label)`` — a local computation event.

The simulator picks a runnable process pseudo-randomly (seeded) each step,
delivering messages per-channel FIFO — the assumption the Chandy–Lamport
snapshot proof needs and the paper's distributed-computation model uses.
Every action is an *event* stamped with a Fidge/Mattern vector clock
(receives merge the clock piggybacked on the message), and the run records
events in execution order — a valid insertion order for online ParaMount.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import DeadlockError, SchedulerError
from repro.types import Clock
from repro.util.rng import DeterministicRng

__all__ = [
    "Send",
    "Receive",
    "Internal",
    "Message",
    "DistEvent",
    "ProcessContext",
    "SimulationRun",
    "DistributedSystem",
]


@dataclass(frozen=True)
class Send:
    """Send ``payload`` to process ``dest`` (asynchronous, FIFO channel)."""

    dest: int
    payload: Any = None
    tag: Optional[str] = None


@dataclass(frozen=True)
class Receive:
    """Block until the next message (any sender) is delivered."""


@dataclass(frozen=True)
class Internal:
    """A local event (state change with no communication)."""

    label: Optional[str] = None


@dataclass(frozen=True)
class Message:
    """A delivered message, with the sender's piggybacked clock."""

    src: int
    dest: int
    payload: Any
    tag: Optional[str]
    clock: Clock


@dataclass(frozen=True)
class DistEvent:
    """One event of the distributed computation."""

    pid: int
    idx: int  # 1-based index within the process
    kind: str  # "send" | "receive" | "internal"
    vc: Clock
    #: Peer process for send/receive events (None for internal).
    peer: Optional[int] = None
    tag: Optional[str] = None


@dataclass
class ProcessContext:
    """Handle given to each process behavior."""

    pid: int
    num_processes: int
    rng: DeterministicRng
    #: Events this process has executed so far (live counter — the local
    #: state a snapshot records).
    events_executed: int = 0
    local: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SimulationRun:
    """The observed execution of a distributed simulation."""

    num_processes: int
    events: List[DistEvent] = field(default_factory=list)
    #: Messages still undelivered at termination, per channel.
    undelivered: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def events_of(self, pid: int) -> List[DistEvent]:
        """The event chain of one process."""
        return [e for e in self.events if e.pid == pid]

    def message_count(self) -> int:
        """Number of messages sent during the run."""
        return sum(1 for e in self.events if e.kind == "send")


class DistributedSystem:
    """Runs a set of process behaviors to completion under one schedule.

    Parameters
    ----------
    behaviors:
        One generator function per process (index = pid).
    seed:
        Scheduling seed; every run with the same seed is identical.
    max_steps:
        Safety bound on scheduler steps.
    """

    def __init__(
        self,
        behaviors: List[Callable],
        seed: int = 0,
        max_steps: int = 500_000,
    ):
        if not behaviors:
            raise SchedulerError("need at least one process")
        self.behaviors = list(behaviors)
        self.seed = seed
        self.max_steps = max_steps

    def run(self) -> SimulationRun:
        """Execute the system; return the observed run."""
        n = len(self.behaviors)
        rng = DeterministicRng(self.seed).fork("distsim")
        run = SimulationRun(num_processes=n)
        clocks: List[List[int]] = [[0] * n for _ in range(n)]
        inboxes: List[Deque[Message]] = [deque() for _ in range(n)]
        contexts = [
            ProcessContext(pid=p, num_processes=n, rng=rng.fork("proc", p))
            for p in range(n)
        ]
        gens = [self.behaviors[p](contexts[p]) for p in range(n)]
        #: None = runnable; "recv" = blocked on Receive; "done" = finished.
        status: List[Optional[str]] = [None] * n
        pending: List[Any] = [None] * n

        def emit(pid: int, kind: str, peer=None, tag=None) -> Clock:
            vc = clocks[pid]
            vc[pid] += 1
            contexts[pid].events_executed += 1
            stamped = tuple(vc)
            run.events.append(
                DistEvent(
                    pid=pid,
                    idx=stamped[pid],
                    kind=kind,
                    vc=stamped,
                    peer=peer,
                    tag=tag,
                )
            )
            return stamped

        steps = 0
        while True:
            runnable = [
                p
                for p in range(n)
                if status[p] is None or (status[p] == "recv" and inboxes[p])
            ]
            if not runnable:
                if all(s == "done" for s in status):
                    break
                blocked = [p for p, s in enumerate(status) if s == "recv"]
                if blocked and all(
                    s in ("recv", "done") for s in status
                ):
                    raise DeadlockError(
                        f"processes {blocked} blocked on receive with empty "
                        "inboxes"
                    )
                break  # pragma: no cover - defensive
            steps += 1
            if steps > self.max_steps:
                raise SchedulerError(
                    f"distributed simulation exceeded {self.max_steps} steps"
                )
            pid = rng.choice(runnable)
            gen = gens[pid]

            if status[pid] == "recv":
                msg = inboxes[pid].popleft()
                # receive rule: merge the piggybacked clock, then tick own
                vc = clocks[pid]
                for k, x in enumerate(msg.clock):
                    if x > vc[k]:
                        vc[k] = x
                emit(pid, "receive", peer=msg.src, tag=msg.tag)
                status[pid] = None
                pending[pid] = msg
                continue

            try:
                action = gen.send(pending[pid])
            except StopIteration:
                status[pid] = "done"
                continue
            pending[pid] = None

            if isinstance(action, Send):
                if not 0 <= action.dest < n:
                    raise SchedulerError(
                        f"process {pid} sent to unknown process {action.dest}"
                    )
                stamped = emit(pid, "send", peer=action.dest, tag=action.tag)
                inboxes[action.dest].append(
                    Message(
                        src=pid,
                        dest=action.dest,
                        payload=action.payload,
                        tag=action.tag,
                        clock=stamped,
                    )
                )
            elif isinstance(action, Receive):
                status[pid] = "recv"
            elif isinstance(action, Internal):
                emit(pid, "internal", tag=action.label)
            else:
                raise SchedulerError(
                    f"process {pid} yielded unknown action {action!r}"
                )

        for dest, box in enumerate(inboxes):
            for msg in box:
                key = (msg.src, dest)
                run.undelivered[key] = run.undelivered.get(key, 0) + 1
        return run
