"""Classic distributed protocols as simulation workloads.

Each builder returns a list of process behaviors for
:class:`~repro.distsim.simulator.DistributedSystem`.  They are the
distributed analogues of the thread workloads: structured computations
whose posets exercise enumeration and whose properties exercise predicate
detection —

* :func:`token_ring` — a token circulating ``rounds`` times (long causal
  chains, tiny lattice);
* :func:`ring_election` — Chang–Roberts leader election (data-dependent
  message pattern);
* :func:`dist_mutex` — token-based (safe) vs optimistic-grant (faulty)
  distributed mutual exclusion; the faulty variant admits global states
  with two processes in the critical section, caught by
  :class:`~repro.predicates.mutual_exclusion.MutualExclusionPredicate`;
* :func:`diffusing_work` — a diffusing computation for termination
  detection: workers go passive, but in-flight messages make "all frontier
  events passive" an *unsound* termination test — the classic pitfall the
  :class:`~repro.predicates.termination.TerminationPredicate` fixes by
  counting messages in the cut.
"""

from __future__ import annotations

from typing import Callable, List

from repro.distsim.simulator import Internal, Receive, Send

__all__ = ["token_ring", "ring_election", "dist_mutex", "diffusing_work"]

#: Tag of critical-section events (consumed by the mutex predicate).
CS_TAG = "critical"
#: Tag of passive events (consumed by the termination predicate).
PASSIVE_TAG = "passive"


def token_ring(n: int, rounds: int = 2) -> List[Callable]:
    """A token circulates the ring ``rounds`` times, ending at process 0."""

    def holder(ctx):
        nxt = (ctx.pid + 1) % n
        for r in range(rounds):
            if not (ctx.pid == 0 and r == 0):
                yield Receive()  # wait for the token
            yield Internal("work")
            yield Send(nxt, f"token-{r}", tag="token")
        if ctx.pid == 0:
            yield Receive()  # the token coming home after the last lap
            yield Internal("done")

    return [holder] * n


def ring_election(n: int, ids: List[int]) -> List[Callable]:
    """Chang–Roberts election on a unidirectional ring.

    ``ids[p]`` is process ``p``'s (unique) candidate id.  Every process
    learns the leader and terminates.
    """
    if len(set(ids)) != n:
        raise ValueError("candidate ids must be unique")

    def node(ctx):
        my_id = ids[ctx.pid]
        nxt = (ctx.pid + 1) % n
        yield Send(nxt, my_id, tag="cand")
        leader = False
        while True:
            msg = yield Receive()
            if msg.tag == "cand":
                if msg.payload > my_id:
                    yield Send(nxt, msg.payload, tag="cand")
                elif msg.payload == my_id:
                    leader = True
                    yield Internal("leader")
                    yield Send(nxt, my_id, tag="elected")
                # smaller candidates are swallowed
            elif msg.tag == "elected":
                if leader:
                    break  # the announcement completed the loop
                yield Internal("learned-leader")
                yield Send(nxt, msg.payload, tag="elected")
                break
        if leader:
            yield Internal("announced")

    return [node] * n


def dist_mutex(n: int, safe: bool = True) -> List[Callable]:
    """Distributed mutual exclusion over ``n`` processes.

    * ``safe=True`` — token-based: process 0 holds the token; each process
      enters its critical section only while holding it, then passes it on.
      All CS events are totally ordered by the token's causal chain.
    * ``safe=False`` — "optimistic grant": each process broadcasts a
      request and enters after receiving all grants, but grants are issued
      unconditionally — a deliberately broken protocol where two CS events
      can be concurrent (the violation ParaMount's mutual-exclusion
      predicate exhibits on the lattice).
    """
    if safe:

        def node(ctx):
            nxt = (ctx.pid + 1) % n
            if ctx.pid == 0:
                yield Internal(CS_TAG)  # holds the initial token
                yield Send(nxt, None, tag="token")
                if n > 1:
                    yield Receive()  # token returns after the full circle
                yield Internal("idle")
            else:
                yield Receive()
                yield Internal(CS_TAG)
                yield Send(nxt, None, tag="token")

        return [node] * n

    def node(ctx):  # noqa: F811 - deliberate variant shadowing
        others = [q for q in range(n) if q != ctx.pid]
        for q in others:
            yield Send(q, None, tag="request")
        granted = 0
        replied = 0
        # serve others' requests and collect grants concurrently
        while granted < len(others) or replied < len(others):
            msg = yield Receive()
            if msg.tag == "request":
                # BUG: grant unconditionally, even while entering ourselves
                yield Send(msg.src, None, tag="grant")
                replied += 1
            elif msg.tag == "grant":
                granted += 1
        yield Internal(CS_TAG)
        yield Internal("idle")

    return [node] * n


def diffusing_work(n: int, fanout: int = 2) -> List[Callable]:
    """A diffusing computation rooted at process 0.

    The root sends work to ``fanout`` children; every worker performs the
    task, forwards to one further process (until the ring is covered), and
    goes *passive*.  At the end every process's last event is tagged
    ``passive``, but there are global states where all frontiers are
    passive while work messages are still in flight — the classic
    termination-detection trap.
    """

    def node(ctx):
        if ctx.pid == 0:
            yield Internal("active")
            for k in range(1, min(fanout, n - 1) + 1):
                yield Send(k, "work", tag="work")
            yield Internal(PASSIVE_TAG)
        else:
            yield Internal(PASSIVE_TAG)  # initially passive
            msg = yield Receive()
            yield Internal("active")
            nxt = ctx.pid + fanout
            if nxt < n:
                yield Send(nxt, msg.payload, tag="work")
            yield Internal(PASSIVE_TAG)

    return [node] * n
