"""The Chandy–Lamport distributed snapshot algorithm [3].

The paper grounds "consistent global state" in Chandy & Lamport's
distributed snapshots; this module closes the loop by implementing the
snapshot algorithm over the simulator and validating its output against
the enumerated lattice: **the recorded cut must be one of the consistent
global states ParaMount enumerates** (the property test in
``tests/test_distsim.py``).

Implementation: a behavior *wrapper*.  The initiator records its local
state (its event count) at start and immediately sends a ``MARKER`` to
every other process; every process records on its first marker and
immediately relays markers.  Marker sends/receives are ordinary events of
the computation (they appear in the poset); per-channel FIFO delivery —
guaranteed by the simulator — is what makes the recorded cut consistent.
A process that terminates without ever seeing a marker records at
termination (it can never receive a post-recording message, so consistency
is preserved).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.distsim.simulator import (
    DistributedSystem,
    Receive,
    Send,
    SimulationRun,
)
from repro.types import Cut

__all__ = ["chandy_lamport_snapshot", "MARKER_TAG"]

#: Tag marking Chandy–Lamport control messages.
MARKER_TAG = "__marker__"


def _wrap(
    behavior: Callable,
    num_processes: int,
    initiator: int,
    recorded: Dict[int, int],
    initiator_delay: int = 0,
):
    """Wrap a behavior with marker handling and state recording."""

    def wrapped(ctx):
        def record(exclude_current_event: bool = False) -> bool:
            """Record once; when triggered by a marker receive, the marker
            event itself is *not* part of the recorded state (it depends on
            the sender's post-recording marker send)."""
            if ctx.pid in recorded:
                return False
            recorded[ctx.pid] = ctx.events_executed - (
                1 if exclude_current_event else 0
            )
            return True

        def send_markers():
            for q in range(num_processes):
                if q != ctx.pid:
                    yield Send(q, None, tag=MARKER_TAG)

        if ctx.pid == initiator and initiator_delay == 0:
            record()
            yield from send_markers()

        inner = behavior(ctx)
        to_send = None
        actions_forwarded = 0
        while True:
            if (
                ctx.pid == initiator
                and initiator_delay > 0
                and actions_forwarded == initiator_delay
                and record()
            ):
                yield from send_markers()
            try:
                action = inner.send(to_send)
            except StopIteration:
                break
            actions_forwarded += 1
            to_send = None
            if isinstance(action, Receive):
                # deliver the next application message, absorbing markers
                while True:
                    msg = yield action
                    if msg.tag == MARKER_TAG:
                        if record(exclude_current_event=True):
                            yield from send_markers()
                        continue
                    to_send = msg
                    break
            else:
                to_send = yield action
        # drain remaining markers so channels are empty at termination
        record()

    return wrapped


def chandy_lamport_snapshot(
    behaviors: List[Callable],
    seed: int = 0,
    initiator: int = 0,
    initiator_delay: int = 0,
) -> tuple:
    """Run the system with an embedded snapshot; return ``(run, cut)``.

    ``cut[p]`` is the number of events process ``p`` had executed when it
    recorded — the snapshot's global state, guaranteed consistent in the
    run's poset.  ``initiator_delay`` lets the initiator run that many
    actions of its own protocol before initiating, so the snapshot lands
    mid-computation instead of at the very start.
    """
    n = len(behaviors)
    recorded: Dict[int, int] = {}
    wrapped = [
        _wrap(b, n, initiator, recorded, initiator_delay) for b in behaviors
    ]
    run = DistributedSystem(wrapped, seed=seed).run()
    cut: Cut = tuple(recorded.get(p, 0) for p in range(n))
    return run, cut
