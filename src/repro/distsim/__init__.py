"""Distributed-system simulation substrate.

The paper's algorithms apply unchanged to distributed systems ("the term
threads would mean threads in concurrent systems or processes in
distributed systems", §1).  This package provides the distributed half of
the runtime substrate: processes exchanging messages over FIFO channels,
with Fidge/Mattern vector clocks piggybacked on every message — the
textbook construction the paper's §2.2 summarizes.

Contents:

* :mod:`repro.distsim.simulator` — deterministic event-driven simulation
  of message-passing processes (behaviors are generators yielding
  ``Send``/``Receive``/``Internal`` actions);
* :mod:`repro.distsim.monitor` — converts a simulation run into the poset
  of events (send → receive edges, process order), ready for ParaMount;
* :mod:`repro.distsim.snapshot` — the Chandy–Lamport snapshot algorithm
  [3], whose recorded cut is validated against the enumerated lattice;
* :mod:`repro.distsim.protocols` — classic workloads: token ring, ring
  leader election, Ricart–Agrawala-style mutual exclusion, and a
  diffusing-computation termination scenario.
"""

from repro.distsim.monitor import poset_from_run
from repro.distsim.simulator import (
    DistributedSystem,
    Internal,
    Receive,
    Send,
    SimulationRun,
)
from repro.distsim.snapshot import chandy_lamport_snapshot

__all__ = [
    "DistributedSystem",
    "Send",
    "Receive",
    "Internal",
    "SimulationRun",
    "poset_from_run",
    "chandy_lamport_snapshot",
]
