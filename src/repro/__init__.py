"""ParaMount: parallel and online enumeration of consistent global states.

A reproduction of Chang & Garg, *"A Parallel Algorithm for Global States
Enumeration in Concurrent Systems"* (PPoPP 2015).  See ``README.md`` for a
tour and ``DESIGN.md`` for the system inventory.

The most commonly used entry points are re-exported here:

>>> from repro import ParaMount, PosetBuilder
>>> b = PosetBuilder(2)
>>> _ = b.append(0); _ = b.append(1, deps=[(0, 1)])
>>> ParaMount(b.build()).run().states
3
"""

from repro.core.online import OnlineParaMount
from repro.core.paramount import ParaMount
from repro.detector.fasttrack import FastTrackDetector
from repro.detector.paramount_detector import ParaMountDetector
from repro.detector.rv_runtime import RVRuntimeDetector
from repro.enumeration.base import CollectingVisitor
from repro.enumeration.bfs import BFSEnumerator
from repro.enumeration.lexical import LexicalEnumerator
from repro.obs import NullObserver, Observer
from repro.poset.builder import PosetBuilder
from repro.poset.ideals import count_ideals
from repro.poset.poset import Poset
from repro.runtime.program import Program
from repro.runtime.scheduler import run_program

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Poset",
    "PosetBuilder",
    "count_ideals",
    "BFSEnumerator",
    "LexicalEnumerator",
    "CollectingVisitor",
    "ParaMount",
    "OnlineParaMount",
    "Observer",
    "NullObserver",
    "Program",
    "run_program",
    "ParaMountDetector",
    "RVRuntimeDetector",
    "FastTrackDetector",
]
