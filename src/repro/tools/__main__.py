"""``python -m repro.tools`` dispatches to the CLI."""

import sys

from repro.tools.cli import main

sys.exit(main())
