"""Command-line tools: capture, detect, enumerate, explore.

``python -m repro.tools <command>`` (or the ``repro-tools`` console
script) drives the library end to end without writing Python:

* ``list`` — available workloads;
* ``run`` — execute a workload under a seeded schedule, save the trace;
* ``detect`` — run a detector over a saved (or freshly captured) trace;
* ``capture-poset`` — convert a workload execution into a poset file;
* ``enumerate`` — count/enumerate a poset file's global states, optionally
  with ParaMount and a modeled worker count;
* ``explore`` — multi-schedule race exploration (the RichTest-style
  companion).
"""

from repro.tools.cli import main

__all__ = ["main"]
