"""Implementation of the ``repro-tools`` command line interface."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.util.timing import format_duration

__all__ = ["main"]


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.workloads.registry import (
        DETECTION_WORKLOADS,
        ENUMERATION_WORKLOADS,
        EXTRA_DETECTION_WORKLOADS,
    )

    print("Detection workloads (Table 2):")
    for name, w in DETECTION_WORKLOADS.items():
        print(f"  {name:15s} {w.description}")
    print("\nDetection workloads (extra, MHP-structured):")
    for name, w in EXTRA_DETECTION_WORKLOADS.items():
        print(f"  {name:15s} {w.description}")
    print("\nEnumeration workloads (Table 1):")
    for name, w in ENUMERATION_WORKLOADS.items():
        print(f"  {name:15s} n={w.threads:<3d} {w.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.runtime.trace_io import save_trace
    from repro.workloads.registry import detection_workload

    workload = detection_workload(args.workload)
    trace = __import__("repro.runtime.scheduler", fromlist=["run_program"]).run_program(
        workload.build(), seed=args.seed, stickiness=args.stickiness
    )
    print(
        f"ran {workload.name!r}: {trace.num_threads} threads, "
        f"{len(trace.ops)} operations, {len(trace.variables())} variables, "
        f"base time {format_duration(trace.base_seconds)}"
    )
    if args.out:
        save_trace(trace, args.out)
        print(f"trace written to {args.out}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.detector import (
        FastTrackDetector,
        ParaMountDetector,
        RVRuntimeDetector,
    )
    from repro.runtime.trace_io import load_trace
    from repro.workloads.registry import DETECTION_WORKLOADS, detection_workload

    if args.trace:
        trace = load_trace(args.trace)
        benign = frozenset()
        if trace.program_name in DETECTION_WORKLOADS:
            benign = DETECTION_WORKLOADS[trace.program_name].benign_vars
    else:
        workload = detection_workload(args.workload)
        trace = workload.trace()
        benign = workload.benign_vars

    pruner = None
    if args.static_prune:
        if args.detector != "paramount":
            print("error: --static-prune requires --detector paramount", file=sys.stderr)
            return 2
        from repro.staticcheck.prune import StaticPruner
        from repro.workloads.registry import ALL_DETECTION_WORKLOADS

        if trace.program_name not in ALL_DETECTION_WORKLOADS:
            print(
                f"error: --static-prune needs the program source; trace "
                f"program {trace.program_name!r} is not a known workload",
                file=sys.stderr,
            )
            return 2
        program = ALL_DETECTION_WORKLOADS[trace.program_name].build()
        pruner = StaticPruner.from_program(program)
        print(pruner.describe())

    if args.detector != "paramount" and args.plan != "auto":
        print("error: --plan requires --detector paramount", file=sys.stderr)
        return 2

    if args.detector == "paramount":
        from repro.errors import PlannerError

        try:
            report = ParaMountDetector(
                subroutine=args.subroutine,
                static_pruner=pruner,
                plan=args.plan,
            ).run(trace, benign)
        except PlannerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.detector == "rv":
        report = RVRuntimeDetector().run(trace, benign)
    else:
        report = FastTrackDetector(trace.num_threads).run(trace, benign)

    print(f"detector:   {report.detector}")
    print(f"benchmark:  {report.benchmark}")
    print(f"status:     {report.status}")
    if report.plan_route:
        print(f"plan:       {report.plan_route} ({report.predicate_class})")
    print(f"elapsed:    {format_duration(report.elapsed)}")
    if report.witness is not None:
        print(f"witness:    {report.witness}")
    if report.states_enumerated:
        print(f"states:     {report.states_enumerated}")
    if report.poset_events:
        print(f"events:     {report.poset_events}")
    if report.pruned_vars or report.pruned_accesses:
        print(
            f"pruned:     {len(report.pruned_vars)} variable(s), "
            f"{report.pruned_accesses} access(es) skipped statically"
        )
    print(f"detections: {report.num_detections}")
    for var in report.sorted_vars():
        race = report.races[var]
        benign_tag = " [benign]" if race.benign else ""
        print(
            f"  {var}: t{race.first[0]} {race.first[1]} / "
            f"t{race.second[0]} {race.second[1]}{benign_tag}"
        )
    if report.error:
        print(f"note: {report.error}")
    return 0


def _cmd_capture_poset(args: argparse.Namespace) -> int:
    from repro.detector.hb import poset_from_trace
    from repro.poset.io import save_poset
    from repro.workloads.registry import detection_workload

    workload = detection_workload(args.workload)
    trace = workload.trace()
    poset = poset_from_trace(trace, merge_collections=not args.raw)
    save_poset(poset, args.out)
    kind = "raw access" if args.raw else "event-collection"
    print(
        f"captured {kind} poset of {workload.name!r}: n={poset.num_threads}, "
        f"{poset.num_events} events -> {args.out}"
    )
    return 0


def _make_observer(args: argparse.Namespace):
    """Build an Observer for ``enumerate``/``coordinator`` from the
    --trace-out/--metrics-out/--progress/--profile/--http-port flags;
    returns ``None`` when none was requested."""
    wants_obs = bool(
        getattr(args, "trace_out", None)
        or getattr(args, "metrics_out", None)
        or getattr(args, "progress", False)
        or getattr(args, "profile", None) is not None
        or getattr(args, "http_port", None) is not None
    )
    if not wants_obs:
        return None
    from repro.obs import Observer, ProgressReporter, SpanLogHandler
    from repro.util.log import get_logger

    progress = ProgressReporter() if args.progress else None
    observer = Observer(progress=progress)
    # Warnings (degradations, quarantines, timeouts) land on the trace too.
    handler = SpanLogHandler(observer)
    get_logger("").addHandler(handler)
    observer._cli_log_handler = handler
    observer._cli_profiler = None
    if getattr(args, "profile", None) is not None:
        from repro.obs import SamplingProfiler

        observer._cli_profiler = SamplingProfiler(
            observer, hz=args.profile
        ).start()
        print(f"sampling profiler attached at {args.profile:g} Hz")
    return observer


def _finish_observer(observer, args: argparse.Namespace) -> None:
    if observer is None:
        return
    from repro.obs import write_chrome_trace, write_prometheus
    from repro.util.log import get_logger

    get_logger("").removeHandler(observer._cli_log_handler)
    if observer.progress is not None:
        observer.progress.close()
    profiler = getattr(observer, "_cli_profiler", None)
    if profiler is not None:
        profiler.stop()
        base = getattr(args, "profile_out", None) or "profile"
        speedscope = profiler.write_speedscope(f"{base}.speedscope.json")
        profiler.write_collapsed(f"{base}.collapsed.txt")
        samples = sum(profiler.samples.values())
        print(
            f"profile written to {speedscope} and {base}.collapsed.txt "
            f"({samples} samples)"
        )
    if args.trace_out:
        write_chrome_trace(args.trace_out, observer.spans())
        print(f"trace written to {args.trace_out} ({len(observer.spans())} spans)")
    if args.metrics_out:
        write_prometheus(args.metrics_out, observer.snapshot())
        print(f"metrics written to {args.metrics_out}")


def _cmd_enumerate(args: argparse.Namespace) -> int:
    from repro.core.executors import RetryPolicy
    from repro.core.paramount import ParaMount
    from repro.core.scheduling import SchedulePolicy
    from repro.core.simulated import CostModel, simulate_schedule
    from repro.poset.io import load_poset

    poset = load_poset(args.poset)
    print(f"poset: n={poset.num_threads}, {poset.num_events} events")
    dist = args.backend == "dist"
    resilient = bool(args.resume or args.faults or args.workers)
    if (resilient or dist or args.deadline is not None) and not args.paramount:
        print(
            "error: --resume/--faults/--workers/--backend/--deadline "
            "require --paramount",
            file=sys.stderr,
        )
        return 2
    if dist and args.faults:
        print(
            "error: --faults injects in-process; with --backend dist use "
            "--wire-faults",
            file=sys.stderr,
        )
        return 2
    if args.wire_faults and not dist:
        print("error: --wire-faults requires --backend dist", file=sys.stderr)
        return 2
    observer = _make_observer(args)
    if observer is not None and not args.paramount:
        print(
            "error: --trace-out/--metrics-out/--progress/--profile/"
            "--http-port require --paramount",
            file=sys.stderr,
        )
        return 2
    ops = None
    if args.http_port is not None and not dist:
        # dist runs mount the endpoint on the coordinator instead, where
        # the lease table and per-host series live.
        from repro.obs import OpsEndpoint

        ops = OpsEndpoint(observer, port=args.http_port).start()
        print(f"ops endpoint: {ops.url} (/metrics /healthz /progress)")
    if args.paramount:
        policy = SchedulePolicy.parse(args.schedule)
        executor = None
        if dist:
            from pathlib import Path

            from repro.dist import DistributedExecutor, WireFaults

            wire_faults = (
                WireFaults.parse(args.wire_faults) if args.wire_faults else None
            )
            if wire_faults is not None:
                print(f"injecting wire faults: {args.wire_faults}")
            executor = DistributedExecutor(
                workers=args.dist_workers,
                lease_seconds=args.lease_seconds,
                wire_faults=wire_faults,
                poset_path=Path(args.poset),
                http_port=args.http_port,
            )
            print(
                f"distributed backend: {args.dist_workers} local worker "
                f"process(es), {args.lease_seconds:g}s leases"
            )
            if args.http_port is not None:
                print(
                    f"ops endpoint: coordinator will serve /metrics "
                    f"/healthz /progress on port {args.http_port}"
                )
        elif resilient:
            from repro.resilience import (
                FaultInjectingExecutor,
                FaultSpec,
                ResilientExecutor,
                default_ladder,
            )

            ladder = default_ladder(
                args.workers or 1,
                task_timeout=args.task_timeout,
                steal=policy.steal,
            )
            if args.faults:
                spec = FaultSpec.parse(args.faults)
                print(f"injecting faults: {args.faults}")
                ladder = [FaultInjectingExecutor(ladder[0], spec)] + ladder[1:]
            executor = ResilientExecutor(
                ladder=ladder, retry=RetryPolicy(max_attempts=args.retries)
            )
        pm = ParaMount(
            poset,
            subroutine=args.algorithm,
            executor=executor,
            checkpoint=args.resume,
            schedule=policy,
            observer=observer,
            deadline=args.deadline,
        )
        try:
            result = pm.run()
        finally:
            if ops is not None:
                ops.close()
            _finish_observer(observer, args)
        print(
            f"ParaMount({args.algorithm}): {result.states} states over "
            f"{len(result.intervals)} intervals "
            f"(wall {format_duration(result.wall_time)})"
        )
        print(
            f"  schedule: {result.schedule} — {len(result.tasks)} task(s), "
            f"{result.split_intervals} interval(s) split, "
            f"{result.steals} steal(s)"
        )
        print(
            f"  imbalance: static partition {result.load_imbalance():.2f}, "
            f"executed schedule {result.schedule_imbalance():.2f} "
            f"(max/mean, 1.0 = balanced)"
        )
        if args.resume:
            print(
                f"  checkpoint: {result.resumed_intervals} task(s) "
                f"restored from {args.resume}, "
                f"{len(result.tasks) - result.resumed_intervals} enumerated"
            )
        if result.retries:
            print(f"  retries: {result.retries} task resubmission(s)")
        if result.hosts or result.redispatches or result.leases_expired:
            print(
                f"  dist: hosts={','.join(result.hosts) or '-'}, "
                f"{result.leases_expired} lease(s) expired, "
                f"{result.redispatches} re-dispatch(es)"
            )
        if result.deadline_expired:
            print(
                f"  deadline of {args.deadline:g}s expired: in-flight "
                f"intervals drained, the rest skipped"
            )
        for d in result.degradations:
            print(f"  degraded [{d.kind}]: {d.from_name} -> {d.to_name} ({d.reason})")
        for f in result.failures:
            print(
                f"  FAILED interval {f.event} after {f.attempts} attempt(s) "
                f"on {f.executor}: {f.error}"
            )
        if not result.complete:
            lost = len(result.failures)
            why = f"{lost} interval(s) lost" if lost else "deadline expired"
            print(
                f"  result is a LOWER BOUND: {why} "
                f"(Theorem 2: nothing else is affected)"
            )
        model = CostModel()
        tasks = [model.task_seconds(s.work, s.peak_live) for s in result.intervals]
        split_tasks = [
            model.task_seconds(s.work, s.peak_live) for s in result.tasks
        ]
        for k in (1, 2, 4, 8):
            makespan = simulate_schedule(tasks, k).makespan
            line = f"  modeled time with {k} worker(s): {makespan:.4f}s"
            if len(split_tasks) != len(tasks):
                split_makespan = simulate_schedule(split_tasks, k).makespan
                line += f" (split schedule: {split_makespan:.4f}s)"
            print(line)
    else:
        from repro.enumeration.base import make_enumerator
        from repro.util.timing import Stopwatch

        enumerator = make_enumerator(args.algorithm, poset)
        with Stopwatch() as sw:
            result = enumerator.enumerate()
        print(
            f"{args.algorithm}: {result.states} states "
            f"(wall {format_duration(sw.elapsed)}, peak live {result.peak_live})"
        )
    return 0


def _cmd_coordinator(args: argparse.Namespace) -> int:
    """Serve one distributed run to externally started workers."""
    from repro.core.paramount import ParaMount
    from repro.core.scheduling import SchedulePolicy
    from repro.dist import DistributedExecutor
    from repro.poset.io import load_poset

    poset = load_poset(args.poset)
    observer = _make_observer(args)
    executor = DistributedExecutor(
        workers=args.workers,
        host=args.host,
        port=args.port,
        spawn=False,
        lease_seconds=args.lease_seconds,
        no_worker_grace=args.worker_grace,
        http_port=args.http_port,
    )
    if args.http_port is not None:
        print(
            f"ops endpoint: /metrics /healthz /progress on port "
            f"{args.http_port}"
        )
    pm = ParaMount(
        poset,
        subroutine=args.algorithm,
        executor=executor,
        checkpoint=args.resume,
        schedule=SchedulePolicy.parse(args.schedule),
        observer=observer,
        deadline=args.deadline,
    )
    print(
        f"coordinator: poset n={poset.num_threads}, {poset.num_events} "
        f"events; listening on {args.host}:{args.port} "
        f"(point workers at it with: repro-tools worker --connect "
        f"{args.host}:{args.port})"
    )
    try:
        result = pm.run()
    finally:
        _finish_observer(observer, args)
    print(
        f"coordinator done: {result.states} states over "
        f"{len(result.intervals)} intervals "
        f"(wall {format_duration(result.wall_time)})"
    )
    print(
        f"  hosts: {','.join(result.hosts) or '-'}; "
        f"{result.leases_expired} lease(s) expired, "
        f"{result.redispatches} re-dispatch(es)"
    )
    for d in result.degradations:
        print(f"  degraded [{d.kind}]: {d.from_name} -> {d.to_name} ({d.reason})")
    for f in result.failures:
        print(
            f"  FAILED interval {f.event} after {f.attempts} attempt(s) "
            f"on {f.executor}: {f.error}"
        )
    if not result.complete:
        print("  result is PARTIAL (failures or deadline)")
        return 1
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one enumeration worker against a coordinator."""
    from repro.dist import WireFaults, run_worker
    from repro.errors import StaleDigestError
    from repro.poset.io import load_poset

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(
            f"error: --connect wants HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    poset = load_poset(args.poset) if args.poset else None
    wire_faults = WireFaults.parse(args.wire_faults) if args.wire_faults else None
    try:
        return run_worker(
            (host, int(port)),
            name=args.name,
            poset=poset,
            wire_faults=wire_faults,
        )
    except StaleDigestError as exc:
        print(f"worker refused: {exc}", file=sys.stderr)
        return 3
    except ConnectionRefusedError:
        print(
            f"error: no coordinator listening at {args.connect}",
            file=sys.stderr,
        )
        return 1


def _cmd_obs_render(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.obs.render import render_trace_file

    try:
        print(render_trace_file(args.trace, top=args.top))
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.obs.forensics import build_report, render_report

    try:
        report = build_report(args.trace, journal_path=args.journal, k=args.k)
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_report(report, trace_path=args.trace))
    if report.reconciled is False:
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.analysis.profile import profile_poset, render_profile
    from repro.poset.io import load_poset

    poset = load_poset(args.poset)
    profile = profile_poset(poset)
    print(render_profile(profile, title=f"Lattice profile: {args.poset}"))
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.runtime.explore import explore_schedules
    from repro.workloads.registry import detection_workload

    workload = detection_workload(args.workload)
    result = explore_schedules(
        workload.build(),
        seeds=range(args.seeds),
        benign_vars=workload.benign_vars,
    )
    print(
        f"explored {result.schedules_run} schedules of {workload.name!r} "
        f"({result.distinct_posets} distinct posets)"
    )
    print(f"racy variables ({result.num_detections}): {sorted(result.racy_vars)}")
    return 0


def _emit_diagnostics(args: argparse.Namespace, per_program, names: List[str]) -> None:
    """Shared ``--format``/``--sarif`` emission for the check sub-modes."""
    from repro.staticcheck import diag as diagmod

    all_diags = [d for name in names for d in per_program.get(name, ())]
    if args.format == "json":
        doc = {
            "version": 1,
            "programs": {
                name: [d.to_json() for d in per_program.get(name, ())]
                for name in names
            },
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    elif args.format == "jsonl":
        for d in all_diags:
            print(json.dumps(d.to_json(), sort_keys=True))
    if args.sarif:
        diagmod.write_sarif(args.sarif, all_diags)
        if args.format == "text":
            print(f"SARIF report written to {args.sarif}")


def _check_predicates(args: argparse.Namespace, names: List[str]) -> int:
    """The ``check --predicates`` lint: classify every registered predicate
    under its author-declared class, surface demotions (unsound
    declarations), and — unless ``--static-only`` — cross-validate each
    planner fast path against full enumeration."""
    from repro.detector.hb import poset_from_trace
    from repro.predicates.registry import predicates_for
    from repro.staticcheck import cross_validate_planner
    from repro.staticcheck.predclass import PredicateClass, classify_predicate
    from repro.workloads.registry import detection_workload

    text = args.format == "text"
    demotions = 0
    failures = 0
    per_program = {}
    for name in names:
        workload = detection_workload(name)
        poset = poset_from_trace(workload.trace(), merge_collections=True)
        diags = []
        if text:
            print(f"predicate classification for {name!r}:")
        for spec in predicates_for(name, include_adversarial=args.adversarial):
            cert = classify_predicate(
                spec.build(poset),
                name=spec.name,
                claimed=PredicateClass(spec.claimed),
            )
            tag = "DEMOTED" if cert.demoted else "ok"
            if text:
                print(
                    f"  {spec.name:15s} claimed={cert.claimed.value:11s} "
                    f"assigned={cert.assigned.value:11s} {tag}"
                )
            if cert.demoted:
                demotions += 1
                diags.extend(cert.diagnostics(program=name))
                if text:
                    for d in cert.demotions:
                        print(f"    {d.describe()}")
        per_program[name] = diags
        if not args.static_only:
            cv = cross_validate_planner(
                name, include_adversarial=args.adversarial
            )
            if text:
                print(cv.format())
            if not cv.ok:
                failures += 1
        if text:
            print()
    _emit_diagnostics(args, per_program, names)
    if failures:
        print(
            f"{failures} workload(s) FAILED planner cross-validation "
            "(fast-path verdict differs from full enumeration)"
        )
        return 1
    if args.strict and demotions:
        print(
            f"strict mode: {demotions} unsound predicate declaration(s) "
            "demoted to arbitrary"
        )
        return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.staticcheck import analyze_program, cross_validate
    from repro.staticcheck import diag as diagmod
    from repro.workloads.registry import ALL_DETECTION_WORKLOADS, detection_workload

    if args.all:
        names = list(ALL_DETECTION_WORKLOADS)
    elif args.workloads:
        names = list(args.workloads)
    else:
        print("error: give one or more workload names or --all", file=sys.stderr)
        return 2
    if args.adversarial and not args.predicates:
        print("error: --adversarial requires --predicates", file=sys.stderr)
        return 2
    if args.baseline and args.predicates:
        print(
            "error: --baseline applies to the static check, not --predicates",
            file=sys.stderr,
        )
        return 2
    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline", file=sys.stderr)
        return 2
    if args.predicates:
        return _check_predicates(args, names)

    text = args.format == "text"
    failures = 0
    warnings_emitted = 0
    per_program = {}
    for name in names:
        workload = detection_workload(name)
        if args.mhp and text:
            from repro.staticcheck import build_mhp
            from repro.staticcheck.extract import extract_summary

            print(build_mhp(extract_summary(workload.build())).describe())
        if args.static_only:
            report = analyze_program(workload.build())
            if text:
                print(report.format())
        else:
            cv = cross_validate(name)
            report = cv.static_report
            if text:
                print(report.format())
                print(cv.format())
            if not cv.ok:
                failures += 1
        per_program[name] = report.diagnostics()
        warnings_emitted += len(report.warnings)
        if text:
            print()
    _emit_diagnostics(args, per_program, names)
    baseline_rc = 0
    if args.baseline:
        current = diagmod.baseline_from_diagnostics(per_program)
        if args.update_baseline:
            diagmod.write_baseline(args.baseline, current)
            if text:
                print(f"baseline updated: {args.baseline}")
        else:
            try:
                baseline = diagmod.load_baseline(args.baseline)
            except FileNotFoundError:
                print(
                    f"error: baseline file {args.baseline!r} not found "
                    "(run with --update-baseline to create it)",
                    file=sys.stderr,
                )
                return 2
            deltas = diagmod.diff_baseline(baseline, current)
            if deltas:
                for delta in deltas:
                    print(f"baseline delta: {delta}", file=sys.stderr)
                print(
                    f"{len(deltas)} precision delta(s) vs {args.baseline} — "
                    "fix the regression or update the baseline explicitly",
                    file=sys.stderr,
                )
                baseline_rc = 1
    if failures:
        print(
            f"{failures} workload(s) have dynamically confirmed races with "
            "no static warning (soundness violation)"
        )
        return 1
    if args.strict and warnings_emitted:
        print(f"strict mode: {warnings_emitted} static warning(s) emitted")
        return 1
    return baseline_rc


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-tools",
        description="Capture, detect, enumerate and explore with ParaMount.",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error", "critical"),
        default=None,
        help="root log level for the 'repro' logger hierarchy",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="increase log verbosity (-v info, -vv debug); "
        "ignored when --log-level is given",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads").set_defaults(
        func=_cmd_list
    )

    p = sub.add_parser("run", help="run a workload and optionally save its trace")
    p.add_argument("workload")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--stickiness", type=float, default=0.0)
    p.add_argument("--out", help="write the observed trace as JSON")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("detect", help="run a detector over a trace")
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--trace", help="path to a saved trace JSON")
    src.add_argument("--workload", help="capture a fresh trace of this workload")
    p.add_argument(
        "--detector",
        choices=("paramount", "rv", "fasttrack"),
        default="paramount",
    )
    p.add_argument(
        "--subroutine",
        choices=("lexical", "lexical-fast", "lexical-packed", "level-space", "bfs", "dfs", "squire"),
        default="lexical",
        help="ParaMount's bounded subroutine",
    )
    p.add_argument(
        "--static-prune",
        action="store_true",
        help="skip variables the static MHP analysis proves race-free "
        "(paramount only; workload must be in the registry)",
    )
    p.add_argument(
        "--plan",
        choices=("auto", "full", "slice"),
        default="auto",
        help="detection-planner mode (paramount only): auto routes "
        "provably structured predicates to the slicing fast paths, full "
        "disables planning (baseline), slice demands a fast path and "
        "fails on arbitrary predicates",
    )
    p.set_defaults(func=_cmd_detect)

    p = sub.add_parser("capture-poset", help="capture a workload's poset")
    p.add_argument("workload")
    p.add_argument("--out", required=True)
    p.add_argument(
        "--raw",
        action="store_true",
        help="one event per access (default: merged event collections)",
    )
    p.set_defaults(func=_cmd_capture_poset)

    p = sub.add_parser("enumerate", help="enumerate a saved poset's states")
    p.add_argument("poset")
    p.add_argument(
        "--algorithm",
        "--subroutine",
        choices=("lexical", "lexical-fast", "lexical-packed", "level-space", "bfs", "dfs", "squire"),
        default="lexical",
        help="sequential (sub)routine; lexical-fast is the tuned loop, lexical-packed the flat-table kernels, level-space the bounded-memory level traversal",
    )
    p.add_argument(
        "--paramount",
        action="store_true",
        help="partition with ParaMount and model 1/2/4/8 workers",
    )
    p.add_argument(
        "--schedule",
        choices=("fifo", "largest", "split", "split-steal", "adaptive"),
        default="split-steal",
        help="task schedule for --paramount: fifo is the pre-scheduling "
        "behavior; split-steal (default) splits oversized intervals and "
        "dispatches largest-first with work stealing",
    )
    p.add_argument(
        "--resume",
        metavar="JOURNAL",
        help="checkpoint journal path: record finished intervals, and "
        "resume a previously killed run from it (requires --paramount)",
    )
    p.add_argument(
        "--faults",
        metavar="SPEC",
        help="inject deterministic faults, e.g. "
        "'seed=1,crash=0.1,slow=0.2,poison=3;7' (requires --paramount)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="run interval tasks on a resilient thread ladder with this "
        "many workers (requires --paramount)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=3,
        help="retry budget per interval task (default 3)",
    )
    p.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-task gather timeout in seconds for the resilient ladder",
    )
    p.add_argument(
        "--trace-out",
        metavar="TRACE.json",
        help="write a Chrome trace-event JSON of the run (open in "
        "Perfetto or chrome://tracing; requires --paramount)",
    )
    p.add_argument(
        "--metrics-out",
        metavar="METRICS.prom",
        help="write the run's metrics in Prometheus text format "
        "(requires --paramount)",
    )
    p.add_argument(
        "--progress",
        action="store_true",
        help="print a live one-line progress report to stderr "
        "(requires --paramount)",
    )
    p.add_argument(
        "--profile",
        nargs="?",
        const=100.0,
        type=float,
        default=None,
        metavar="HZ",
        help="attach the sampling profiler at HZ samples/s (default 100) "
        "and write PROFILE.speedscope.json + PROFILE.collapsed.txt at "
        "the end of the run (requires --paramount)",
    )
    p.add_argument(
        "--profile-out",
        metavar="PREFIX",
        default=None,
        help="output prefix for --profile artifacts (default 'profile')",
    )
    p.add_argument(
        "--http-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics, /healthz and /progress over HTTP for the "
        "duration of the run (0 = any free port); with --backend dist the "
        "endpoint is mounted on the coordinator and carries per-host "
        "series (requires --paramount)",
    )
    p.add_argument(
        "--backend",
        choices=("auto", "dist"),
        default="auto",
        help="task backend: auto (in-process, default) or dist — spawn "
        "--dist-workers local worker processes behind a fault-tolerant "
        "coordinator (requires --paramount)",
    )
    p.add_argument(
        "--dist-workers",
        type=int,
        default=2,
        help="worker processes for --backend dist (default 2)",
    )
    p.add_argument(
        "--lease-seconds",
        type=float,
        default=5.0,
        help="per-interval acknowledgement deadline for --backend dist; "
        "crashed/hung workers are detected within one lease period",
    )
    p.add_argument(
        "--wire-faults",
        metavar="SPEC",
        help="inject deterministic wire/process faults into the first "
        "dist worker, e.g. 'seed=1,drop_ack=0.2,kill_after=3' "
        "(requires --backend dist)",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="global wall-clock budget: stop dispatching intervals once "
        "it expires, drain in-flight ones, and return a partial result "
        "with complete=False (requires --paramount)",
    )
    p.set_defaults(func=_cmd_enumerate)

    p = sub.add_parser(
        "coordinator",
        help="serve a distributed enumeration to external workers",
    )
    p.add_argument("poset", help="path to a saved poset JSON")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument(
        "--algorithm",
        "--subroutine",
        choices=("lexical", "lexical-fast", "lexical-packed", "level-space", "bfs", "dfs", "squire"),
        default="lexical",
    )
    p.add_argument(
        "--schedule",
        choices=("fifo", "largest", "split", "split-steal", "adaptive"),
        default="split-steal",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="planned parallelism the schedule splits for (default 2)",
    )
    p.add_argument("--resume", metavar="JOURNAL", help="checkpoint journal path")
    p.add_argument("--lease-seconds", type=float, default=5.0)
    p.add_argument(
        "--worker-grace",
        type=float,
        default=30.0,
        help="seconds to wait for (re)connecting workers before degrading "
        "to in-process enumeration (default 30)",
    )
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS")
    p.add_argument("--trace-out", metavar="TRACE.json")
    p.add_argument("--metrics-out", metavar="METRICS.prom")
    p.add_argument("--progress", action="store_true")
    p.add_argument(
        "--http-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics, /healthz and /progress from the coordinator "
        "(0 = any free port)",
    )
    p.set_defaults(func=_cmd_coordinator)

    p = sub.add_parser(
        "worker", help="run an enumeration worker against a coordinator"
    )
    p.add_argument(
        "--connect", required=True, metavar="HOST:PORT", help="coordinator address"
    )
    p.add_argument("--name", help="worker name (default HOSTNAME-PID)")
    p.add_argument(
        "--poset",
        help="load this poset file instead of receiving it over the wire; "
        "its digest must match the coordinator's or the worker is "
        "rejected (stale-digest protection)",
    )
    p.add_argument(
        "--wire-faults",
        metavar="SPEC",
        help="deterministic wire/process fault plan, e.g. "
        "'seed=1,drop_ack=0.2,kill_after=3'",
    )
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser("profile", help="profile a saved poset's lattice")
    p.add_argument("poset")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "check",
        help="static race/deadlock analysis, cross-validated against the "
        "dynamic detectors",
    )
    p.add_argument("workloads", nargs="*", help="detection workload name(s)")
    p.add_argument("--all", action="store_true", help="check every detection workload")
    p.add_argument(
        "--static-only",
        action="store_true",
        help="skip the dynamic cross-validation run",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when any static warning is emitted (for CI)",
    )
    p.add_argument(
        "--mhp",
        action="store_true",
        help="also print the static MHP segment graph per workload",
    )
    p.add_argument(
        "--predicates",
        action="store_true",
        help="lint registered predicate declarations instead: classify "
        "each under its declared class and (unless --static-only) "
        "cross-validate every planner fast path against full enumeration; "
        "with --strict, exit nonzero on any demoted (unsound) declaration",
    )
    p.add_argument(
        "--adversarial",
        action="store_true",
        help="with --predicates: include the deliberately misdeclared "
        "predicate suite (they MUST be demoted; combined with --strict "
        "the exit status is expected nonzero)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "jsonl"),
        default="text",
        help="diagnostic output format: human text (default), one JSON "
        "document keyed by workload, or one JSON object per line",
    )
    p.add_argument(
        "--sarif",
        metavar="PATH",
        default=None,
        help="additionally write all diagnostics as a SARIF 2.1.0 report",
    )
    p.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="compare diagnostic fingerprints against this per-workload "
        "baseline JSON and exit nonzero on any delta",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="with --baseline: (re)write the baseline file instead of "
        "diffing against it",
    )
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("explore", help="multi-schedule race exploration")
    p.add_argument("workload")
    p.add_argument("--seeds", type=int, default=8)
    p.set_defaults(func=_cmd_explore)

    p = sub.add_parser("obs", help="observability artifact tools")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    r = obs_sub.add_parser(
        "render", help="summarize a Chrome trace-event JSON in the terminal"
    )
    r.add_argument("trace", help="path to a trace written by --trace-out")
    r.add_argument(
        "--top",
        type=int,
        default=5,
        help="how many slowest spans to list (default 5)",
    )
    r.set_defaults(func=_cmd_obs_render)
    r = obs_sub.add_parser(
        "report",
        help="post-run forensics: stragglers, per-host skew, degradation "
        "timeline, journal reconciliation",
    )
    r.add_argument("trace", help="path to a trace written by --trace-out")
    r.add_argument(
        "--journal",
        default=None,
        metavar="JOURNAL",
        help="checkpoint journal to reconcile committed intervals against "
        "(exit 1 on divergence)",
    )
    r.add_argument(
        "--k",
        type=float,
        default=3.0,
        help="straggler threshold multiplier over the p95 interval "
        "duration (default 3.0)",
    )
    r.set_defaults(func=_cmd_obs_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    from repro.util.log import configure_logging

    configure_logging(level=args.log_level, verbosity=args.verbose)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
