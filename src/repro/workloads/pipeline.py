"""Fork/join-structured detection workloads beyond Table 2.

The paper's benchmarks all use a flat fork/join shape (main forks every
worker directly), which a pairwise parent/child heuristic already orders
well.  These two programs exercise the structures that need a real
may-happen-in-parallel closure (:mod:`repro.staticcheck.mhp`):

``pipeline``
    Nested forks: main runs ``stage0`` to completion, then forks a
    coordinator that forks two concurrent stages.  ``stage0``'s unlocked
    write of ``Buf.a`` is happens-before ordered with ``stage1``'s read
    only *transitively* (join(stage0) → fork(coord) → fork(stage1)); the
    pre-MHP heuristic cannot see across the coordinator and reports a
    spurious static race on ``Buf.a``.  The two stages then race for real
    on ``Buf.result`` (one detection for every dynamic tool).

``phased``
    A serial fork/join loop: main forks the same phase body three times,
    joining each copy before forking the next.  The phase instance is
    *replicated* (one fork site, several dynamic threads), which the old
    heuristic flags as self-racing on ``Phase.acc``; the MHP analysis
    proves the re-forks serial and drops the warning.  Two tail threads
    then race for real on ``Phase.out``.

Neither program uses monitors, so the RV baseline completes and confirms
the same single real race (its sliced order sees fork/join edges, which
is all the ordering these programs rely on).
"""

from __future__ import annotations

from repro.runtime.ops import Compute, Fork, Join, Read, Write
from repro.runtime.program import Program, ThreadContext
from repro.workloads.base import DetectionExpectation, DetectionWorkload

__all__ = [
    "build_pipeline",
    "build_phased",
    "WORKLOAD_PIPELINE",
    "WORKLOAD_PHASED",
]


# --------------------------------------------------------------------- #
# pipeline: nested forks behind a join


def _stage0(ctx: ThreadContext):
    yield Compute(2)  # produce the buffer
    yield Write("Buf.a", 41)


def _stage1(ctx: ThreadContext):
    # Ordered behind _stage0 only through main's join and the coordinator
    # fork — a transitive chain, invisible to a pairwise heuristic.
    a = yield Read("Buf.a")
    yield Compute(3)
    yield Write("Buf.result", (a or 0) + 1)  # BUG: races with stage2


def _stage2(ctx: ThreadContext):
    yield Compute(3)
    yield Write("Buf.result", -1)  # BUG: races with stage1


def _coordinator(ctx: ThreadContext):
    s1 = yield Fork(_stage1, name="stage1")
    s2 = yield Fork(_stage2, name="stage2")
    yield Join(s1)
    yield Join(s2)


def _pipeline_main(ctx: ThreadContext):
    s0 = yield Fork(_stage0, name="stage0")
    yield Join(s0)
    c = yield Fork(_coordinator, name="coord")
    yield Join(c)
    yield Read("Buf.result")


def build_pipeline() -> Program:
    """The nested-fork pipeline program (5 threads)."""
    return Program(
        name="pipeline",
        main=_pipeline_main,
        max_threads=5,
        shared={},
        description="staged pipeline with nested forks and a result race",
    )


WORKLOAD_PIPELINE = DetectionWorkload(
    name="pipeline",
    build=build_pipeline,
    expected=DetectionExpectation(
        paramount=1, fasttrack=1, rv_detections=1, rv_status="ok"
    ),
    seed=4,
    description="nested forks; Buf.result raced by two stages",
)


# --------------------------------------------------------------------- #
# phased: a serial fork/join loop plus a real tail race


def _phase_worker(ctx: ThreadContext):
    acc = yield Read("Phase.acc")
    yield Compute(2)
    yield Write("Phase.acc", (acc or 0) + 1)


def _tail(ctx: ThreadContext):
    yield Compute(1)
    yield Write("Phase.out", ctx.tid)  # BUG: races with the other tail


def _phased_main(ctx: ThreadContext):
    for _ in range(3):
        k = yield Fork(_phase_worker, name="phase")
        yield Join(k)  # each copy joined before the next is forked
    t1 = yield Fork(_tail, name="tail1")
    t2 = yield Fork(_tail, name="tail2")
    yield Join(t1)
    yield Join(t2)
    yield Read("Phase.acc")


def build_phased() -> Program:
    """The serial-phases program (6 threads over its lifetime)."""
    return Program(
        name="phased",
        main=_phased_main,
        max_threads=6,
        shared={},
        description="serial fork/join phases with a racy tail pair",
    )


WORKLOAD_PHASED = DetectionWorkload(
    name="phased",
    build=build_phased,
    expected=DetectionExpectation(
        paramount=1, fasttrack=1, rv_detections=1, rv_status="ok"
    ),
    seed=4,
    description="fork/join loop (no race) plus Phase.out raced by two tails",
)
