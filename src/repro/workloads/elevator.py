"""The ``elevator`` benchmark — a discrete-event elevator simulator [33].

Three elevator cars poll a central, lock-protected controls object for
pending floor calls, move (updating their lock-protected position), and
``Sleep`` between polls.  The sleeps dominate the running time — the paper
notes "the benchmark elevator contains several sleep() function calls,
which dominate the overall running time, so its running time is almost the
same on different detectors" (its Base and detection times are all ~16 s in
Table 2).  Everything shared is protected: 0 detections for every tool.
"""

from __future__ import annotations

from repro.runtime.ops import Acquire, Fork, Join, Read, Release, Sleep, Write
from repro.runtime.program import Program, ThreadContext
from repro.workloads.base import DetectionExpectation, DetectionWorkload

__all__ = ["build_elevator", "WORKLOAD"]

_CARS = 3
_ROUNDS = 4
#: Virtual seconds slept per polling round (drives the Base column).
_POLL_SLEEP = 1.3


def _car(index: int):
    def body(ctx: ThreadContext):
        for _ in range(_ROUNDS):
            yield Acquire("Controls.lock")
            calls = yield Read("Controls.calls")
            if calls and len(calls) > 0:
                floor = calls[0]
                yield Write("Controls.calls", calls[1:])
                yield Write(f"Car{index}.target", floor)
            yield Release("Controls.lock")
            # Move towards the target, then idle until the next poll.
            yield Acquire("Controls.lock")
            pos = yield Read(f"Car{index}.pos")
            target = yield Read(f"Car{index}.target")
            if target is not None and pos != target:
                yield Write(f"Car{index}.pos", target)
            yield Release("Controls.lock")
            yield Sleep(_POLL_SLEEP)

    return body


def _main(ctx: ThreadContext):
    yield Acquire("Controls.lock")
    yield Write("Controls.calls", (2, 5, 7, 1, 3, 6))
    yield Release("Controls.lock")
    cars = []
    for i in range(_CARS):
        tid = yield Fork(_car(i), name=f"car{i}")
        cars.append(tid)
    for tid in cars:
        yield Join(tid)
    yield Acquire("Controls.lock")
    yield Read("Controls.calls")
    yield Release("Controls.lock")


def build_elevator() -> Program:
    """The Table 2 elevator simulator (3 cars + main = 4 threads).

    The Table 1 poset uses 11 cars (12 threads) via
    :func:`build_elevator_scaled`.
    """
    return Program(
        name="elevator",
        main=_main,
        max_threads=_CARS + 1,
        shared={f"Car{i}.pos": 0 for i in range(_CARS)},
        description="lock-protected elevator controls with polling sleeps",
    )


def build_elevator_scaled(
    cars: int, rounds: int, moves_per_round: int = 2
) -> Program:
    """Parameterized variant used to regenerate the Table 1 poset (n=12)."""

    def main(ctx: ThreadContext):
        yield Acquire("Controls.lock")
        yield Write("Controls.calls", tuple(range(cars * rounds)))
        yield Release("Controls.lock")
        tids = []
        for i in range(cars):
            tid = yield Fork(
                _scaled_car(i, rounds, moves_per_round), name=f"car{i}"
            )
            tids.append(tid)
        for tid in tids:
            yield Join(tid)

    shared = {f"Car{i}.pos": 0 for i in range(cars)}
    return Program(
        name="elevator",
        main=main,
        max_threads=cars + 1,
        shared=shared,
        description="scaled elevator simulator",
    )


def _scaled_car(index: int, rounds: int, moves_per_round: int = 2):
    def body(ctx: ThreadContext):
        for step in range(rounds):
            yield Acquire("Controls.lock")
            calls = yield Read("Controls.calls")
            if calls:
                yield Write("Controls.calls", calls[1:])
            yield Release("Controls.lock")
            # A few unsynchronized car-local movement events per round;
            # their count tunes the 12-thread raw lattice's width/size so
            # the poset stays Python-enumerable while still exceeding the
            # modeled heap for the sequential BFS (DESIGN.md §3).
            for move in range(moves_per_round):
                yield Write(f"Car{index}.pos", step * moves_per_round + move)

    return body


WORKLOAD = DetectionWorkload(
    name="elevator",
    build=build_elevator,
    expected=DetectionExpectation(
        paramount=0, fasttrack=0, rv_detections=0, rv_status="ok"
    ),
    seed=4,
    description="sleep-dominated discrete-event simulator",
)
