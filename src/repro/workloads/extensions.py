"""Straggler extensions of detection workloads' posets.

The static Theorem-2 partition bounds parallel wall-clock by its largest
interval, and a skewed poset concentrates nearly all work in a handful of
intervals.  These extensions append an extra thread of events to a
detection workload's raw access poset in two calibrated shapes, giving
the scheduling and distribution benchmarks a controllable imbalance knob:

* ``"skewed"`` — the extra thread's events are sync-free local events:
  each one's ``Gmin`` is tiny while its ``Gbnd`` covers the whole base
  poset, so it owns a giant Figure-6a-style interval (the straggler the
  split/steal/re-dispatch machinery exists for);
* ``"fair"`` — the same number of extra events, but each synchronizes
  with every base thread, so their intervals stay near-unit-size and the
  partition remains balanced (the control case).

Originally grown inside ``benchmarks/bench_interval_scheduling.py``; now
shared with the distributed-scaling benchmark and the dist recovery
tests.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.errors import WorkloadError
from repro.poset.event import INTERNAL, Event
from repro.poset.poset import Poset

__all__ = ["EXTRA_EVENTS", "extended_poset"]

#: Default straggler events appended per workload — sized so the skewed
#: raytracer poset stays tractable (each sync-free event multiplies the
#: state count by roughly the base lattice size).
EXTRA_EVENTS = {"sor": 4, "raytracer": 1}

_cache: Dict[Tuple[str, str, int], Poset] = {}


def extended_poset(
    name: str, extension: str, extra_events: Optional[int] = None
) -> Poset:
    """The workload's raw access poset plus a straggler thread.

    ``name`` is a detection workload (``"sor"``, ``"raytracer"``, …);
    ``extension`` is ``"skewed"`` or ``"fair"``; ``extra_events``
    overrides the calibrated :data:`EXTRA_EVENTS` count.  Results are
    cached per configuration — workload traces are deterministic, so the
    poset (and its checkpoint digest) is stable across calls.
    """
    from repro.detector.hb import events_from_trace
    from repro.workloads.registry import DETECTION_WORKLOADS

    if extension not in ("skewed", "fair"):
        raise WorkloadError(
            f"unknown extension {extension!r}: expected 'skewed' or 'fair'"
        )
    if name not in DETECTION_WORKLOADS:
        raise WorkloadError(f"unknown detection workload {name!r}")
    count = extra_events if extra_events is not None else EXTRA_EVENTS.get(name)
    if count is None:
        raise WorkloadError(
            f"no calibrated straggler count for {name!r}; pass extra_events"
        )
    key = (name, extension, count)
    if key not in _cache:
        trace = DETECTION_WORKLOADS[name].trace()
        events = events_from_trace(trace, merge_collections=False)
        n = trace.num_threads
        chains = defaultdict(list)
        for event in events:
            # widen every clock for the extra thread's coordinate
            chains[event.tid].append(replace(event, vc=tuple(event.vc) + (0,)))
        lengths = tuple(len(chains.get(t, [])) for t in range(n))
        extra = []
        for k in range(1, count + 1):
            if extension == "skewed":
                vc = (0,) * n + (k,)  # sync-free: Gmin is the unit cut
            else:
                vc = lengths + (k,)  # joined with every base thread's end
            extra.append(Event(tid=n, idx=k, vc=vc, kind=INTERNAL))
        _cache[key] = Poset(
            [chains.get(t, []) for t in range(n)] + [extra],
            insertion=[event.eid for event in events]
            + [event.eid for event in extra],
        )
    return _cache[key]
