"""The ``raytracer`` benchmark — Java Grande 3-D ray tracer [33].

Renderer threads shade disjoint scanline variables with *no*
synchronization (embarrassingly parallel), then fold their partial sums
into a shared ``Scene.checksum`` without holding a lock — the benchmark's
well-known real race (ParaMount 1, FastTrack 1).

The long unsynchronized per-thread access chains are exactly what blows up
an enumerator that stores intermediate global states: the raw-access poset
is a product of long independent chains, so the RV baseline's BFS exhausts
its memory budget long before it reaches the (late) checksum states —
reproducing Table 2's ``o.o.m.`` with no race reported ("the field with
data races is not shown in the candidate list").  ParaMount's
event-collection poset collapses each renderer to a couple of collections,
so its detector finishes in milliseconds while using a tiny fraction of
the memory (the paper's "our detector uses only 25% of the system
memory").
"""

from __future__ import annotations

from repro.runtime.ops import Compute, Fork, Join, Read, Write
from repro.runtime.program import Program, ThreadContext
from repro.workloads.base import DetectionExpectation, DetectionWorkload

__all__ = ["build_raytracer", "WORKLOAD"]

_RENDERERS = 3
_ROWS_PER_RENDERER = 14


def _renderer(index: int):
    def body(ctx: ThreadContext):
        for r in range(_ROWS_PER_RENDERER):
            row = f"Image.row{index * _ROWS_PER_RENDERER + r}"
            yield Compute(8)  # trace rays for this scanline
            yield Write(row, (index + 1) * 1000 + r)
            yield Read(row)  # accumulate into the local partial sum
        # BUG: fold the partial checksum into the scene total unlocked.
        total = yield Read("Scene.checksum")
        yield Compute(2)
        yield Write("Scene.checksum", (total or 0) + index + 1)

    return body


def _main(ctx: ThreadContext):
    yield Write("Scene.checksum", 0, is_init=True)
    tids = []
    for i in range(_RENDERERS):
        tid = yield Fork(_renderer(i), name=f"render{i}")
        tids.append(tid)
    # The main thread renders its own share of scanlines too (the Java
    # Grande driver participates in the render).
    yield from _renderer(_RENDERERS)(ctx)
    for tid in tids:
        yield Join(tid)
    yield Read("Scene.checksum")


def build_raytracer() -> Program:
    """The Table 2 raytracer (4 threads)."""
    return Program(
        name="raytracer",
        main=_main,
        max_threads=_RENDERERS + 1,
        shared={},
        description="parallel renderer with an unlocked checksum fold",
    )


WORKLOAD = DetectionWorkload(
    name="raytracer",
    build=build_raytracer,
    expected=DetectionExpectation(
        paramount=1, fasttrack=1, rv_detections=0, rv_status="o.o.m."
    ),
    seed=6,
    description="checksum race; RV baseline exhausts memory",
)
