"""The ``arraylist1`` / ``arraylist2`` benchmarks.

``arraylist1`` drives a *non-thread-safe* list from multiple threads: the
``ArrayList.size``, ``ArrayList.elems`` and ``ArrayList.modcount`` fields
are accessed with no synchronization — three real races (Table 2:
ParaMount 3, FastTrack 3).  The test driver's own ``Driver.tasks`` table is
initialized by a worker and published under a lock: benign, ordered under
full HB, but racy under RV's sliced order — RV's fourth report, the false
alarm the paper describes ("the reported variable is located in the test
driver and its data race is benign").

After the racy phase both variants run a producer/consumer hand-off on a
monitor (``wait``/``notify``) — which the modeled RV baseline does not
support.  RV therefore detects on the prefix (getting its 4 reports in
``arraylist1``, matching the paper's footnote "acquired before the
exception is thrown") and ends with status ``exception``.

``arraylist2`` wraps every access in ``ArrayList.lock`` (the thread-safe
library container): no races for any tool; RV still ends in ``exception``.
"""

from __future__ import annotations

from repro.runtime.ops import (
    Acquire,
    Compute,
    Fork,
    Join,
    Notify,
    Read,
    Release,
    Wait,
    Write,
)
from repro.runtime.program import Program, ThreadContext
from repro.workloads.base import DetectionExpectation, DetectionWorkload

__all__ = ["build_arraylist", "WORKLOAD_ARRAYLIST1", "WORKLOAD_ARRAYLIST2"]

_OPS_PER_WORKER = 3


def _list_add(safe: bool):
    """One ``add`` call: read-modify-write of the three list fields."""

    def ops(ctx: ThreadContext):
        if safe:
            yield Acquire("ArrayList.lock")
        size = yield Read("ArrayList.size")
        yield Read("ArrayList.elems")
        yield Write("ArrayList.elems", f"elem-{ctx.tid}")
        yield Write("ArrayList.size", (size or 0) + 1)
        mod = yield Read("ArrayList.modcount")
        yield Write("ArrayList.modcount", (mod or 0) + 1)
        if safe:
            yield Release("ArrayList.lock")

    return ops


def _worker(safe: bool, publisher: bool):
    def body(ctx: ThreadContext):
        if publisher:
            # Test-driver state: initialized here, published under the
            # driver lock — benign, but RV's sliced order flags it.
            yield Write("Driver.tasks", _OPS_PER_WORKER, is_init=True)
            yield Acquire("Driver.lock")
            yield Write("Driver.ready", True)
            yield Release("Driver.lock")
        else:
            # Consume the driver configuration under the driver lock.
            while True:
                yield Acquire("Driver.lock")
                ready = yield Read("Driver.ready")
                if ready:
                    yield Read("Driver.tasks")
                yield Release("Driver.lock")
                if ready:
                    break
        for _ in range(_OPS_PER_WORKER):
            yield from _list_add(safe)(ctx)
            yield Compute(2)

    return body


def _consumer(ctx: ThreadContext):
    """Phase 2: monitor-based hand-off (unsupported by the RV baseline)."""
    yield Acquire("Handoff.mon")
    while True:
        item = yield Read("Handoff.item")
        if item is not None:
            break
        yield Wait("Handoff.mon")
    yield Release("Handoff.mon")


def _make_main(safe: bool):
    def main(ctx: ThreadContext):
        w1 = yield Fork(_worker(safe, publisher=True), name="worker1")
        if safe:
            # The thread-safe driver awaits setup before starting the
            # second worker, so even the sliced order sees the driver
            # configuration as join-ordered (RV reports nothing here).
            yield Join(w1)
        w2 = yield Fork(_worker(safe, publisher=False), name="worker2")
        if not safe:
            yield Join(w1)
        yield Join(w2)
        # Phase 2: producer/consumer on a Java-style monitor.
        c = yield Fork(_consumer, name="consumer")
        yield Acquire("Handoff.mon")
        yield Write("Handoff.item", "payload")
        yield Notify("Handoff.mon")
        yield Release("Handoff.mon")
        yield Join(c)

    return main


def build_arraylist(safe: bool) -> Program:
    """The array-list benchmark program (4 threads)."""
    return Program(
        name="arraylist2" if safe else "arraylist1",
        main=_make_main(safe),
        max_threads=4,
        shared={"Handoff.item": None, "Driver.ready": False},
        description="shared list driver with a monitor hand-off phase",
    )


WORKLOAD_ARRAYLIST1 = DetectionWorkload(
    name="arraylist1",
    build=lambda: build_arraylist(safe=False),
    expected=DetectionExpectation(
        paramount=3, fasttrack=3, rv_detections=4, rv_status="exception"
    ),
    seed=1,
    benign_vars=frozenset({"Driver.tasks"}),
    description="non-thread-safe list driven concurrently",
)

WORKLOAD_ARRAYLIST2 = DetectionWorkload(
    name="arraylist2",
    build=lambda: build_arraylist(safe=True),
    expected=DetectionExpectation(
        paramount=0, fasttrack=0, rv_detections=None, rv_status="exception"
    ),
    seed=1,
    benign_vars=frozenset({"Driver.tasks"}),
    description="thread-safe library list",
)
