"""The ``set (faulty)`` / ``set (correct)`` benchmarks [15].

A concurrent set over a linked list protected by a hand-over-hand locking
discipline.  Race reporting is at *field granularity* ("the variable
``next`` of a node has data races"), matching how the real tools aggregate
instances, so the shared variables are the fields ``Node.value``,
``Node.next`` and ``Set.size``.

Roles (4 threads):

* ``adder1`` creates the first node — initializing ``Node.value``,
  ``Node.next`` and the lazily-created ``Set.size`` *outside* the lock (no
  other thread can reference a fresh node) — then links it under the lock.
* ``adder2`` creates a second node (initializing its ``next`` field outside
  the lock), spins until the set is non-empty, then links under the lock.
  At field granularity its init write to ``Node.next`` is genuinely
  HB-concurrent with ``adder1``'s — an initialization race on the field.
* ``remover`` spins until the set is non-empty and unlinks the head under
  the lock.  In the **faulty** variant it first performs an optimistic
  *unlocked* traversal read of ``Node.next`` — the paper's bug, racing with
  the adders' locked link writes.

Expected Table 2 outcomes:

* faulty — ParaMount 1 (``Node.next``, the real race; init accesses
  filtered per §5.2), FastTrack 1 (same field), RV 3 (adds the benign
  ``Node.value``/``Set.size`` init races visible under its sliced order);
* correct — ParaMount 0, FastTrack 1 (the ``Node.next`` initialization
  race — the paper's false alarm: "the variable next is initialized
  without the protection of locks; consequently, FastTrack reports the
  variable even if it is well protected in subsequent accesses"), RV 3.
"""

from __future__ import annotations

from repro.runtime.ops import Acquire, Compute, Fork, Join, Read, Release, Write
from repro.runtime.program import Program, ThreadContext
from repro.workloads.base import DetectionExpectation, DetectionWorkload

__all__ = ["build_set", "WORKLOAD_FAULTY", "WORKLOAD_CORRECT"]


def _spin_until_nonempty(ctx: ThreadContext):
    """Locked polling of ``Set.head`` until the set becomes non-empty.

    Orders everything the spinning thread does afterwards behind the
    publishing adder's lock release (full happened-before), while leaving
    it *weakly* concurrent — exactly the split the detectors disagree on.
    """
    while True:
        yield Acquire("Set.lock")
        head = yield Read("Set.head")
        yield Release("Set.lock")
        if head is not None:
            return head


def _adder1(ctx: ThreadContext):
    yield Write("Node.value", 100, is_init=True)
    yield Write("Node.next", None, is_init=True)
    yield Write("Set.size", 0, is_init=True)  # lazy set bookkeeping
    # Hand-over-hand: the node's link field is guarded by the node lock,
    # the head pointer and bookkeeping by the set lock.
    yield Acquire("Node.lock")
    yield Write("Node.next", None)  # splice: node.next = successor
    yield Release("Node.lock")
    yield Acquire("Set.lock")
    head = yield Read("Set.head")
    yield Write("Set.head", "node-1")
    size = yield Read("Set.size")
    yield Write("Set.size", (size or 0) + 1)
    yield Release("Set.lock")


def _adder2(ctx: ThreadContext):
    yield Write("Node.next", None, is_init=True)
    head_snapshot = yield from _spin_until_nonempty(ctx)
    yield Acquire("Node.lock")
    yield Write("Node.next", head_snapshot)  # splice behind current head
    yield Release("Node.lock")
    yield Acquire("Set.lock")
    yield Write("Set.head", "node-2")
    size = yield Read("Set.size")
    yield Write("Set.size", size + 1)
    yield Release("Set.lock")


def _remover(faulty: bool):
    def body(ctx: ThreadContext):
        if faulty:
            # BUG: optimistic traversal reads the successor pointer with no
            # lock held — races with a concurrent adder's locked splice.
            yield Read("Node.next")
            yield Compute(2)
        yield from _spin_until_nonempty(ctx)
        yield Acquire("Node.lock")
        yield Read("Node.value")  # inspect the candidate node
        nxt = yield Read("Node.next")  # locked traversal step
        yield Release("Node.lock")
        yield Acquire("Set.lock")
        yield Read("Set.head")
        yield Write("Set.head", nxt)  # unlink the head node
        size = yield Read("Set.size")
        yield Write("Set.size", size - 1)
        yield Release("Set.lock")

    return body


def _make_main(faulty: bool):
    def main(ctx: ThreadContext):
        a1 = yield Fork(_adder1, name="adder1")
        a2 = yield Fork(_adder2, name="adder2")
        r = yield Fork(_remover(faulty), name="remover")
        yield Join(a1)
        yield Join(a2)
        yield Join(r)

    return main


def build_set(faulty: bool) -> Program:
    """The concurrent-set program (4 threads, field-granularity variables)."""
    return Program(
        name="set (faulty)" if faulty else "set (correct)",
        main=_make_main(faulty),
        max_threads=4,
        shared={"Set.head": None},
        description="hand-over-hand locked linked-list set",
    )


WORKLOAD_FAULTY = DetectionWorkload(
    name="set (faulty)",
    build=lambda: build_set(faulty=True),
    expected=DetectionExpectation(
        paramount=1, fasttrack=1, rv_detections=3, rv_status="ok"
    ),
    seed=5,
    benign_vars=frozenset({"Node.value", "Set.size"}),
    description="unlocked traversal read of Node.next",
)

WORKLOAD_CORRECT = DetectionWorkload(
    name="set (correct)",
    build=lambda: build_set(faulty=False),
    expected=DetectionExpectation(
        paramount=0, fasttrack=1, rv_detections=3, rv_status="ok"
    ),
    seed=5,
    benign_vars=frozenset({"Node.value", "Node.next", "Set.size"}),
    description="fully locked traversal; init-only reports remain",
)
