"""The ``d-*`` benchmark family: random distributed computations.

The paper's ``d-300``, ``d-500`` and ``d-10K`` are randomly generated
posets over 10 processes with 300 / 500 / 10,000 events and 42 M / 237 M /
4,962 M global states.  Pure-Python per-state cost is ~10³× the paper's
Java testbed, so the reproduction keeps the process count and the relative
ordering of the three sizes while scaling the event counts so the state
counts land in the 10⁴–10⁵ range (DESIGN.md §3).  The message
probabilities below were calibrated offline against the exact state counts
recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from repro.poset.poset import Poset
from repro.poset.random_posets import RandomComputationSpec, random_computation

__all__ = ["D_SPECS", "build_d_poset"]

#: name -> (processes, events, message probability, seed).
D_SPECS = {
    "d-300": RandomComputationSpec(
        num_processes=10, num_events=150, message_prob=1.0, seed=42
    ),
    "d-500": RandomComputationSpec(
        num_processes=10, num_events=200, message_prob=1.0, seed=42
    ),
    "d-10k": RandomComputationSpec(
        num_processes=10, num_events=300, message_prob=1.0, seed=42
    ),
}


def build_d_poset(name: str) -> Poset:
    """Build one of the scaled ``d-*`` posets by name."""
    try:
        spec = D_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown d-* benchmark {name!r}; expected one of {sorted(D_SPECS)}"
        ) from None
    return random_computation(spec)
