"""The ``tsp`` benchmark — a parallel traveling-salesman solver [33].

Worker threads pull branch-and-bound subproblems from a lock-protected
queue filled by the master, who signals availability on a monitor — the
``wait``/``notify`` usage that makes the modeled RV baseline bail out
before reaching any race (Table 2: "–"/exception).

The known benign race: workers *read* the current best tour cost without
the lock as a pruning shortcut (``Tour.minCost``), while updates are
properly locked — one reported variable for ParaMount and FastTrack.
"""

from __future__ import annotations

from repro.runtime.ops import (
    Acquire,
    Compute,
    Fork,
    Join,
    Notify,
    NotifyAll,
    Read,
    Release,
    Wait,
    Write,
)
from repro.runtime.program import Program, ThreadContext
from repro.workloads.base import DetectionExpectation, DetectionWorkload

__all__ = ["build_tsp", "WORKLOAD"]


def _worker(tasks_per_worker: int):
    def body(ctx: ThreadContext):
        # Wait until the master has filled the work queue.
        yield Acquire("Queue.mon")
        while True:
            filled = yield Read("Queue.filled")
            if filled:
                break
            yield Wait("Queue.mon")
        yield Release("Queue.mon")
        for _ in range(tasks_per_worker):
            # Pull a subproblem.
            yield Acquire("Queue.lock")
            idx = yield Read("Queue.next")
            yield Write("Queue.next", (idx or 0) + 1)
            yield Release("Queue.lock")
            # Branch and bound: the pruning shortcut reads the bound
            # WITHOUT the lock — the benchmark's known benign race.
            bound = yield Read("Tour.minCost")
            yield Compute(6)  # expand the subtree
            cost = (idx or 0) * 7 + ctx.tid  # deterministic pseudo-cost
            if bound is None or cost < bound:
                yield Acquire("Tour.lock")
                current = yield Read("Tour.minCost")
                if current is None or cost < current:
                    yield Write("Tour.minCost", cost)
                    yield Write("Tour.best", f"tour-{ctx.tid}-{idx}")
                yield Release("Tour.lock")

    return body


def _make_main(workers: int, tasks_per_worker: int):
    def main(ctx: ThreadContext):
        tids = []
        for i in range(workers):
            tid = yield Fork(_worker(tasks_per_worker), name=f"solver{i}")
            tids.append(tid)
        # Fill the queue, then wake all waiting workers.
        yield Acquire("Queue.lock")
        yield Write("Queue.next", 0)
        yield Write("Queue.size", workers * tasks_per_worker)
        yield Release("Queue.lock")
        yield Acquire("Queue.mon")
        yield Write("Queue.filled", True)
        yield NotifyAll("Queue.mon")
        yield Release("Queue.mon")
        for tid in tids:
            yield Join(tid)
        yield Acquire("Tour.lock")
        yield Read("Tour.best")
        yield Release("Tour.lock")

    return main


def build_tsp(workers: int = 3, tasks_per_worker: int = 2) -> Program:
    """The tsp solver (``workers + 1`` threads; Table 2 uses 4)."""
    return Program(
        name="tsp",
        main=_make_main(workers, tasks_per_worker),
        max_threads=workers + 1,
        shared={"Queue.filled": False},
        description="branch-and-bound with an unlocked bound-pruning read",
    )


WORKLOAD = DetectionWorkload(
    name="tsp",
    build=build_tsp,
    expected=DetectionExpectation(
        paramount=1, fasttrack=1, rv_detections=None, rv_status="exception"
    ),
    seed=3,
    benign_vars=frozenset({"Tour.minCost"}),
    description="benign unlocked read of the best-tour bound",
)
