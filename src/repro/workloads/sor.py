"""The ``sor`` benchmark — successive over-relaxation [33].

A red/black grid solver: worker threads update disjoint row variables and
meet at a lock-protected counting barrier between half-sweeps.  All shared
state is either thread-disjoint (rows) or lock-protected (the barrier), so
no detector reports anything (Table 2: 0 / 0 / 0); the benchmark's value is
exercising a lock-heavy, barrier-structured poset where RV's BFS still
finishes (it is one of the few programs RV completes, slowly).
"""

from __future__ import annotations

from repro.runtime.ops import Acquire, Compute, Fork, Join, Read, Release, Write
from repro.runtime.program import Program, ThreadContext
from repro.workloads.base import DetectionExpectation, DetectionWorkload

__all__ = ["build_sor", "WORKLOAD"]

_WORKERS = 3
_PHASES = 2
_ROWS_PER_WORKER = 2


def _barrier(ctx: ThreadContext, phase: int):
    """Lock-protected counting barrier (no monitor wait — the RV baseline
    must be able to finish this benchmark)."""
    yield Acquire("Barrier.lock")
    count = yield Read(f"Barrier.count{phase}")
    yield Write(f"Barrier.count{phase}", (count or 0) + 1)
    yield Release("Barrier.lock")
    while True:
        yield Acquire("Barrier.lock")
        count = yield Read(f"Barrier.count{phase}")
        yield Release("Barrier.lock")
        if count >= _WORKERS:
            return
        yield Compute(1)


def _worker(worker_index: int):
    def body(ctx: ThreadContext):
        for phase in range(_PHASES):
            # Red/black half-sweep over this worker's own rows.
            for r in range(_ROWS_PER_WORKER):
                row = f"Grid.row{worker_index * _ROWS_PER_WORKER + r}"
                v = yield Read(row)
                yield Compute(4)  # stencil arithmetic
                yield Write(row, (v or 0) + 1)
            yield from _barrier(ctx, phase)

    return body


def _main(ctx: ThreadContext):
    workers = []
    for i in range(_WORKERS):
        tid = yield Fork(_worker(i), name=f"sor{i}")
        workers.append(tid)
    for tid in workers:
        yield Join(tid)
    yield Read("Grid.row0")  # gather the result


def build_sor() -> Program:
    """The Table 2 ``sor`` program (4 threads)."""
    return Program(
        name="sor",
        main=_main,
        max_threads=4,
        shared={},
        description="red/black relaxation with a lock-based barrier",
    )


WORKLOAD = DetectionWorkload(
    name="sor",
    build=build_sor,
    expected=DetectionExpectation(
        paramount=0, fasttrack=0, rv_detections=0, rv_status="ok"
    ),
    seed=2,
    description="race-free scientific kernel",
)
