"""Workload registry: the paper's two benchmark suites, by name.

``DETECTION_WORKLOADS`` is Table 2's row order; ``ENUMERATION_WORKLOADS``
is Table 1's.  Scaled parameters (event counts, message probabilities) are
recorded in the individual modules; the exact per-poset state counts land
in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads import (
    arraylist,
    banking,
    elevator,
    hedc,
    nestedhelpers,
    pipeline,
    raytracer,
    sets,
    sor,
    tsp,
)
from repro.workloads.base import (
    DetectionWorkload,
    EnumerationWorkload,
    poset_from_program,
)
from repro.workloads.distributed import build_d_poset

__all__ = [
    "ALL_DETECTION_WORKLOADS",
    "DETECTION_WORKLOADS",
    "ENUMERATION_WORKLOADS",
    "EXTRA_DETECTION_WORKLOADS",
    "detection_workload",
    "enumeration_workload",
]

#: Table 2's benchmarks, in the paper's row order.
DETECTION_WORKLOADS: Dict[str, DetectionWorkload] = {
    w.name: w
    for w in (
        banking.WORKLOAD,
        sets.WORKLOAD_FAULTY,
        sets.WORKLOAD_CORRECT,
        arraylist.WORKLOAD_ARRAYLIST1,
        arraylist.WORKLOAD_ARRAYLIST2,
        sor.WORKLOAD,
        elevator.WORKLOAD,
        tsp.WORKLOAD,
        raytracer.WORKLOAD,
        hedc.WORKLOAD,
    )
}

#: Detection workloads beyond Table 2: fork/join structures (nested forks,
#: serial fork/join loops) added to exercise the MHP analysis, and
#: helper-heavy programs (nested-def thread bodies, name helpers, shared
#: generator helpers) added to exercise the interprocedural summaries.
#: They take part in cross-validation and the CLI but not in the Table 2
#: figures.
EXTRA_DETECTION_WORKLOADS: Dict[str, DetectionWorkload] = {
    w.name: w
    for w in (
        pipeline.WORKLOAD_PIPELINE,
        pipeline.WORKLOAD_PHASED,
        nestedhelpers.WORKLOAD_MAPREDUCE,
        nestedhelpers.WORKLOAD_LOCKFARM,
    )
}

#: Table 2 plus the extras — every workload the detectors can run on.
ALL_DETECTION_WORKLOADS: Dict[str, DetectionWorkload] = {
    **DETECTION_WORKLOADS,
    **EXTRA_DETECTION_WORKLOADS,
}


def _tsp_poset():
    """Table 1 ``tsp``: 8-thread solver trace, raw access events."""
    return poset_from_program(
        tsp.build_tsp(workers=7, tasks_per_worker=8), seed=42
    )


def _hedc_poset():
    """Table 1 ``hedc``: 12-thread crawler trace, raw access events."""
    return poset_from_program(
        hedc.build_hedc(workers=11, tasks_per_worker=1, racy_updates=1), seed=42
    )


def _elevator_poset():
    """Table 1 ``elevator``: 12-thread simulator trace, raw access events."""
    return poset_from_program(
        elevator.build_elevator_scaled(cars=11, rounds=1, moves_per_round=2), seed=42
    )


#: Table 1's benchmarks, in the paper's row order.
ENUMERATION_WORKLOADS: Dict[str, EnumerationWorkload] = {
    w.name: w
    for w in (
        EnumerationWorkload(
            name="d-300",
            threads=10,
            build_poset=lambda: build_d_poset("d-300"),
            bfs_oom_expected=False,
            description="random distributed computation (small)",
        ),
        EnumerationWorkload(
            name="d-500",
            threads=10,
            build_poset=lambda: build_d_poset("d-500"),
            bfs_oom_expected=False,
            description="random distributed computation (medium)",
        ),
        EnumerationWorkload(
            name="d-10k",
            threads=10,
            build_poset=lambda: build_d_poset("d-10k"),
            bfs_oom_expected=False,
            description="random distributed computation (large)",
        ),
        EnumerationWorkload(
            name="bank",
            threads=8,
            build_poset=lambda: banking.build_bank_enumeration(
                threads=8, chain_length=4
            ),
            bfs_oom_expected=True,
            description="unsynchronized error pattern: full grid lattice",
        ),
        EnumerationWorkload(
            name="tsp",
            threads=8,
            build_poset=_tsp_poset,
            bfs_oom_expected=False,
            description="heavily synchronized solver trace",
        ),
        EnumerationWorkload(
            name="hedc",
            threads=12,
            build_poset=_hedc_poset,
            bfs_oom_expected=True,
            description="task-pool crawler trace",
        ),
        EnumerationWorkload(
            name="elevator",
            threads=12,
            build_poset=_elevator_poset,
            bfs_oom_expected=True,
            description="discrete-event simulator trace",
        ),
    )
}


def detection_workload(name: str) -> DetectionWorkload:
    """Look up a detection workload (Table 2 or extra) by name."""
    try:
        return ALL_DETECTION_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown detection workload {name!r}; "
            f"expected one of {sorted(ALL_DETECTION_WORKLOADS)}"
        ) from None


def enumeration_workload(name: str) -> EnumerationWorkload:
    """Look up a Table 1 workload by name."""
    try:
        return ENUMERATION_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown enumeration workload {name!r}; "
            f"expected one of {sorted(ENUMERATION_WORKLOADS)}"
        ) from None
