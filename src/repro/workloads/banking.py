"""The ``banking`` benchmark — a typical concurrent error pattern [8].

Three teller threads process transfers between five accounts.  Account
balances and the running total are correctly protected by the bank's lock;
the *audit counter*, however, is updated with an unprotected
read-modify-write — the classic check-then-act bug, and the single data
race every detector reports (Table 2: 1 / 1 / 1).

A separate, fully unsynchronized variant (:func:`build_bank_enumeration`)
reproduces the Table 1 ``bank`` poset: ``n`` independent per-thread chains
whose lattice is the full grid — ``(L+1)^n`` global states (the paper's
815 million is exactly ``13⁸``), the worst case for BFS memory.
"""

from __future__ import annotations

from repro.poset.builder import PosetBuilder
from repro.poset.poset import Poset
from repro.runtime.ops import Acquire, Compute, Fork, Join, Read, Release, Write
from repro.runtime.program import Program, ThreadContext
from repro.workloads.base import DetectionExpectation, DetectionWorkload

__all__ = ["build_banking", "build_bank_enumeration", "WORKLOAD"]

_ACCOUNTS = 5
_ROUNDS = 3


def _teller(ctx: ThreadContext):
    """One teller: locked transfers plus an unprotected audit increment."""
    for _ in range(_ROUNDS):
        src = ctx.rng.randint(0, _ACCOUNTS - 1)
        dst = ctx.rng.randint(0, _ACCOUNTS - 1)
        amount = ctx.rng.randint(1, 50)
        yield Acquire("bank.lock")
        a = yield Read(f"acct{src}")
        b = yield Read(f"acct{dst}")
        yield Write(f"acct{src}", a - amount)
        yield Write(f"acct{dst}", b + amount)
        t = yield Read("total")
        yield Write("total", t)  # invariant: transfers keep the total fixed
        yield Release("bank.lock")
        # BUG: audit counter updated without holding any lock.
        audit = yield Read("audit")
        yield Compute(3)  # widen the race window
        yield Write("audit", audit + 1)


def _main(ctx: ThreadContext):
    tellers = []
    for i in range(3):
        tid = yield Fork(_teller, name=f"teller{i}")
        tellers.append(tid)
    for tid in tellers:
        yield Join(tid)
    yield Acquire("bank.lock")
    yield Read("total")
    yield Release("bank.lock")


def build_banking() -> Program:
    """The Table 2 ``banking`` program (4 threads, 7 shared variables)."""
    shared = {f"acct{i}": 100 for i in range(_ACCOUNTS)}
    shared["total"] = 100 * _ACCOUNTS
    shared["audit"] = 0
    return Program(
        name="banking",
        main=_main,
        max_threads=4,
        shared=shared,
        description="lock-protected transfers with an unprotected audit counter",
    )


def build_bank_enumeration(threads: int = 8, chain_length: int = 3) -> Poset:
    """The Table 1 ``bank`` poset: fully unsynchronized accesses.

    ``threads`` independent chains of ``chain_length`` events each — the
    lattice is the complete grid with ``(chain_length+1)^threads`` states
    and exponentially wide middle levels (the BFS o.o.m. driver).
    """
    builder = PosetBuilder(threads)
    for _ in range(chain_length):
        for tid in range(threads):
            builder.append(tid, kind="write", obj="balance")
    return builder.build()


WORKLOAD = DetectionWorkload(
    name="banking",
    build=build_banking,
    expected=DetectionExpectation(
        paramount=1, fasttrack=1, rv_detections=1, rv_status="ok"
    ),
    seed=11,
    description="3 tellers; audit counter race",
)
