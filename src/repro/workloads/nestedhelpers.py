"""Helper-heavy detection workloads for the interprocedural extractor.

The Table-2 programs define every thread body at module level, so the
pre-interprocedural extractor (nested ``def``\\ s and helper calls modeled
as worst-case UNKNOWN) analyzes them fully.  These two programs do the
opposite — thread bodies are nested ``def``\\ s closed over main's locals,
variable names come from nested pure helper functions, and shared helper
generators are inlined via ``yield from`` — so they measure exactly what
the interprocedural summaries (:mod:`repro.staticcheck.extract` with
``interprocedural=True``) buy:

``mapreduce``
    main nests a ``part(i)`` name helper, a ``mapper`` generator body
    (locked partition update through a shared module-level ``_drain``
    generator, then an **unlocked** scratch write — the one real race)
    and a ``reducer`` body with its own inner ``gather`` generator.
    Legacy mode cannot resolve any of the three nested defs: every fork
    target is an unanalyzed thread and the report drowns in EX001/EX002
    notes.  Interprocedural mode analyzes all of them and reports exactly
    the scratch race.

``lockfarm``
    main nests a ``cell(i)`` name helper and a ``worker`` body that
    touches every cell under one lock; two workers are forked from a
    single loop fork site (a replicated instance).  Fully lock-protected
    and join-ordered: interprocedural mode proves it warning-free, while
    legacy mode reports the unresolved nested defs.

Neither program uses monitors, so the RV baseline completes; ``lockfarm``
is race-free for every dynamic tool, ``mapreduce`` has one confirmed
race (``MR.scratch``).
"""

from __future__ import annotations

from repro.runtime.ops import Acquire, Compute, Fork, Join, Read, Release, Write
from repro.runtime.program import Program, ThreadContext
from repro.workloads.base import DetectionExpectation, DetectionWorkload

__all__ = [
    "build_lockfarm",
    "build_mapreduce",
    "WORKLOAD_LOCKFARM",
    "WORKLOAD_MAPREDUCE",
]


# --------------------------------------------------------------------- #
# a module-level shared helper generator, inlined via `yield from`


def _drain(name):
    """Read one shared slot and hand the value back to the caller."""
    v = yield Read(name)
    return v


# --------------------------------------------------------------------- #
# mapreduce: nested mapper/reducer bodies with a scratch race


def _mapreduce_main(ctx: ThreadContext):
    def part(i):
        return f"MR.part{i}"

    def mapper(mctx):
        yield Acquire("MR.lock")
        v = yield from _drain(part(0))
        yield Write(part(0), (v or 0) + 1)
        yield Release("MR.lock")
        yield Compute(1)
        yield Write("MR.scratch", 1)  # BUG: unlocked, races with the twin

    def reducer(rctx):
        def gather(i):
            v = yield Read(part(i))
            return v

        total = yield from gather(0)
        yield Write("MR.result", (total or 0))
        yield Read("MR.scratch")

    m1 = yield Fork(mapper, name="map1")
    m2 = yield Fork(mapper, name="map2")
    yield Join(m1)
    yield Join(m2)
    r = yield Fork(reducer, name="reduce")
    yield Join(r)
    yield Read("MR.result")


def build_mapreduce() -> Program:
    """The nested mapper/reducer program (4 threads)."""
    return Program(
        name="mapreduce",
        main=_mapreduce_main,
        max_threads=4,
        shared={},
        description="nested-def mappers + reducer; MR.scratch raced unlocked",
    )


WORKLOAD_MAPREDUCE = DetectionWorkload(
    name="mapreduce",
    build=build_mapreduce,
    expected=DetectionExpectation(
        paramount=1, fasttrack=1, rv_detections=1, rv_status="ok"
    ),
    seed=3,
    description="closure-heavy map/reduce; one unlocked scratch race",
)


# --------------------------------------------------------------------- #
# lockfarm: nested worker bodies, fully lock-protected (race-free)


def _lockfarm_main(ctx: ThreadContext):
    width = 3

    def cell(i):
        return f"Farm.cell{i}"

    def worker(wctx):
        yield Acquire("Farm.lock")
        for i in range(width):
            v = yield Read(cell(i))
            yield Write(cell(i), (v or 0) + 1)
        yield Release("Farm.lock")

    yield Write("Farm.round", 0, True)
    kids = []
    for _ in range(2):
        k = yield Fork(worker, name="farmhand")
        kids.append(k)
    for k in kids:
        yield Join(k)
    yield Read("Farm.round")
    for i in range(width):
        yield Read(cell(i))


def build_lockfarm() -> Program:
    """The lock-protected farm program (3 threads)."""
    return Program(
        name="lockfarm",
        main=_lockfarm_main,
        max_threads=3,
        shared={},
        description="nested-def workers over helper-named cells, one lock",
    )


WORKLOAD_LOCKFARM = DetectionWorkload(
    name="lockfarm",
    build=build_lockfarm,
    expected=DetectionExpectation(
        paramount=0, fasttrack=0, rv_detections=0, rv_status="ok"
    ),
    seed=3,
    description="replicated nested-def workers; fully lock-protected",
)
