"""Benchmark workloads.

Detection workloads (paper Table 2) are concurrent programs for the
simulated runtime; enumeration workloads (Table 1, Figures 10–12) are
posets.  :mod:`repro.workloads.registry` collects both families.
"""

from repro.workloads.base import (
    DetectionExpectation,
    DetectionWorkload,
    EnumerationWorkload,
    poset_from_program,
)
from repro.workloads.registry import (
    DETECTION_WORKLOADS,
    ENUMERATION_WORKLOADS,
    detection_workload,
    enumeration_workload,
)

__all__ = [
    "DetectionWorkload",
    "DetectionExpectation",
    "EnumerationWorkload",
    "poset_from_program",
    "DETECTION_WORKLOADS",
    "ENUMERATION_WORKLOADS",
    "detection_workload",
    "enumeration_workload",
]
