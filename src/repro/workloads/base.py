"""Workload specifications.

Two families mirror the paper's two evaluations:

* :class:`DetectionWorkload` — a concurrent program (Table 2): built as a
  :class:`~repro.runtime.program.Program`, scheduled with a pinned seed,
  and handed to the three detectors.  Each spec records the paper's
  expected per-detector outcome so the test suite *enforces* that the
  reproduction matches Table 2's detection counts and statuses.
* :class:`EnumerationWorkload` — a poset (Table 1 / Figures 10–12): either
  generated directly (the random ``d-*`` family, the unsynchronized
  ``bank`` pattern) or captured from a program trace via the raw
  (unmerged) happened-before front-end, exactly how the paper turns one
  observed execution into an enumeration input.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.detector.hb import poset_from_trace
from repro.poset.poset import Poset
from repro.runtime.program import Program
from repro.runtime.scheduler import run_program
from repro.runtime.trace import Trace

__all__ = [
    "DetectionExpectation",
    "DetectionWorkload",
    "EnumerationWorkload",
    "poset_from_program",
]


@dataclass(frozen=True)
class DetectionExpectation:
    """Paper Table 2 targets for one benchmark.

    ``rv_status`` is ``"ok"``, ``"o.o.m."`` or ``"exception"``;
    ``rv_detections`` is ``None`` when the paper prints "–" (tool failed
    before reporting) — our model still records whatever the partial run
    found, and the tests check that instead when a number is given.
    """

    paramount: int
    fasttrack: int
    rv_detections: Optional[int]
    rv_status: str = "ok"


@dataclass(frozen=True)
class DetectionWorkload:
    """One Table 2 benchmark program."""

    name: str
    build: Callable[[], Program]
    expected: DetectionExpectation
    seed: int = 0
    stickiness: float = 0.0
    #: Variables known benign (driver state, init-only) for table footnotes.
    benign_vars: frozenset = frozenset()
    description: str = ""

    def trace(self) -> Trace:
        """Run the program once under the pinned schedule seed."""
        return run_program(self.build(), seed=self.seed, stickiness=self.stickiness)

    def loc(self) -> int:
        """Source lines of the benchmark program (the Table 2 "LoC"
        analogue): the line count of the module defining the builder."""
        module = inspect.getmodule(self.build)
        try:
            source = inspect.getsource(module)
        except (OSError, TypeError):  # pragma: no cover - frozen envs
            return 0
        return len(source.splitlines())


@dataclass(frozen=True)
class EnumerationWorkload:
    """One Table 1 enumeration input."""

    name: str
    threads: int
    build_poset: Callable[[], Poset]
    #: Whether the sequential BFS is expected to exhaust the modeled heap
    #: on this poset (the paper's "o.o.m." rows of Table 1).
    bfs_oom_expected: bool = False
    description: str = ""


def poset_from_program(
    program: Program, seed: int = 0, stickiness: float = 0.0
) -> Poset:
    """Observed-execution poset of a program: run once, capture raw access
    events (no collection merging) with full HB clocks — the paper's
    "execution path converted to a poset of events" for Table 1."""
    trace = run_program(program, seed=seed, stickiness=stickiness)
    return poset_from_trace(trace, merge_collections=False)
