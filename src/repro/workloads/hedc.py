"""The ``hedc`` benchmark — a meta-crawler for Internet archives [5, 33].

A task pool drives worker threads over a monitor (workers ``wait`` for
tasks, the master ``notify``-s as it posts them) — so the modeled RV
baseline fails with an exception before seeing any race (Table 2: "–").

The four known racy variables are unsynchronized bookkeeping the workers
update as they complete tasks: ``Stats.bytes``, ``Stats.tasks``,
``Cache.hits`` and ``MetaSearch.result`` (ParaMount 4, FastTrack 4).  Task
hand-off itself is correctly lock-protected.
"""

from __future__ import annotations

from repro.runtime.ops import (
    Acquire,
    Compute,
    Fork,
    Join,
    NotifyAll,
    Read,
    Release,
    Wait,
    Write,
)
from repro.runtime.program import Program, ThreadContext
from repro.workloads.base import DetectionExpectation, DetectionWorkload

__all__ = ["build_hedc", "WORKLOAD"]

_RACY_VARS = ("Stats.bytes", "Stats.tasks", "Cache.hits", "MetaSearch.result")


def _worker(tasks_per_worker: int, racy_updates: int):
    def body(ctx: ThreadContext):
        # Wait until the pool is open.
        yield Acquire("Pool.mon")
        while True:
            open_ = yield Read("Pool.open")
            if open_:
                break
            yield Wait("Pool.mon")
        yield Release("Pool.mon")
        for _ in range(tasks_per_worker):
            # Locked task hand-off.
            yield Acquire("Pool.lock")
            nxt = yield Read("Pool.next")
            yield Write("Pool.next", (nxt or 0) + 1)
            yield Release("Pool.lock")
            yield Compute(5)  # fetch and parse the archive page
            # BUG: shared bookkeeping updated with no synchronization.
            for var in _RACY_VARS[:racy_updates]:
                v = yield Read(var)
                yield Write(var, (v or 0) + 1)

    return body


def _make_main(workers: int, tasks_per_worker: int, racy_updates: int):
    def main(ctx: ThreadContext):
        tids = []
        for i in range(workers):
            tid = yield Fork(
                _worker(tasks_per_worker, racy_updates), name=f"crawler{i}"
            )
            tids.append(tid)
        yield Acquire("Pool.lock")
        yield Write("Pool.next", 0)
        yield Release("Pool.lock")
        yield Acquire("Pool.mon")
        yield Write("Pool.open", True)
        yield NotifyAll("Pool.mon")
        yield Release("Pool.mon")
        for tid in tids:
            yield Join(tid)
        yield Read("Stats.tasks")

    return main


def build_hedc(
    workers: int = 7,
    tasks_per_worker: int = 1,
    racy_updates: int = len(_RACY_VARS),
) -> Program:
    """The hedc crawler (``workers + 1`` threads; Table 2 uses 8).

    ``racy_updates`` limits how many of the four racy bookkeeping
    variables each task touches — the Table 1 enumeration variant uses 1
    so the 12-thread raw-access lattice stays Python-enumerable
    (DESIGN.md §3 scaling).
    """
    return Program(
        name="hedc",
        main=_make_main(workers, tasks_per_worker, racy_updates),
        max_threads=workers + 1,
        shared={"Pool.open": False},
        description="task-pool crawler with unsynchronized statistics",
    )


WORKLOAD = DetectionWorkload(
    name="hedc",
    build=build_hedc,
    expected=DetectionExpectation(
        paramount=4, fasttrack=4, rv_detections=None, rv_status="exception"
    ),
    seed=8,
    description="four unsynchronized bookkeeping variables",
)
