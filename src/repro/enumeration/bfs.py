"""Cooper–Marzullo breadth-first enumeration, exactly-once variant.

The original BFS [6] proceeds level by level over the lattice of consistent
cuts (level = number of executed events).  It stores whole levels of
intermediate global states — the memory that "might grow exponentially in
the number of threads" (paper §5.1) and the reason RV runtime o.o.m.s on
large posets.  As in the paper's evaluation, we use the *enhanced* variant
(deduplicated within each level) so every state is enumerated exactly once.

``peak_live`` reports the maximum number of cuts stored at any moment
(current level + next level under construction); a ``memory_budget`` turns
the blow-up into the paper's observable o.o.m. failures.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.enumeration.base import EnumerationResult, Enumerator
from repro.errors import EnumerationError, OutOfMemoryError
from repro.poset.lattice import minimal_consistent_extension
from repro.types import Cut, CutVisitor
from repro.util.cuts import cut_leq

__all__ = ["BFSEnumerator"]


class BFSEnumerator(Enumerator):
    """Level-by-level BFS over the lattice of consistent cuts."""

    name = "bfs"

    def enumerate_interval(
        self, lo: Cut, hi: Cut, visit: Optional[CutVisitor] = None
    ) -> EnumerationResult:
        self._check_bounds(lo, hi)
        poset = self.poset
        n = poset.num_threads
        start = minimal_consistent_extension(poset, lo, fixed_prefix=0)
        if start is None or not cut_leq(start, hi):
            return EnumerationResult(states=0, work=0, peak_live=0)

        states = 0
        work = 0
        peak_live = 1
        budget = self.memory_budget
        level: List[Cut] = [start]
        enabled = poset.enabled
        while level:
            next_level: Set[Cut] = set()
            for cut in level:
                states += 1
                work += n  # dequeue + per-state bookkeeping
                if visit is not None:
                    visit(cut)
                for tid in range(n):
                    work += n  # enabled test: one clock comparison row
                    if cut[tid] + 1 <= hi[tid] and enabled(cut, tid):
                        succ = cut[:tid] + (cut[tid] + 1,) + cut[tid + 1 :]
                        # Cooper–Marzullo generates a state once per enabled
                        # predecessor; construction + hashing is paid per
                        # generation, deduplication discards the repeats.
                        work += 2 * n
                        next_level.add(succ)
                live = len(level) + len(next_level)
                if live > peak_live:
                    peak_live = live
                if budget is not None and live > budget:
                    raise OutOfMemoryError(live, budget)
            level = list(next_level)
        return EnumerationResult(states=states, work=work, peak_live=peak_live)

    def level_widths(self, lo: Cut, hi: Cut) -> List[int]:
        """Number of consistent cuts per lattice level inside ``[lo, hi]``.

        Diagnostic used by the memory experiments (Figure 12) and the GC
        cost model: the widest level dominates BFS memory.
        """
        self._check_bounds(lo, hi)
        poset = self.poset
        n = poset.num_threads
        start = minimal_consistent_extension(poset, lo, fixed_prefix=0)
        if start is None or not cut_leq(start, hi):
            return []
        widths: List[int] = []
        level: Set[Cut] = {start}
        while level:
            widths.append(len(level))
            nxt: Set[Cut] = set()
            for cut in level:
                for tid in range(n):
                    if cut[tid] + 1 <= hi[tid] and poset.enabled(cut, tid):
                        nxt.add(cut[:tid] + (cut[tid] + 1,) + cut[tid + 1 :])
            level = nxt
        return widths
