"""Validation helpers tying enumerators to the independent ideal counters."""

from __future__ import annotations

from typing import Dict

from repro.enumeration.base import CollectingVisitor, Enumerator
from repro.poset.ideals import count_ideals
from repro.poset.poset import Poset

__all__ = ["verify_enumerator", "enumeration_report"]


def verify_enumerator(enumerator: Enumerator) -> None:
    """Assert the three correctness properties of an enumeration run.

    1. every visited cut is a consistent global state;
    2. no cut is visited twice (*exactly once*, the paper's Theorem 2
       guarantee);
    3. the number of visited cuts equals ``i(P)`` from the independent
       interval-DP counter.

    Raises ``AssertionError`` with a diagnostic on any violation.  Intended
    for tests and for the ``--selfcheck`` mode of the experiment runner.
    """
    collector = CollectingVisitor()
    result = enumerator.enumerate(collector)
    poset = enumerator.poset
    for cut in collector.cuts:
        assert poset.is_consistent(cut), (
            f"{enumerator.name} produced inconsistent cut {cut}"
        )
    unique = collector.as_set()
    assert len(unique) == len(collector.cuts), (
        f"{enumerator.name} repeated "
        f"{len(collector.cuts) - len(unique)} global states"
    )
    expected = count_ideals(poset)
    assert result.states == expected, (
        f"{enumerator.name} enumerated {result.states} states, "
        f"counter says {expected}"
    )
    assert result.states == len(collector.cuts)


def enumeration_report(poset: Poset) -> Dict[str, int]:
    """Quick facts about a poset's lattice, for table headers."""
    return {
        "threads": poset.num_threads,
        "events": poset.num_events,
        "global_states": count_ideals(poset),
    }
