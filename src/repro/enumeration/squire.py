"""Squire-style recursive ideal enumeration (paper related work [29]).

Squire's dissertation algorithm enumerates the ideals of a poset by
divide and conquer: pick a maximal element ``e`` of the remaining order and
split the ideal family into the ideals *without* ``e`` and the ideals
*containing* ``e`` (which must contain ``e``'s down-set).  On the
chain-structured posets of concurrent executions both halves are again
boxes ``[lo, hi]`` of frontier vectors, so the recursion needs only two
cut vectors per frame:

* without ``e = (t, hi[t])``:  ``[lo, hi with hi[t]-1]``;
* with ``e``:                  ``[lo ∨ vc(e), hi]`` (skip if it escapes
  the box).

Each consistent cut is reached by exactly one root-to-leaf path (the same
disjointness argument as the counting DP in :mod:`repro.poset.ideals`),
giving the exactly-once property; amortized work per state is
``O(n + log|E|)``-flavoured, matching the related work's claim of beating
the per-state ``O(n²)`` of the lexical algorithm on skewed posets.  The
price is a recursion stack of ``O(|E|)`` frames — more state than the
lexical algorithm's ``O(n)``, still far below BFS's exponential levels.

This algorithm is *not* used in the paper's measured comparison; it is
included as the related-work baseline and as a third independent
implementation for cross-validation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.enumeration.base import EnumerationResult, Enumerator
from repro.poset.lattice import minimal_consistent_extension
from repro.types import Cut, CutVisitor
from repro.util.cuts import cut_join, cut_leq

__all__ = ["SquireEnumerator"]


class SquireEnumerator(Enumerator):
    """Divide-and-conquer enumeration over lattice boxes."""

    name = "squire"

    def enumerate_interval(
        self, lo: Cut, hi: Cut, visit: Optional[CutVisitor] = None
    ) -> EnumerationResult:
        self._check_bounds(lo, hi)
        poset = self.poset
        n = poset.num_threads
        start = minimal_consistent_extension(poset, lo, fixed_prefix=0)
        if start is None or not cut_leq(start, hi):
            return EnumerationResult(states=0, work=0, peak_live=0)

        states = 0
        work = 0
        peak_depth = 1
        # Explicit stack of (lo, hi) boxes; lo is always a consistent cut.
        stack: List[Tuple[Cut, Cut]] = [(start, hi)]
        while stack:
            if len(stack) > peak_depth:
                peak_depth = len(stack)
            box_lo, box_hi = stack.pop()
            work += n
            if box_lo == box_hi:
                states += 1
                if visit is not None:
                    visit(box_lo)
                continue
            # Pivot: the largest-slack thread's maximal in-range event.
            pivot = 0
            slack = -1
            for t in range(n):
                s = box_hi[t] - box_lo[t]
                if s > slack:
                    slack = s
                    pivot = t
            e_idx = box_hi[pivot]
            # Branch 2 pushed first so branch 1 (without e) is explored
            # first — yields an order that starts from the box's bottom.
            forced = cut_join(box_lo, poset.vc(pivot, e_idx))
            work += n
            if cut_leq(forced, box_hi):
                stack.append((forced, box_hi))
            without_hi = (
                box_hi[:pivot] + (e_idx - 1,) + box_hi[pivot + 1 :]
            )
            if cut_leq(box_lo, without_hi):
                stack.append((box_lo, without_hi))
        return EnumerationResult(states=states, work=work, peak_live=peak_depth)
