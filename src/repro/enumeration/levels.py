"""Space-efficient breadth-first (level) traversal — Chauhan & Garg.

:class:`~repro.enumeration.bfs.BFSEnumerator` materialises whole lattice
levels, so its memory is the widest level — exponential in the thread
count on wide posets (the paper's o.o.m. rows).  Chauhan & Garg
(arXiv:1707.07788) observe that breadth-first *order* does not require
breadth-first *storage*: each level can be (re)generated directly in
lexical order, so the traversal keeps the level-by-level visit order
while storing only the cut under construction — ``peak_live`` is O(1)
cuts (O(n) integers) instead of the widest level.

Per level ``ℓ`` the enumerator runs a depth-first scan over coordinates
``0..n-1`` assigning the frontier vector left to right, pruning with

* **prefix consistency** — clock rows are monotone along a chain, so the
  values of coordinate ``d`` compatible with the assigned prefix form a
  contiguous range found by ``bisect`` over the packed requirement
  columns (the same trick as the packed lexical kernel);
* **budget bounds** — the suffix must absorb exactly the remaining
  events: ``rem - v`` must fit between the suffix's minimum
  (``closure(lo)``) and maximum (``hi``) sums;
* **deferred minima** — each assigned event's requirements on later
  threads become running lower bounds, checked against ``hi`` eagerly.

Levels of an interval's consistent cuts are *contiguous*: if a
consistent ``G`` with ``closure(lo) < G`` exists, removing a maximal
event of ``G`` not in ``closure(lo)`` yields a consistent cut one level
down, still inside the interval.  The level loop therefore starts at
``sum(closure(lo))`` and stops at the first empty level, which is exact
— no widest-level bookkeeping and no stored frontier.

The state *set* per level equals BFS's (property-tested); the order
within a level is lexical (BFS's within-level order is unspecified —
it iterates a hash set).  The space saving is paid in work: each level
rescans prefixes, costing roughly one extra O(n) scan per state per
level compared to BFS — the classic space/time trade.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import Optional

from repro.enumeration.base import EnumerationResult, Enumerator
from repro.types import Cut, CutVisitor

__all__ = ["LevelEnumerator"]


class LevelEnumerator(Enumerator):
    """Level-order enumeration in O(n) live space (Chauhan–Garg)."""

    name = "level-space"

    def enumerate_interval(
        self, lo: Cut, hi: Cut, visit: Optional[CutVisitor] = None
    ) -> EnumerationResult:
        self._check_bounds(lo, hi)
        tables = self.poset.packed_tables()
        n = tables.num_threads
        rows = tables.clock_rows
        ebase = tables.event_base
        lengths = tables.lengths
        cols = tables.succ_cols
        work = 0

        # least consistent cut ≥ lo: one-round closure (rows are
        # transitively closed, see repro.enumeration.packed)
        start = array("i", lo)
        for i in range(n):
            ci = start[i]
            if ci:
                rb = (ebase[i] + ci - 1) * n
                work += n
                for j in range(n):
                    need = rows[rb + j]
                    if need > start[j]:
                        start[j] = need
        for j in range(n):
            if start[j] > hi[j]:
                return EnumerationResult(states=0, work=work, peak_live=0)

        # static suffix bounds: any in-interval cut has start ≤ cut ≤ hi
        suffix_start = [0] * (n + 1)
        suffix_hi = [0] * (n + 1)
        for d in range(n - 1, -1, -1):
            suffix_start[d] = suffix_start[d + 1] + start[d]
            suffix_hi[d] = suffix_hi[d + 1] + hi[d]

        cur = array("i", start)
        # reqs[d][j] = min value of coordinate j forced by cuts 0..d-1
        reqs = [array("i", [0] * n) for _ in range(n + 1)]
        t = n - 1
        states = 0
        level_states = 0

        def scan(d: int, rem: int) -> None:
            nonlocal level_states, work
            req = reqs[d]
            if d == t:
                v = rem
                work += n
                if v < start[d] or v < req[d] or v > hi[d]:
                    return
                if v:
                    rb = (ebase[d] + v - 1) * n
                    for j in range(d):
                        if rows[rb + j] > cur[j]:
                            return
                cur[d] = v
                level_states += 1
                if visit is not None:
                    visit(tuple(cur))
                return
            vlo = start[d] if start[d] > req[d] else req[d]
            floor = rem - suffix_hi[d + 1]
            if floor > vlo:
                vlo = floor
            vmax = hi[d]
            cap = rem - suffix_start[d + 1]
            if cap < vmax:
                vmax = cap
            # prefix consistency caps v to a contiguous range (columns
            # are sorted): largest v whose row fits the assigned prefix
            ld = lengths[d]
            col = cols[d]
            for j in range(d):
                if vmax <= vlo - 1:
                    break
                off = j * ld
                p = bisect_right(col, cur[j], off, off + vmax) - off
                if p < vmax:
                    vmax = p
            work += n
            nreq = reqs[d + 1]
            for v in range(vlo, vmax + 1):
                if v:
                    rb = (ebase[d] + v - 1) * n
                    work += n
                    overflow = False
                    for j in range(d + 1, n):
                        need = rows[rb + j]
                        if need > hi[j]:
                            overflow = True
                            break
                        prev = req[j]
                        nreq[j] = need if need > prev else prev
                    if overflow:
                        # rows are monotone in v: larger v overflows too
                        break
                else:
                    for j in range(d + 1, n):
                        nreq[j] = req[j]
                cur[d] = v
                scan(d + 1, rem - v)

        level = suffix_start[0]
        top = suffix_hi[0]
        while level <= top:
            level_states = 0
            scan(0, level)
            states += level_states
            if level_states == 0:
                break  # levels are contiguous: the rest are empty too
            level += 1
        # Only the cut under construction is ever live — the whole point.
        return EnumerationResult(states=states, work=work, peak_live=1)
