"""Depth-first reference enumeration.

A straightforward DFS over the lattice with a visited set.  It shares no
traversal logic with the BFS or lexical algorithms, which makes it a useful
third opinion in the cross-validation tests; it is *not* a paper baseline
and is never used in the performance experiments (its visited set stores
every state, the worst possible memory behaviour).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.enumeration.base import EnumerationResult, Enumerator
from repro.errors import OutOfMemoryError
from repro.poset.lattice import minimal_consistent_extension
from repro.types import Cut, CutVisitor
from repro.util.cuts import cut_leq

__all__ = ["DFSEnumerator"]


class DFSEnumerator(Enumerator):
    """Iterative DFS with full-state dedup (validation baseline)."""

    name = "dfs"

    def enumerate_interval(
        self, lo: Cut, hi: Cut, visit: Optional[CutVisitor] = None
    ) -> EnumerationResult:
        self._check_bounds(lo, hi)
        poset = self.poset
        n = poset.num_threads
        start = minimal_consistent_extension(poset, lo, fixed_prefix=0)
        if start is None or not cut_leq(start, hi):
            return EnumerationResult(states=0, work=0, peak_live=0)
        seen: Set[Cut] = {start}
        stack: List[Cut] = [start]
        states = 0
        work = 0
        budget = self.memory_budget
        while stack:
            cut = stack.pop()
            states += 1
            if visit is not None:
                visit(cut)
            for tid in range(n):
                work += n
                if cut[tid] + 1 <= hi[tid] and poset.enabled(cut, tid):
                    succ = cut[:tid] + (cut[tid] + 1,) + cut[tid + 1 :]
                    if succ not in seen:
                        seen.add(succ)
                        stack.append(succ)
            if budget is not None and len(seen) > budget:
                raise OutOfMemoryError(len(seen), budget)
        return EnumerationResult(states=states, work=work, peak_live=len(seen))
