"""Sequential global-state enumeration algorithms.

These are the baselines the paper compares against and the *subroutines*
ParaMount parallelizes (§3.2):

* :class:`~repro.enumeration.bfs.BFSEnumerator` — Cooper–Marzullo
  breadth-first enumeration [6], enhanced (as in the paper's evaluation)
  with within-level deduplication so each state is produced exactly once;
  memory grows with the widest lattice level (exponential in ``n``).
* :class:`~repro.enumeration.lexical.LexicalEnumerator` — the Ganter/Garg
  lexical-order enumeration [11, 12]; stateless, ``O(n²)`` amortized work
  per state, ``O(n)`` extra space.
* :class:`~repro.enumeration.dfs.DFSEnumerator` — a depth-first reference
  with a visited set (testing/validation only).

All three implement the *bounded* interface the ParaMount workers need:
``enumerate_interval(lo, hi)`` walks exactly the consistent cuts ``G`` with
``lo ≤ G ≤ hi`` (paper Algorithm 2's generalization).
"""

from repro.enumeration.base import (
    CollectingVisitor,
    EnumerationResult,
    Enumerator,
    make_enumerator,
)
from repro.enumeration.bfs import BFSEnumerator
from repro.enumeration.counting import verify_enumerator
from repro.enumeration.dfs import DFSEnumerator
from repro.enumeration.fast_lexical import FastLexicalEnumerator
from repro.enumeration.lexical import LexicalEnumerator
from repro.enumeration.squire import SquireEnumerator

__all__ = [
    "Enumerator",
    "EnumerationResult",
    "CollectingVisitor",
    "make_enumerator",
    "BFSEnumerator",
    "LexicalEnumerator",
    "FastLexicalEnumerator",
    "SquireEnumerator",
    "DFSEnumerator",
    "verify_enumerator",
]
