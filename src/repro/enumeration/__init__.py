"""Sequential global-state enumeration algorithms.

These are the baselines the paper compares against and the *subroutines*
ParaMount parallelizes (§3.2):

* :class:`~repro.enumeration.bfs.BFSEnumerator` — Cooper–Marzullo
  breadth-first enumeration [6], enhanced (as in the paper's evaluation)
  with within-level deduplication so each state is produced exactly once;
  memory grows with the widest lattice level (exponential in ``n``).
* :class:`~repro.enumeration.lexical.LexicalEnumerator` — the Ganter/Garg
  lexical-order enumeration [11, 12]; stateless, ``O(n²)`` amortized work
  per state, ``O(n)`` extra space.
* :class:`~repro.enumeration.dfs.DFSEnumerator` — a depth-first reference
  with a visited set (testing/validation only).
* :class:`~repro.enumeration.packed.PackedLexicalEnumerator` — the lexical
  algorithm over packed flat-array clock tables (run batching + one-round
  closure; identical visit sequence, ~an order of magnitude faster).
* :class:`~repro.enumeration.levels.LevelEnumerator` — Chauhan–Garg
  space-efficient level traversal: BFS's level order with O(n) live state
  instead of the widest-level blow-up.

All three implement the *bounded* interface the ParaMount workers need:
``enumerate_interval(lo, hi)`` walks exactly the consistent cuts ``G`` with
``lo ≤ G ≤ hi`` (paper Algorithm 2's generalization).
"""

from repro.enumeration.base import (
    CollectingVisitor,
    EnumerationResult,
    Enumerator,
    make_enumerator,
)
from repro.enumeration.bfs import BFSEnumerator
from repro.enumeration.counting import verify_enumerator
from repro.enumeration.dfs import DFSEnumerator
from repro.enumeration.fast_lexical import FastLexicalEnumerator
from repro.enumeration.levels import LevelEnumerator
from repro.enumeration.lexical import LexicalEnumerator
from repro.enumeration.packed import PackedLexicalEnumerator
from repro.enumeration.squire import SquireEnumerator

__all__ = [
    "Enumerator",
    "EnumerationResult",
    "CollectingVisitor",
    "make_enumerator",
    "BFSEnumerator",
    "LexicalEnumerator",
    "FastLexicalEnumerator",
    "PackedLexicalEnumerator",
    "LevelEnumerator",
    "SquireEnumerator",
    "DFSEnumerator",
    "verify_enumerator",
]
