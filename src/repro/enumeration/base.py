"""Common interface and instrumentation for enumeration algorithms.

Every enumerator reports an :class:`EnumerationResult` carrying, besides
the state count, two abstract cost metrics the parallel cost model
(:mod:`repro.core.simulated`) consumes:

* ``work`` — abstract work units (roughly: inner-loop iterations), the
  machine-independent analogue of CPU time;
* ``peak_live`` — the maximum number of simultaneously stored intermediate
  global states, the driver of the BFS memory blow-up and of the paper's
  garbage-collection effect (§5.1: partitioning shrinks intermediate state,
  which is why B-Para(1) beats sequential BFS).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import EnumerationError
from repro.poset.poset import Poset
from repro.types import Cut, CutVisitor
from repro.util.cuts import cut_leq, zero_cut

__all__ = [
    "EnumerationResult",
    "Enumerator",
    "CollectingVisitor",
    "make_enumerator",
]


@dataclass(frozen=True)
class EnumerationResult:
    """Outcome of one enumeration run (full or bounded)."""

    states: int
    work: int
    peak_live: int

    def __add__(self, other: "EnumerationResult") -> "EnumerationResult":
        """Combine results of independent runs (counts add; peaks add too,
        conservatively modeling runs that are live concurrently)."""
        return EnumerationResult(
            states=self.states + other.states,
            work=self.work + other.work,
            peak_live=self.peak_live + other.peak_live,
        )


class CollectingVisitor:
    """A visitor that records every visited cut (for tests and examples)."""

    def __init__(self) -> None:
        self.cuts: List[Cut] = []

    def __call__(self, cut: Cut) -> None:
        self.cuts.append(cut)

    def as_set(self) -> set:
        """The visited cuts as a set (order-insensitive comparisons)."""
        return set(self.cuts)


class Enumerator(ABC):
    """Base class for sequential enumeration algorithms.

    Subclasses implement :meth:`enumerate_interval`; the unbounded
    :meth:`enumerate` walks the whole lattice ``[0, lengths]``.
    """

    #: Short algorithm name used in experiment tables ("bfs", "lexical", ...).
    name: str = "abstract"

    def __init__(self, poset: Poset, memory_budget: Optional[int] = None):
        #: The input poset.
        self.poset = poset
        #: Optional cap on ``peak_live`` — exceeding it raises
        #: :class:`repro.errors.OutOfMemoryError` (models the paper's o.o.m.).
        self.memory_budget = memory_budget

    def enumerate(self, visit: Optional[CutVisitor] = None) -> EnumerationResult:
        """Enumerate *all* consistent global states exactly once."""
        return self.enumerate_interval(
            zero_cut(self.poset.num_threads), self.poset.lengths, visit
        )

    @abstractmethod
    def enumerate_interval(
        self, lo: Cut, hi: Cut, visit: Optional[CutVisitor] = None
    ) -> EnumerationResult:
        """Enumerate every consistent cut ``G`` with ``lo ≤ G ≤ hi``.

        The bounds are componentwise (the paper's ``≤`` on global states);
        each qualifying state is visited exactly once.  Raises
        :class:`EnumerationError` if the bounds are malformed.
        """

    def _check_bounds(self, lo: Cut, hi: Cut) -> None:
        n = self.poset.num_threads
        if len(lo) != n or len(hi) != n:
            raise EnumerationError(
                f"bounds must have width {n}: lo={lo}, hi={hi}"
            )
        if not cut_leq(lo, hi):
            raise EnumerationError(f"lower bound {lo} does not precede {hi}")
        if not cut_leq(hi, self.poset.lengths):
            raise EnumerationError(
                f"upper bound {hi} exceeds the final cut {self.poset.lengths}"
            )


def make_enumerator(
    name: str, poset: Poset, memory_budget: Optional[int] = None
) -> Enumerator:
    """Factory by algorithm name: ``"bfs"``, ``"lexical"``,
    ``"lexical-fast"``, ``"lexical-packed"``, ``"level-space"``,
    ``"dfs"`` or ``"squire"``."""
    from repro.enumeration.bfs import BFSEnumerator
    from repro.enumeration.dfs import DFSEnumerator
    from repro.enumeration.fast_lexical import FastLexicalEnumerator
    from repro.enumeration.levels import LevelEnumerator
    from repro.enumeration.lexical import LexicalEnumerator
    from repro.enumeration.packed import PackedLexicalEnumerator
    from repro.enumeration.squire import SquireEnumerator

    table = {
        "bfs": BFSEnumerator,
        "lexical": LexicalEnumerator,
        "lexical-fast": FastLexicalEnumerator,
        "lexical-packed": PackedLexicalEnumerator,
        "level-space": LevelEnumerator,
        "dfs": DFSEnumerator,
        "squire": SquireEnumerator,
    }
    try:
        cls = table[name]
    except KeyError:
        raise EnumerationError(
            f"unknown enumerator {name!r}; expected one of {sorted(table)}"
        ) from None
    return cls(poset, memory_budget=memory_budget)
