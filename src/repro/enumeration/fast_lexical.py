"""Optimized lexical enumeration (same algorithm, tuned inner loop).

Profiling the reference :class:`~repro.enumeration.lexical.LexicalEnumerator`
(per the repository's profile-first discipline) shows ~90 % of the time in
the generic closure helper: per-call method dispatch for every clock lookup
and full-rescan fixpoints.  This variant keeps the algorithm *identical* —
the tests assert visit-sequence equality with the reference — and applies
three mechanical optimizations:

1. the raw clock table (``poset.vc_table()``) and chain lengths are hoisted
   into locals once, removing ~2 M attribute/method calls per 100 k states;
2. the current cut lives in one mutable list; candidate prefixes reuse it
   instead of building tuple slices per backtracking position;
3. the closure fixpoint is worklist-driven: only rows whose component
   actually changed are re-examined, instead of rescanning all ``n`` rows
   until stable.

The reference implementation stays the default everywhere (its metered
work units calibrate the simulated machine); this one is registered as
``"lexical-fast"`` for throughput-sensitive use, and the benchmark suite
reports the measured speedup (typically 2–4×).
"""

from __future__ import annotations

from typing import Optional

from repro.enumeration.base import EnumerationResult, Enumerator
from repro.types import Cut, CutVisitor

__all__ = ["FastLexicalEnumerator"]


class FastLexicalEnumerator(Enumerator):
    """Lexical-order enumeration with a hand-tuned inner loop."""

    name = "lexical-fast"

    def enumerate_interval(
        self, lo: Cut, hi: Cut, visit: Optional[CutVisitor] = None
    ) -> EnumerationResult:
        self._check_bounds(lo, hi)
        poset = self.poset
        n = poset.num_threads
        vcs = poset.vc_table()  # vcs[t][k-1] = clock of event (t, k)
        lengths = poset.lengths
        states = 0
        work = 0

        # ---- initial state: least consistent cut ≥ lo ------------------- #
        cut = list(lo)
        stack = [i for i in range(n) if cut[i]]
        while stack:
            i = stack.pop()
            row = vcs[i][cut[i] - 1]
            work += n
            for j in range(n):
                need = row[j]
                if need > cut[j]:
                    if need > lengths[j]:
                        return EnumerationResult(states=0, work=work, peak_live=0)
                    cut[j] = need
                    stack.append(j)
        for i in range(n):
            if cut[i] > hi[i]:
                return EnumerationResult(states=0, work=work, peak_live=0)

        scratch = [0] * n
        while True:
            states += 1
            if visit is not None:
                visit(tuple(cut))

            # ---- lexical successor within [lo, hi] ---------------------- #
            found = False
            for k in range(n - 1, -1, -1):
                work += 1
                nxt = cut[k] + 1
                if nxt > hi[k]:
                    continue
                # candidate: prefix cut[:k] pinned, position k ≥ nxt,
                # positions > k reset to lo — closed to the least fixpoint.
                scratch[:k] = cut[:k]
                scratch[k] = nxt
                scratch[k + 1 :] = lo[k + 1 :]
                # seed ALL non-empty rows: pinned prefix events may
                # constrain the just-reset suffix positions
                stack = [j for j in range(n) if scratch[j]]
                feasible = True
                while stack:
                    i = stack.pop()
                    row = vcs[i][scratch[i] - 1]
                    work += n
                    for j in range(n):
                        need = row[j]
                        if need > scratch[j]:
                            if j < k or need > lengths[j]:
                                feasible = False
                                stack.clear()
                                break
                            scratch[j] = need
                            stack.append(j)
                if not feasible:
                    continue
                in_bounds = True
                for j in range(k, n):
                    if scratch[j] > hi[j]:
                        in_bounds = False
                        break
                if in_bounds:
                    cut, scratch = scratch, cut
                    found = True
                    break
            if not found:
                break
        return EnumerationResult(states=states, work=work, peak_live=1)
