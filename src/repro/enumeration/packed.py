"""Packed lexical enumeration — flat-table kernels for the hot path.

Same algorithm and *identical visit sequence* as
:class:`~repro.enumeration.lexical.LexicalEnumerator` (the tests assert
sequence equality on random posets), an order of magnitude faster.  Two
observations about vector clocks turn the reference algorithm's generic
closure fixpoint into straight-line integer work over the poset's packed
tables (:meth:`repro.poset.poset.Poset.packed_tables`):

**One-round closure.**  Clock tables are transitively closed: if the row
of event ``b`` forces event ``a = (i, m)`` into a cut, then ``vc(a) ≤
vc(b)`` componentwise, so ``a``'s own requirements are already covered by
``b``'s row.  The least consistent cut above a frontier is therefore a
*single* componentwise-max pass over the frontier events' rows — no
worklist, no fixpoint iteration.

**Run batching.**  In lexical order the last coordinate is least
significant, and clock rows are monotone along a chain, so for a fixed
prefix the set of valid last-coordinate values is a contiguous run whose
end is ``min_j bisect_right(column_j, prefix_j)`` over the sorted
per-thread requirement columns (``succ_cols``).  The enumerator visits
whole runs at C speed and only computes successors at backtracking
positions ``k ≤ n-2``.  With no visitor the run contributes to the state
count in O(1), which is what the counting benchmarks measure.

Two interchangeable successor kernels (both property-tested against the
reference):

* ``"array"`` — the one-round closure over the row-major clock table;
  works for any poset and is the guaranteed fallback.
* ``"bitmask"`` — closure as an OR of per-event downset bitmasks and
  per-thread popcounts; selected automatically when every event fits in
  the bit budget (``num_events ≤ BITMASK_MAX_EVENTS``).  When the poset
  is too large the enumerator records ``fallback_reason`` and the
  ParaMount driver bumps the ``packed_kernel_fallbacks_total`` counter.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import Optional

from repro.enumeration.base import EnumerationResult, Enumerator
from repro.errors import EnumerationError
from repro.poset.poset import Poset
from repro.types import Cut, CutVisitor

__all__ = ["PackedLexicalEnumerator"]


class PackedLexicalEnumerator(Enumerator):
    """Lexical-order enumeration over the packed clock tables."""

    name = "lexical-packed"

    #: Largest poset (in events = mask bits) the bitmask kernel accepts;
    #: beyond it every downset mask is a multi-kiloword big int and the
    #: array kernel wins, so the constructor falls back (and says why).
    BITMASK_MAX_EVENTS = 4096

    def __init__(
        self,
        poset: Poset,
        memory_budget: Optional[int] = None,
        kernel: str = "auto",
    ):
        super().__init__(poset, memory_budget)
        self.tables = poset.packed_tables()
        #: Why the bitmask fast path was not taken (``None`` when it was,
        #: or when the caller forced a kernel).  The driver exports this
        #: as the ``packed_kernel_fallbacks_total`` counter.
        self.fallback_reason: Optional[str] = None
        if kernel == "auto":
            if poset.num_events <= self.BITMASK_MAX_EVENTS:
                kernel = "bitmask"
            else:
                kernel = "array"
                self.fallback_reason = (
                    f"poset has {poset.num_events} events > bitmask budget "
                    f"{self.BITMASK_MAX_EVENTS}; using the array kernel"
                )
        elif kernel not in ("array", "bitmask"):
            raise EnumerationError(
                f"unknown packed kernel {kernel!r}; "
                "expected 'auto', 'array' or 'bitmask'"
            )
        #: The successor kernel in use: ``"array"`` or ``"bitmask"``.
        self.kernel = kernel

    def enumerate_interval(
        self, lo: Cut, hi: Cut, visit: Optional[CutVisitor] = None
    ) -> EnumerationResult:
        self._check_bounds(lo, hi)
        tables = self.tables
        n = tables.num_threads
        rows = tables.clock_rows
        ebase = tables.event_base
        work = 0

        # ---- initial state: least consistent cut ≥ lo (one-round) ------ #
        cut = array("i", lo)
        for i in range(n):
            ci = cut[i]
            if ci:
                rb = (ebase[i] + ci - 1) * n
                work += n
                for j in range(n):
                    need = rows[rb + j]
                    if need > cut[j]:
                        cut[j] = need
        for j in range(n):
            if cut[j] > hi[j]:
                return EnumerationResult(states=0, work=work, peak_live=0)

        use_mask = self.kernel == "bitmask"
        if use_mask:
            downs = tables.downset_masks()
            tmask = tables.thread_masks()
            # OR of the lower bound's suffix downsets, per start position.
            lo_suffix = [0] * (n + 1)
            for i in range(n - 1, -1, -1):
                lo_suffix[i] = lo_suffix[i + 1] | (
                    downs[i][lo[i] - 1] if lo[i] else 0
                )
        lo_arr = array("i", lo)
        scratch = array("i", cut)
        t = n - 1
        lt = tables.lengths[t]
        col_t = tables.succ_cols[t]
        states = 0

        while True:
            # ---- extend the run on the last thread (sorted columns) ---- #
            c0 = cut[t]
            cmax = hi[t]
            for j in range(t):
                if cmax <= c0:
                    break
                off = j * lt
                p = bisect_right(col_t, cut[j], off + c0, off + cmax) - off
                if p < cmax:
                    cmax = p
            work += n
            run = cmax - c0 + 1
            states += run
            if visit is None:
                work += 1  # O(1) per run in counting mode
            else:
                work += run
                pre = tuple(cut[:t])
                for c in range(c0, cmax + 1):
                    visit(pre + (c,))
            cut[t] = cmax

            # ---- lexical successor at a position k ≤ n-2 --------------- #
            found = False
            for k in range(n - 2, -1, -1):
                work += 1
                nxt = cut[k] + 1
                if nxt > hi[k]:
                    continue
                if use_mask:
                    # closure = OR of the candidate frontier's downsets;
                    # per-thread counts are popcounts of the mask.
                    mask = downs[k][nxt - 1] | lo_suffix[k + 1]
                    for i in range(k):
                        ci = cut[i]
                        if ci:
                            mask |= downs[i][ci - 1]
                    work += n
                    feasible = True
                    for j in range(k):
                        if (mask & tmask[j]).bit_count() != cut[j]:
                            feasible = False
                            break
                    if not feasible:
                        continue
                    m = scratch
                    in_bounds = True
                    for j in range(k, n):
                        c = (mask & tmask[j]).bit_count()
                        if c > hi[j]:
                            in_bounds = False
                            break
                        m[j] = c
                    if not in_bounds:
                        continue
                    m[:k] = cut[:k]
                else:
                    # one-round closure over the flat clock table
                    m = scratch
                    m[:k] = cut[:k]
                    m[k] = nxt
                    m[k + 1 :] = lo_arr[k + 1 :]
                    feasible = True
                    for i in range(n):
                        ci = m[i]
                        if ci:
                            rb = (ebase[i] + ci - 1) * n
                            work += n
                            for j in range(n):
                                need = rows[rb + j]
                                if need > m[j]:
                                    if j < k:
                                        feasible = False
                                        break
                                    m[j] = need
                            if not feasible:
                                break
                    if not feasible:
                        continue
                    in_bounds = True
                    for j in range(k, n):
                        if m[j] > hi[j]:
                            in_bounds = False
                            break
                    if not in_bounds:
                        continue
                cut, scratch = m, cut
                found = True
                break
            if not found:
                break
        return EnumerationResult(states=states, work=work, peak_live=1)
