"""Lexical (Ganter/Garg) enumeration of consistent global states.

The algorithm walks consistent cuts in lexicographic order of their
frontier vectors, thread 0 most significant.  It is *stateless*: besides
the current cut it stores ``O(n)`` integers, which is why the paper's
Figure 12 shows its memory equal to the input poset itself.

Successor computation (see DESIGN.md §6): to find the lex-least consistent
cut strictly greater than ``G`` within ``[lo, hi]``, try positions ``k``
from least to most significant (``n−1`` down to ``0``):

1. pin the prefix ``G[0..k−1]``;
2. require position ``k`` at least ``G[k] + 1`` and positions ``> k`` at
   least ``lo``;
3. compute the least consistent cut satisfying the pins and lower bounds —
   the *closure fixpoint* of
   :func:`repro.poset.lattice.minimal_consistent_extension`.  The family of
   consistent cuts with a pinned prefix above a lower bound is closed under
   componentwise min, so the fixpoint is its unique minimum and therefore
   lex-least;
4. accept if the closure exists and is ``≤ hi``; otherwise no in-bounds cut
   extends this prefix (every candidate dominates the closure), so move to
   a more significant position.

This matches the paper's Algorithm 2 (the bounded lexical subroutine) while
fixing the pseudo-code's elided corner cases, and costs ``O(n²)`` amortized
per enumerated state.
"""

from __future__ import annotations

from typing import Optional

from repro.enumeration.base import EnumerationResult, Enumerator
from repro.poset.lattice import minimal_consistent_extension
from repro.types import Cut, CutVisitor
from repro.util.cuts import cut_leq

__all__ = ["LexicalEnumerator", "lex_first", "lex_successor"]


def lex_first(poset, lo: Cut, hi: Cut, work=None) -> Optional[Cut]:
    """Lex-least consistent cut in ``[lo, hi]``, or ``None`` if the interval
    contains no consistent cut."""
    m = minimal_consistent_extension(poset, lo, fixed_prefix=0, work=work)
    if m is None or not cut_leq(m, hi):
        return None
    return m


def lex_successor(poset, current: Cut, lo: Cut, hi: Cut, work=None) -> Optional[Cut]:
    """Lex-least consistent cut ``> current`` within ``[lo, hi]``.

    ``current`` must itself lie in the interval.  Returns ``None`` when
    ``current`` is the lex-greatest in-bounds cut.
    """
    n = poset.num_threads
    for k in range(n - 1, -1, -1):
        if work is not None:
            work[0] += 1  # position scan
        if current[k] + 1 > hi[k]:
            continue  # position k cannot grow within the bound
        lower = current[:k] + (current[k] + 1,) + lo[k + 1 :]
        m = minimal_consistent_extension(poset, lower, fixed_prefix=k, work=work)
        if m is not None and cut_leq(m, hi):
            return m
    return None


class LexicalEnumerator(Enumerator):
    """Stateless lexical-order enumeration (paper's "Lexical" baseline and
    the subroutine of L-Para).

    The ``work`` meter counts the *actual* closure and scan operations, so
    the cost model sees the genuine per-state cost (≈ a few·n amortized,
    ``O(n²)`` worst case per state as the paper states).
    """

    name = "lexical"

    def enumerate_interval(
        self, lo: Cut, hi: Cut, visit: Optional[CutVisitor] = None
    ) -> EnumerationResult:
        self._check_bounds(lo, hi)
        poset = self.poset
        states = 0
        work = [0]
        cut = lex_first(poset, lo, hi, work)
        while cut is not None:
            states += 1
            if visit is not None:
                visit(cut)
            cut = lex_successor(poset, cut, lo, hi, work)
        # The only live intermediate state is the current cut itself.
        return EnumerationResult(states=states, work=work[0], peak_live=1)
