"""Wait-for graphs — the shared deadlock-report format.

Both deadlock reporters in the system speak this format:

* the **scheduler** builds one at the moment a simulated program
  deadlocks and attaches it to the raised
  :class:`~repro.errors.DeadlockError` (``err.wait_for``);
* the **static lock-order analyzer** (:mod:`repro.staticcheck.lockorder`)
  converts every cycle of the static lock-order graph into a hypothetical
  wait-for graph and attaches it to the emitted deadlock warning.

A graph is a set of :class:`WaitEdge` records "``waiter`` cannot proceed
until ``holder`` acts on ``resource``".  Nodes are human-readable thread
labels (``"main"``, ``"teller0"``, ``"t3"``) so that dynamic and static
reports can be compared by string equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["WaitEdge", "WaitForGraph"]

#: Edge kinds: blocked on a lock/monitor acquisition, on a thread join, or
#: on a monitor wait (no notifier left alive — ``holder`` is ``None``).
KIND_LOCK = "lock"
KIND_JOIN = "join"
KIND_WAIT = "wait"


@dataclass(frozen=True)
class WaitEdge:
    """One wait-for dependency.

    ``waiter`` is blocked on ``resource`` (a lock name or ``"thread <i>"``)
    which only ``holder`` can release/finish.  ``holder`` is ``None`` when
    nobody can unblock the waiter (a monitor wait with no live notifier).
    """

    waiter: str
    holder: Optional[str]
    resource: str
    kind: str = KIND_LOCK

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        who = self.holder if self.holder is not None else "<nobody>"
        return f"{self.waiter} --[{self.kind} {self.resource}]--> {who}"


@dataclass(frozen=True)
class WaitForGraph:
    """An immutable wait-for graph with cycle extraction."""

    edges: Tuple[WaitEdge, ...] = ()

    @classmethod
    def from_edges(cls, edges: Sequence[WaitEdge]) -> "WaitForGraph":
        return cls(edges=tuple(edges))

    # ------------------------------------------------------------------ #

    def nodes(self) -> List[str]:
        """All thread labels appearing in the graph, in first-seen order."""
        seen: Dict[str, None] = {}
        for e in self.edges:
            seen.setdefault(e.waiter)
            if e.holder is not None:
                seen.setdefault(e.holder)
        return list(seen)

    def successors(self, node: str) -> List[WaitEdge]:
        """Outgoing wait edges of ``node``."""
        return [e for e in self.edges if e.waiter == node and e.holder is not None]

    def cycles(self) -> List[List[WaitEdge]]:
        """Elementary waiter→holder cycles, deduplicated up to rotation.

        The graphs are tiny (one node per blocked thread), so a plain DFS
        with an on-path set is plenty.
        """
        found: Dict[Tuple[Tuple[str, str, str], ...], List[WaitEdge]] = {}

        def walk(path: List[WaitEdge], on_path: List[str]) -> None:
            for edge in self.successors(on_path[-1]):
                if edge.holder == on_path[0]:
                    cycle = path + [edge]
                    found[_canonical(cycle)] = cycle
                elif edge.holder not in on_path:
                    walk(path + [edge], on_path + [edge.holder])

        for start in self.nodes():
            walk([], [start])
        return list(found.values())

    def has_cycle(self) -> bool:
        """Whether any circular wait exists."""
        return bool(self.cycles())

    def format(self) -> str:
        """Multi-line human-readable rendering."""
        if not self.edges:
            return "wait-for graph: (empty)"
        lines = ["wait-for graph:"]
        lines += [f"  {e}" for e in self.edges]
        for cycle in self.cycles():
            ring = " -> ".join(e.waiter for e in cycle) + f" -> {cycle[0].waiter}"
            lines.append(f"  cycle: {ring}")
        return "\n".join(lines)


def _canonical(cycle: List[WaitEdge]) -> Tuple[Tuple[str, str, str], ...]:
    """Rotation-invariant key for an edge cycle."""
    keys = [(e.waiter, e.resource, e.kind) for e in cycle]
    rotations = [tuple(keys[i:] + keys[:i]) for i in range(len(keys))]
    return min(rotations)
