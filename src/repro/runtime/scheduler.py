"""Deterministic interleaving scheduler for simulated programs.

The scheduler owns shared memory, locks/monitors, and thread lifecycle; it
repeatedly picks a runnable thread (seeded pseudo-random choice, optionally
"sticky" to model realistic context-switch rates) and executes its next
yielded operation atomically.  The resulting :class:`Trace` is one observed
execution path — different seeds produce different interleavings of the
same program, which the tests use to show predicate detection is robust to
the observed schedule.

Semantics notes:

* lock grant order is FIFO; ``notify`` wakes waiters FIFO (determinism);
* ``wait`` is recorded as a ``release`` at suspension and a ``wait`` record
  at re-acquisition — giving the happened-before front-ends exactly the
  lock-atomicity edges the paper's rules prescribe (§4.1), including the
  ``notify → wait`` edge of Figure 2;
* ``Sleep`` accumulates virtual seconds into ``trace.base_seconds`` (the
  Table 2 "Base" column) without real-time blocking;
* ``Compute`` advances a virtual CPU meter (also folded into base time).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.errors import DeadlockError, SchedulerError
from repro.runtime.waitgraph import WaitEdge, WaitForGraph
from repro.runtime.ops import (
    Acquire,
    Compute,
    Fork,
    Join,
    Notify,
    NotifyAll,
    Op,
    Read,
    Release,
    Sleep,
    Wait,
    Write,
)
from repro.runtime.program import Program, ThreadContext
from repro.runtime.trace import Trace, TraceOp
from repro.util.rng import DeterministicRng

__all__ = ["Scheduler", "run_program"]

#: Modeled seconds per Compute unit (folded into a trace's base time).
_SECONDS_PER_COMPUTE_UNIT = 1.0e-6

_RUNNABLE = "runnable"
_BLOCKED_LOCK = "blocked_lock"
_BLOCKED_WAIT = "blocked_wait"
_BLOCKED_JOIN = "blocked_join"
_FINISHED = "finished"


class _ThreadState:
    __slots__ = (
        "tid",
        "gen",
        "ctx",
        "status",
        "pending",
        "blocked_on",
        "resume_kind",
        "join_target",
    )

    def __init__(self, tid: int, gen, ctx: ThreadContext):
        self.tid = tid
        self.gen = gen
        self.ctx = ctx
        self.status = _RUNNABLE
        self.pending: Any = None  # value delivered to the next gen.send
        self.blocked_on: Optional[str] = None
        #: Trace kind to emit when the thread gets unblocked ("acquire"/"wait"/"join").
        self.resume_kind: Optional[str] = None
        #: Joined thread id while blocked in a join (for wait-for graphs).
        self.join_target: Optional[int] = None


class _LockState:
    __slots__ = ("owner", "queue", "waiters")

    def __init__(self) -> None:
        self.owner: Optional[int] = None
        self.queue: Deque[int] = deque()  # blocked acquirers, FIFO
        self.waiters: Deque[int] = deque()  # monitor waiters, FIFO


class Scheduler:
    """Runs a :class:`Program` to completion under one seeded schedule."""

    def __init__(
        self,
        program: Program,
        seed: int = 0,
        stickiness: float = 0.0,
        max_steps: int = 2_000_000,
        sanitizer=None,
    ):
        if not 0.0 <= stickiness < 1.0:
            raise SchedulerError(f"stickiness must be in [0, 1), got {stickiness}")
        self.program = program
        self.seed = seed
        #: Probability of staying on the current thread at each step.
        self.stickiness = stickiness
        self.max_steps = max_steps
        #: Optional trace sanitizer (an object with ``observe(op)``, e.g.
        #: :class:`repro.staticcheck.sanitize.TraceSanitizer`) fed every
        #: emitted operation — the opt-in runtime invariant checker.
        self.sanitizer = sanitizer
        self._rng = DeterministicRng(seed).fork("scheduler", program.name)

    # ------------------------------------------------------------------ #

    def run(self) -> Trace:
        """Execute the program; return the observed trace."""
        program = self.program
        shared: Dict[str, Any] = program.initial_shared()
        trace = Trace(program_name=program.name, num_threads=program.max_threads)
        threads: List[_ThreadState] = []
        locks: Dict[str, _LockState] = {}
        joiners: Dict[int, List[int]] = {}  # finished-waits: target -> joiner tids
        seq = 0

        sanitizer = self.sanitizer

        def emit(tid: int, kind: str, obj=None, target=None, is_init=False) -> None:
            nonlocal seq
            op = TraceOp(seq=seq, tid=tid, kind=kind, obj=obj, target=target, is_init=is_init)
            trace.ops.append(op)
            seq += 1
            if sanitizer is not None:
                sanitizer.observe(op)

        def spawn(body: Callable, name: str) -> int:
            tid = len(threads)
            if tid >= program.max_threads:
                raise SchedulerError(
                    f"program {program.name!r} forked more than "
                    f"max_threads={program.max_threads} threads"
                )
            ctx = ThreadContext(
                tid=tid, rng=self._rng.fork("thread", tid), name=name
            )
            gen = body(ctx)
            threads.append(_ThreadState(tid, gen, ctx))
            return tid

        def lock_state(name: str) -> _LockState:
            st = locks.get(name)
            if st is None:
                st = locks[name] = _LockState()
            return st

        def grant_next(lname: str) -> None:
            """Hand a released lock to the next queued acquirer, if any."""
            lst = lock_state(lname)
            if lst.owner is None and lst.queue:
                nxt = lst.queue.popleft()
                lst.owner = nxt
                t = threads[nxt]
                emit(nxt, t.resume_kind or "acquire", obj=lname)
                t.status = _RUNNABLE
                t.blocked_on = None
                t.resume_kind = None

        def finish_thread(t: _ThreadState) -> None:
            t.status = _FINISHED
            emit(t.tid, "thread_end")
            for j in joiners.pop(t.tid, []):
                jt = threads[j]
                emit(j, "join", target=t.tid)
                jt.status = _RUNNABLE
                jt.blocked_on = None
                jt.resume_kind = None

        spawn(program.main, "main")
        emit(0, "thread_start")
        current: Optional[int] = 0
        steps = 0

        while True:
            runnable = [t.tid for t in threads if t.status == _RUNNABLE]
            if not runnable:
                if all(t.status == _FINISHED for t in threads):
                    break
                blocked = {
                    t.tid: (t.status, t.blocked_on)
                    for t in threads
                    if t.status != _FINISHED
                }
                wait_for = _build_wait_for(threads, locks)
                raise DeadlockError(
                    f"program {program.name!r} deadlocked; blocked threads: "
                    f"{blocked}\n{wait_for.format()}",
                    wait_for=wait_for,
                )
            steps += 1
            if steps > self.max_steps:
                raise SchedulerError(
                    f"program {program.name!r} exceeded {self.max_steps} steps"
                )
            if (
                current is not None
                and current in runnable
                and self.stickiness > 0.0
                and self._rng.random() < self.stickiness
            ):
                tid = current
            else:
                tid = self._rng.choice(runnable)
            current = tid
            t = threads[tid]

            try:
                op: Op = t.gen.send(t.pending)
            except StopIteration:
                finish_thread(t)
                continue
            t.pending = None

            if isinstance(op, Read):
                emit(tid, "read", obj=op.var)
                t.pending = shared.get(op.var)
            elif isinstance(op, Write):
                shared[op.var] = op.value
                emit(tid, "write", obj=op.var, is_init=op.is_init)
            elif isinstance(op, Acquire):
                lst = lock_state(op.lock)
                if lst.owner is None:
                    lst.owner = tid
                    emit(tid, "acquire", obj=op.lock)
                elif lst.owner == tid:
                    raise SchedulerError(
                        f"thread {tid} re-acquired non-reentrant lock {op.lock!r}"
                    )
                else:
                    lst.queue.append(tid)
                    t.status = _BLOCKED_LOCK
                    t.blocked_on = op.lock
                    t.resume_kind = "acquire"
            elif isinstance(op, Release):
                lst = lock_state(op.lock)
                if lst.owner != tid:
                    raise SchedulerError(
                        f"thread {tid} released lock {op.lock!r} it does not hold"
                    )
                emit(tid, "release", obj=op.lock)
                lst.owner = None
                grant_next(op.lock)
            elif isinstance(op, Wait):
                lst = lock_state(op.lock)
                if lst.owner != tid:
                    raise SchedulerError(
                        f"thread {tid} waited on lock {op.lock!r} it does not hold"
                    )
                emit(tid, "release", obj=op.lock)  # wait releases the monitor
                lst.owner = None
                lst.waiters.append(tid)
                t.status = _BLOCKED_WAIT
                t.blocked_on = op.lock
                t.resume_kind = "wait"  # recorded at re-acquisition
                grant_next(op.lock)
            elif isinstance(op, (Notify, NotifyAll)):
                lst = lock_state(op.lock)
                if lst.owner != tid:
                    raise SchedulerError(
                        f"thread {tid} notified lock {op.lock!r} it does not hold"
                    )
                emit(tid, "notify", obj=op.lock)
                wake = (
                    len(lst.waiters)
                    if isinstance(op, NotifyAll)
                    else min(1, len(lst.waiters))
                )
                for _ in range(wake):
                    w = lst.waiters.popleft()
                    threads[w].status = _BLOCKED_LOCK
                    lst.queue.append(w)
            elif isinstance(op, Fork):
                child = spawn(op.body, op.name or f"t{len(threads)}")
                # fork precedes the child's start in the observed order, so
                # trace order stays a linear extension of happened-before.
                emit(tid, "fork", target=child)
                emit(child, "thread_start")
                t.pending = child
            elif isinstance(op, Join):
                if not 0 <= op.tid < len(threads):
                    raise SchedulerError(
                        f"thread {tid} joined unknown thread {op.tid}"
                    )
                target = threads[op.tid]
                if target.status == _FINISHED:
                    emit(tid, "join", target=op.tid)
                else:
                    joiners.setdefault(op.tid, []).append(tid)
                    t.status = _BLOCKED_JOIN
                    t.blocked_on = f"thread {op.tid}"
                    t.join_target = op.tid
                    t.resume_kind = "join"
            elif isinstance(op, Compute):
                trace.base_seconds += op.units * _SECONDS_PER_COMPUTE_UNIT
            elif isinstance(op, Sleep):
                trace.base_seconds += op.seconds
            else:
                raise SchedulerError(f"thread {tid} yielded unknown op {op!r}")

        trace.final_shared = shared
        return trace


def _thread_label(t: _ThreadState) -> str:
    """Human-readable thread label shared with the static analyzer."""
    return t.ctx.name or f"t{t.tid}"


def _build_wait_for(threads, locks) -> WaitForGraph:
    """Snapshot the wait-for graph of the blocked threads.

    Edge semantics match the static lock-order analyzer's hypothetical
    deadlock graphs: ``waiter`` is blocked on ``resource`` held (or to be
    finished) by ``holder``; monitor waiters with no live notifier get a
    holder-less ``wait`` edge.
    """
    edges = []
    for t in threads:
        if t.status == _BLOCKED_LOCK:
            lst = locks.get(t.blocked_on)
            owner = (
                _thread_label(threads[lst.owner])
                if lst is not None and lst.owner is not None
                else None
            )
            edges.append(
                WaitEdge(
                    waiter=_thread_label(t),
                    holder=owner,
                    resource=t.blocked_on,
                    kind="lock",
                )
            )
        elif t.status == _BLOCKED_JOIN:
            holder = (
                _thread_label(threads[t.join_target])
                if t.join_target is not None
                else None
            )
            edges.append(
                WaitEdge(
                    waiter=_thread_label(t),
                    holder=holder,
                    resource=t.blocked_on or "thread ?",
                    kind="join",
                )
            )
        elif t.status == _BLOCKED_WAIT:
            edges.append(
                WaitEdge(
                    waiter=_thread_label(t),
                    holder=None,
                    resource=t.blocked_on or "?",
                    kind="wait",
                )
            )
    return WaitForGraph.from_edges(edges)


def run_program(
    program: Program,
    seed: int = 0,
    stickiness: float = 0.0,
    sanitizer=None,
    observer=None,
) -> Trace:
    """Convenience wrapper: schedule ``program`` once and return its trace.

    With an ``observer`` (a :class:`repro.obs.Observer`) the capture is
    recorded as a ``capture`` span carrying the program name, seed, and
    the number of operations captured.
    """
    scheduler = Scheduler(
        program, seed=seed, stickiness=stickiness, sanitizer=sanitizer
    )
    if observer is None or not getattr(observer, "enabled", False):
        return scheduler.run()
    with observer.span(
        "run_program", "capture", program=str(program.name), seed=seed
    ) as span:
        trace = scheduler.run()
        span.annotate(ops=len(trace))
    return trace
