"""JSON (de)serialization of execution traces.

Traces are the hand-off artifact between observation and analysis: capture
once, then replay through any detector or front-end — including from the
command line (:mod:`repro.tools`).  The format is one JSON object with the
operation list; values are intentionally restricted to what detectors need
(operation kind, thread, object, target, init flag), not the program's
data values.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import ReproError
from repro.runtime.trace import Trace, TraceOp

__all__ = ["trace_to_dict", "trace_from_dict", "save_trace", "load_trace"]

_FORMAT_VERSION = 1


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    """Serialize a trace to a JSON-compatible dictionary."""
    return {
        "version": _FORMAT_VERSION,
        "program_name": trace.program_name,
        "num_threads": trace.num_threads,
        "base_seconds": trace.base_seconds,
        "ops": [
            {
                "seq": op.seq,
                "tid": op.tid,
                "kind": op.kind,
                "obj": op.obj,
                "target": op.target,
                "is_init": op.is_init,
            }
            for op in trace.ops
        ],
    }


def trace_from_dict(data: Dict[str, Any]) -> Trace:
    """Deserialize a trace from :func:`trace_to_dict`'s format."""
    if data.get("version") != _FORMAT_VERSION:
        raise ReproError(f"unsupported trace format version {data.get('version')!r}")
    return Trace(
        program_name=data["program_name"],
        num_threads=data["num_threads"],
        base_seconds=data.get("base_seconds", 0.0),
        ops=[
            TraceOp(
                seq=rec["seq"],
                tid=rec["tid"],
                kind=rec["kind"],
                obj=rec.get("obj"),
                target=rec.get("target"),
                is_init=rec.get("is_init", False),
            )
            for rec in data["ops"]
        ],
    )


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: Union[str, Path]) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))
