"""JSON (de)serialization of execution traces.

Traces are the hand-off artifact between observation and analysis: capture
once, then replay through any detector or front-end — including from the
command line (:mod:`repro.tools`).  The format is one JSON object with the
operation list; values are intentionally restricted to what detectors need
(operation kind, thread, object, target, init flag), not the program's
data values.

Ingestion runs in one of two modes.  **Strict** (the default, today's
behavior) raises :class:`~repro.errors.ReproError` on the first malformed
operation.  **Lenient** (``strict=False``) quarantines malformed records —
missing fields, wrong types, out-of-range thread ids, unknown operation
kinds, non-monotonic sequence numbers — into a
:class:`~repro.resilience.QuarantineReport` and keeps the healthy rest of
the stream, so one corrupt line in a multi-megabyte capture does not cost
the whole trace.  An unknown *format version* is never leniently skipped:
the reader cannot know what the fields mean, so both modes reject it with
a clear error naming the supported version.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import ReproError
from repro.runtime.trace import ACCESS_KINDS, SYNC_KINDS, Trace, TraceOp

__all__ = ["trace_to_dict", "trace_from_dict", "save_trace", "load_trace"]

_FORMAT_VERSION = 1
_KNOWN_KINDS = SYNC_KINDS | ACCESS_KINDS


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    """Serialize a trace to a JSON-compatible dictionary."""
    return {
        "version": _FORMAT_VERSION,
        "program_name": trace.program_name,
        "num_threads": trace.num_threads,
        "base_seconds": trace.base_seconds,
        "ops": [
            {
                "seq": op.seq,
                "tid": op.tid,
                "kind": op.kind,
                "obj": op.obj,
                "target": op.target,
                "is_init": op.is_init,
            }
            for op in trace.ops
        ],
    }


def _check_op(rec: Any, num_threads: int, prev_seq: int) -> Optional[str]:
    """Reason the record is malformed, or ``None`` when it is healthy."""
    if not isinstance(rec, dict):
        return f"operation record is {type(rec).__name__}, expected an object"
    for req in ("seq", "tid", "kind"):
        if req not in rec:
            return f"missing required field {req!r}"
    if not isinstance(rec["seq"], int) or isinstance(rec["seq"], bool):
        return f"seq must be an integer, got {rec['seq']!r}"
    if not isinstance(rec["tid"], int) or isinstance(rec["tid"], bool):
        return f"tid must be an integer, got {rec['tid']!r}"
    if not 0 <= rec["tid"] < num_threads:
        return (
            f"tid {rec['tid']} out of range for a "
            f"{num_threads}-thread trace"
        )
    if rec["kind"] not in _KNOWN_KINDS:
        return f"unknown operation kind {rec['kind']!r}"
    if rec["seq"] <= prev_seq:
        return (
            f"sequence number {rec['seq']} is not greater than the "
            f"previous op's {prev_seq} — the observed total order is broken"
        )
    return None


def trace_from_dict(
    data: Dict[str, Any],
    *,
    strict: bool = True,
    quarantine=None,
) -> Trace:
    """Deserialize a trace from :func:`trace_to_dict`'s format.

    With ``strict=False``, malformed operations are skipped and reported
    to ``quarantine`` (a :class:`~repro.resilience.QuarantineReport`)
    instead of aborting the parse.  A version mismatch always raises.
    """
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported trace format version {version!r}: this reader "
            f"understands version {_FORMAT_VERSION} only — re-capture the "
            f"trace or convert it before replaying"
        )
    num_threads = data["num_threads"]
    ops = []
    prev_seq = -1
    for index, rec in enumerate(data["ops"]):
        reason = _check_op(rec, num_threads, prev_seq)
        if reason is not None:
            if strict:
                raise ReproError(f"malformed trace op #{index}: {reason}")
            if quarantine is not None:
                quarantine.add(index, "trace-op", reason, payload=rec)
            continue
        prev_seq = rec["seq"]
        ops.append(
            TraceOp(
                seq=rec["seq"],
                tid=rec["tid"],
                kind=rec["kind"],
                obj=rec.get("obj"),
                target=rec.get("target"),
                is_init=rec.get("is_init", False),
            )
        )
    return Trace(
        program_name=data["program_name"],
        num_threads=num_threads,
        base_seconds=data.get("base_seconds", 0.0),
        ops=ops,
    )


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(
    path: Union[str, Path], *, strict: bool = True, quarantine=None
) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    return trace_from_dict(
        json.loads(Path(path).read_text()), strict=strict, quarantine=quarantine
    )
