"""Program and thread-context abstractions for the simulated runtime.

A :class:`Program` declares an initial (main) thread body, an upper bound
on simultaneously live threads (the vector-clock width), and initial shared
memory.  Thread bodies are generator functions::

    def worker(ctx: ThreadContext):
        yield Acquire("m")
        v = yield Read("counter")
        yield Write("counter", v + 1)
        yield Release("m")

``ctx`` gives the body its thread id, a deterministic per-thread RNG
substream (so program logic is reproducible under any schedule seed), and a
scratch dict for thread-local state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.errors import WorkloadError
from repro.util.rng import DeterministicRng

__all__ = ["Program", "ThreadContext"]


@dataclass
class ThreadContext:
    """Per-thread handle passed to every thread body."""

    #: The thread's id (0 is the main thread).
    tid: int
    #: Deterministic RNG substream private to this thread.
    rng: DeterministicRng
    #: Free-form thread-local scratch space.
    local: Dict[str, Any] = field(default_factory=dict)
    #: Human-readable name (main / forked name / "t<tid>").
    name: str = ""


@dataclass(frozen=True)
class Program:
    """A simulated concurrent program.

    ``max_threads`` bounds how many threads may ever exist (main plus
    forks); it fixes the vector-clock width ``n`` — the paper's per-poset
    thread count.  Forking beyond the bound raises
    :class:`~repro.errors.SchedulerError` at run time.
    """

    name: str
    main: Callable
    max_threads: int
    shared: Dict[str, Any] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if self.max_threads < 1:
            raise WorkloadError(
                f"program {self.name!r}: max_threads must be ≥ 1"
            )
        if not callable(self.main):
            raise WorkloadError(f"program {self.name!r}: main must be callable")

    def initial_shared(self) -> Dict[str, Any]:
        """A fresh copy of the initial shared memory."""
        return dict(self.shared)
