"""Execution traces: the observed total order of operations.

A :class:`Trace` is what the paper's execution-path monitor produces — the
single observed schedule from which predicate detection *predicts* other
schedules.  Each :class:`TraceOp` records the operation, its thread, the
objects touched, and its global sequence number.  Detector front-ends
replay the trace to build their posets (1-pass online or 2-pass offline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

__all__ = ["TraceOp", "Trace"]

#: Trace operation kinds (string constants keep traces JSON-friendly).
K_READ = "read"
K_WRITE = "write"
K_ACQUIRE = "acquire"
K_RELEASE = "release"
K_WAIT = "wait"
K_NOTIFY = "notify"
K_FORK = "fork"
K_JOIN = "join"
K_THREAD_START = "thread_start"
K_THREAD_END = "thread_end"

SYNC_KINDS = {
    K_ACQUIRE,
    K_RELEASE,
    K_WAIT,
    K_NOTIFY,
    K_FORK,
    K_JOIN,
    K_THREAD_START,
    K_THREAD_END,
}
ACCESS_KINDS = {K_READ, K_WRITE}


@dataclass(frozen=True)
class TraceOp:
    """One operation of the observed execution.

    ``obj`` names the variable or lock; ``target`` is the child/joined
    thread id for fork/join; ``is_init`` marks initialization writes.
    """

    seq: int
    tid: int
    kind: str
    obj: Optional[str] = None
    target: Optional[int] = None
    is_init: bool = False

    @property
    def is_access(self) -> bool:
        """True for read/write operations on shared variables."""
        return self.kind in ACCESS_KINDS

    @property
    def is_sync(self) -> bool:
        """True for synchronization / lifecycle operations."""
        return self.kind in SYNC_KINDS


@dataclass
class Trace:
    """The observed execution of one program run."""

    program_name: str
    num_threads: int
    ops: List[TraceOp] = field(default_factory=list)
    #: Modeled base running time: virtual sleep seconds plus compute units
    #: converted by the scheduler (the Table 2 "Base" column).
    base_seconds: float = 0.0
    #: Final shared-memory contents (lets tests assert program semantics).
    final_shared: Dict[str, Any] = field(default_factory=dict)

    def __iter__(self) -> Iterator[TraceOp]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def variables(self) -> Set[str]:
        """All shared variables accessed in the trace (Table 2 "#Var")."""
        return {op.obj for op in self.ops if op.is_access and op.obj}

    def locks(self) -> Set[str]:
        """All locks/monitors operated on."""
        return {
            op.obj
            for op in self.ops
            if op.kind in (K_ACQUIRE, K_RELEASE, K_WAIT, K_NOTIFY) and op.obj
        }

    def accesses(self) -> List[TraceOp]:
        """Just the read/write operations, in observed order."""
        return [op for op in self.ops if op.is_access]

    def per_thread_counts(self) -> List[int]:
        """Number of trace ops per thread."""
        counts = [0] * self.num_threads
        for op in self.ops:
            counts[op.tid] += 1
        return counts

    def uses_wait_notify(self) -> bool:
        """Whether the program used monitor wait/notify — the construct the
        RV-runtime baseline rejects (models its Table 2 ``exception``
        rows)."""
        return any(op.kind in (K_WAIT, K_NOTIFY) for op in self.ops)

    def summary(self) -> Tuple[int, int, int]:
        """(threads, ops, variables) for reporting."""
        return (self.num_threads, len(self.ops), len(self.variables()))
