"""Simulated concurrent-program runtime.

This package replaces the paper's JVM + bytecode-injection stack
(DESIGN.md §3).  Benchmark programs are written as Python generator
functions that *yield operations* — reads/writes of shared variables, lock
acquire/release, monitor wait/notify, fork/join, compute, sleep.  A seeded,
deterministic scheduler interleaves the threads and records the observed
execution as a :class:`~repro.runtime.trace.Trace`: the global total order
of operations, which is exactly what an instrumented program would emit.

Detectors consume traces through their own front-ends (1-pass online for
ParaMount and FastTrack, 2-pass offline for the RV-runtime baseline), just
as Table 3 of the paper contrasts.
"""

from repro.runtime.ops import (
    Acquire,
    Compute,
    Fork,
    Join,
    Notify,
    NotifyAll,
    Read,
    Release,
    Sleep,
    Wait,
    Write,
)
from repro.runtime.program import Program, ThreadContext
from repro.runtime.scheduler import Scheduler, run_program
from repro.runtime.trace import Trace, TraceOp
from repro.runtime.waitgraph import WaitEdge, WaitForGraph

__all__ = [
    "WaitEdge",
    "WaitForGraph",
    "Read",
    "Write",
    "Acquire",
    "Release",
    "Wait",
    "Notify",
    "NotifyAll",
    "Fork",
    "Join",
    "Compute",
    "Sleep",
    "Program",
    "ThreadContext",
    "Scheduler",
    "run_program",
    "Trace",
    "TraceOp",
]
