"""Operations a simulated thread can yield.

A thread body is a generator; each ``yield <Op>`` hands control to the
scheduler, which performs the operation atomically and resumes the thread
(with a value, for :class:`Read`).  Operations are the granularity of
interleaving — between any two of them the scheduler may switch threads,
which is how alternative schedules and data races arise.

The set mirrors what the paper's bytecode injector intercepts: variable
accesses, lock/monitor operations (including implicit Java monitors), and
thread lifecycle (fork/join).  :class:`Compute` and :class:`Sleep` model
local work and timed waits (the elevator benchmark's ``sleep()`` calls,
which dominate its base running time in Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = [
    "Op",
    "Read",
    "Write",
    "Acquire",
    "Release",
    "Wait",
    "Notify",
    "NotifyAll",
    "Fork",
    "Join",
    "Compute",
    "Sleep",
]


class Op:
    """Base class of all yieldable operations."""

    __slots__ = ()


@dataclass(frozen=True)
class Read(Op):
    """Read shared variable ``var``; the yield expression evaluates to its
    current value."""

    var: str


@dataclass(frozen=True)
class Write(Op):
    """Write ``value`` to shared variable ``var``.

    ``is_init`` marks an initialization write: a store to a freshly created
    object no other thread can reference yet.  The ParaMount detector
    ignores such writes when reporting races (paper §5.2); FastTrack and the
    RV baseline treat them like any other write — the source of their extra
    reports on the ``set`` benchmarks.
    """

    var: str
    value: Any = None
    is_init: bool = False


@dataclass(frozen=True)
class Acquire(Op):
    """Acquire lock ``lock`` (blocking)."""

    lock: str


@dataclass(frozen=True)
class Release(Op):
    """Release lock ``lock`` (must be held by the caller)."""

    lock: str


@dataclass(frozen=True)
class Wait(Op):
    """Monitor wait on ``lock``: atomically release and sleep until
    notified, then re-acquire before resuming (Java ``Object.wait``)."""

    lock: str


@dataclass(frozen=True)
class Notify(Op):
    """Wake one waiter of ``lock`` (must be held by the caller)."""

    lock: str


@dataclass(frozen=True)
class NotifyAll(Op):
    """Wake every waiter of ``lock`` (must be held by the caller)."""

    lock: str


@dataclass(frozen=True)
class Fork(Op):
    """Spawn a new thread running ``body`` (a generator function taking a
    :class:`~repro.runtime.program.ThreadContext`).  The yield expression
    evaluates to the child's thread id."""

    body: Callable
    name: Optional[str] = None


@dataclass(frozen=True)
class Join(Op):
    """Block until thread ``tid`` terminates."""

    tid: int


@dataclass(frozen=True)
class Compute(Op):
    """Local computation costing ``units`` abstract work (no shared event,
    no trace record; advances the virtual CPU clock)."""

    units: int = 1


@dataclass(frozen=True)
class Sleep(Op):
    """Timed wait of ``seconds`` *virtual* seconds.  Contributes to the
    program's modeled base running time without blocking real time."""

    seconds: float
