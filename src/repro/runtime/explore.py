"""Schedule exploration — the RichTest-style companion to online detection.

The paper's §5.3 notes a limitation of one-shot online detection: the
happened-before capture "does not consider the commuting of mutex", so
races hidden behind a particular lock-acquisition order need a *different
observed execution* to surface.  RichTest addresses this with a controlled
scheduler that re-executes the program under new lock orders; the paper
calls the two approaches complementary.

This module provides that companion for the simulated runtime: it re-runs
a program under many schedule seeds (and context-switch stickiness levels),
deduplicates the observed executions by the poset they induce, and
aggregates the per-execution detection reports.  Variables racy in *any*
observed execution form the union report — in practice a handful of seeds
reaches the fixpoint quickly, which the tests assert on the benchmark
suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Set, Tuple

from repro.detector.paramount_detector import ParaMountDetector
from repro.detector.report import DetectionReport
from repro.runtime.program import Program
from repro.runtime.scheduler import run_program
from repro.runtime.trace import Trace

__all__ = ["ExplorationResult", "explore_schedules"]

#: Builds a detector report from one observed trace.
DetectorFn = Callable[[Trace], DetectionReport]


@dataclass
class ExplorationResult:
    """Aggregate of detection over many observed schedules."""

    program_name: str
    schedules_run: int = 0
    #: Distinct happened-before posets observed (schedules inducing the
    #: same poset add no detection power — the dedup the paper's
    #: prediction-vs-replay tools rely on).
    distinct_posets: int = 0
    #: Union of racy variables across schedules.
    racy_vars: Set[str] = field(default_factory=set)
    #: Per-seed racy variables (diagnostics; shows which schedules added
    #: coverage).
    per_seed: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    #: Seed at which the union stopped growing.
    fixpoint_seed: int = -1

    @property
    def num_detections(self) -> int:
        """Number of variables racy in at least one observed schedule."""
        return len(self.racy_vars)


def _poset_fingerprint(trace: Trace) -> Tuple:
    """A hashable identifier of the induced collection poset: the events'
    clocks in insertion order."""
    from repro.detector.hb import events_from_trace

    return tuple(
        (e.tid, e.vc, tuple(sorted((a.op, a.var, a.is_init) for a in e.accesses)))
        for e in events_from_trace(trace, merge_collections=True)
    )


def explore_schedules(
    program: Program,
    seeds: Sequence[int] = range(8),
    stickiness_levels: Sequence[float] = (0.0, 0.8),
    detector: DetectorFn = None,
    benign_vars: frozenset = frozenset(),
) -> ExplorationResult:
    """Run ``program`` under many schedules and aggregate race detection.

    ``detector`` defaults to the ParaMount online detector.  Returns the
    union report with schedule-coverage diagnostics.
    """
    if detector is None:
        detector = lambda trace: ParaMountDetector().run(trace, benign_vars)  # noqa: E731

    result = ExplorationResult(program_name=program.name)
    fingerprints: Set[Tuple] = set()
    last_growth = -1
    for seed in seeds:
        for stickiness in stickiness_levels:
            trace = run_program(program, seed=seed, stickiness=stickiness)
            result.schedules_run += 1
            fingerprints.add(_poset_fingerprint(trace))
            report = detector(trace)
            before = len(result.racy_vars)
            result.racy_vars |= report.racy_vars
            if len(result.racy_vars) > before:
                last_growth = seed
        result.per_seed[seed] = tuple(sorted(result.racy_vars))
    result.distinct_posets = len(fingerprints)
    result.fixpoint_seed = last_growth
    return result
