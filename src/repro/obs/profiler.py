"""Sampling profiler attributing CPU time to pipeline phases.

Answers the question the span layer cannot: *which code* burned the time
inside a span — the `lexical-packed` bitmask kernel or its array
fallback, vector-clock stamping or successor generation.  Pure stdlib: a
daemon thread wakes ``hz`` times per second, grabs every thread's current
frame stack via ``sys._current_frames()``, and folds it under the
innermost **open span** of that thread (the tracer's active-stack
feature, switched on only while a profiler is attached — the traced
NullObserver/unprofiled paths never pay for stack upkeep).

Aggregated samples export as:

* collapsed-stack text (``phase;frame;frame count``) — the FlameGraph /
  ``flamegraph.pl`` interchange format;
* speedscope JSON (``"type": "sampled"``) — drop the file on
  https://www.speedscope.app for an interactive flame chart.

Overhead scales with ``hz`` and thread count, not with states/sec: at the
default 100 Hz a raytracer-sized run (~1M states) stays inside the ≤5%
budget pinned by ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
import sys
import threading
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.obs.observer import Observer

__all__ = ["SamplingProfiler"]

#: Phase label for samples on threads with no open span.
UNTRACED = "untraced"


class SamplingProfiler:
    """Periodic whole-process stack sampler with span attribution.

    Parameters
    ----------
    observer:
        The run's observer; the profiler flips its tracer's
        ``track_active`` flag while running (for phase attribution) and
        counts captured samples into ``profiler_samples_total``.
    hz:
        Target sampling frequency (samples per second per thread).
    max_depth:
        Frames kept per sample, leaf-most first when truncating.
    """

    def __init__(self, observer: Observer, hz: float = 100.0, max_depth: int = 64):
        if hz <= 0:
            raise ValueError(f"hz must be > 0, got {hz}")
        self.observer = observer
        self.hz = hz
        self.max_depth = max_depth
        #: (phase, frame tuple root-first) -> sample count.
        self.samples: Dict[Tuple[str, Tuple[str, ...]], int] = {}
        self._stop = threading.Event()
        self._thread: Union[threading.Thread, None] = None

    # ------------------------------------------------------------------ #
    # lifecycle

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        self.observer.tracer.track_active = True
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.observer.tracer.track_active = False
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # sampling

    def _run(self) -> None:
        interval = 1.0 / self.hz
        skip = {threading.get_ident()}
        counter = self.observer.counter("profiler_samples_total")
        while not self._stop.wait(interval):
            self._sample_once(skip, counter)

    def _sample_once(self, skip, counter) -> None:
        stacks = self.observer.tracer.active_stacks()
        for ident, frame in sys._current_frames().items():
            if ident in skip or frame is None:
                continue
            frames: List[str] = []
            while frame is not None:
                code = frame.f_code
                frames.append(
                    f"{code.co_name} "
                    f"({Path(code.co_filename).name}:{frame.f_lineno})"
                )
                frame = frame.f_back
            frames.reverse()  # root-first, the collapsed-stack convention
            if len(frames) > self.max_depth:
                frames = frames[-self.max_depth:]
            active = stacks.get(ident)
            if active:
                name, category = active[-1]
                phase = f"{category}:{name}" if category else name
            else:
                phase = UNTRACED
            key = (phase, tuple(frames))
            self.samples[key] = self.samples.get(key, 0) + 1
            counter.inc()

    # ------------------------------------------------------------------ #
    # reporting

    def phase_totals(self) -> Dict[str, int]:
        """Sample counts per attributed phase, descending."""
        totals: Dict[str, int] = {}
        for (phase, _), count in self.samples.items():
            totals[phase] = totals.get(phase, 0) + count
        return dict(
            sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        )

    def collapsed(self) -> str:
        """Folded-stack text: ``phase;frame;frame count`` per line."""
        lines = [
            ";".join((phase,) + frames) + f" {count}"
            for (phase, frames), count in sorted(self.samples.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self, name: str = "repro profile") -> Dict[str, object]:
        """The aggregated samples as a speedscope ``sampled`` profile.

        The phase label becomes a synthetic root frame, so the flame
        chart's first level splits by pipeline phase.  Weights are in
        seconds (sample count / hz).
        """
        frame_index: Dict[str, int] = {}
        frames: List[Dict[str, str]] = []

        def index_of(label: str) -> int:
            got = frame_index.get(label)
            if got is None:
                got = frame_index[label] = len(frames)
                frames.append({"name": label})
            return got

        samples: List[List[int]] = []
        weights: List[float] = []
        for (phase, stack), count in sorted(self.samples.items()):
            samples.append(
                [index_of(f"[{phase}]")] + [index_of(f) for f in stack]
            )
            weights.append(count / self.hz)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": "repro-tools",
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
        }

    def write_collapsed(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.collapsed())
        return path

    def write_speedscope(
        self, path: Union[str, Path], name: str = "repro profile"
    ) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.speedscope(name=name), indent=1) + "\n")
        return path
