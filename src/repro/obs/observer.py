"""The observer facade the pipeline is instrumented against.

Every instrumented component — the ParaMount drivers, executors, the HB
front-end, checkpoint journal, resilient runner — takes an optional
``observer``.  :class:`Observer` bundles the span tracer, the metrics
registry, one shared clock, and an optional progress reporter;
:class:`NullObserver` (the default, exposed as :data:`NULL_OBSERVER`) is a
no-op whose every hook returns immediately, so unobserved runs keep the
uninstrumented hot path: call sites guard non-trivial work with
``if observer.enabled``.

The contract the no-op test pins down: an observer never changes *what* a
run computes — states, stats, checkpoint bytes — only what is recorded
about it.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Dict, Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WindowedRate,
)
from repro.obs.trace import SpanTracer

__all__ = [
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "ensure_observer",
    "SpanLogHandler",
]

Clock = Callable[[], float]


class _NullContext:
    """Reusable no-op context manager for :class:`NullObserver` spans."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def annotate(self, **attrs: object) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class Observer:
    """Unified tracing + metrics + progress for one pipeline run.

    Parameters
    ----------
    clock:
        Seconds source injected into the tracer, the metrics registry, and
        (through the drivers) the per-task timing in
        :func:`repro.core.bounded.bounded_enumeration` — one clock for the
        whole run, so spans and measured stats always agree.
    progress:
        Optional :class:`~repro.obs.progress.ProgressReporter` fed by the
        drivers as tasks complete.
    """

    enabled: bool = True

    def __init__(
        self, clock: Optional[Clock] = None, progress=None
    ):
        self.clock: Clock = clock if clock is not None else time.perf_counter
        self.tracer = SpanTracer(clock=self.clock)
        self.metrics = MetricsRegistry(clock=self.clock)
        self.progress = progress
        self._rate_sampled_at = float("-inf")

    # ------------------------------------------------------------------ #
    # tracing

    def span(self, name: str, category: str = "", **attrs: object):
        """Context manager recording one span (see :class:`SpanTracer`)."""
        return self.tracer.span(name, category, **attrs)

    def instant(
        self,
        name: str,
        category: str = "",
        worker: Optional[str] = None,
        **attrs: object,
    ) -> None:
        """Zero-duration marker event (steal, retry, degradation, …)."""
        self.tracer.instant(name, category, worker=worker, **attrs)

    def record(
        self,
        name: str,
        category: str,
        t0: float,
        dt: float,
        worker: Optional[str] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        """Append one externally-timed span."""
        self.tracer.record(name, category, t0, dt, worker=worker, attrs=attrs)

    def record_epoch(
        self,
        name: str,
        category: str,
        epoch_t0: float,
        dt: float,
        worker: str,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        """Append a span shipped from a worker process (epoch timeline)."""
        self.tracer.record_epoch(
            name, category, epoch_t0, dt, worker, attrs=attrs
        )

    def set_worker(self, label: Optional[str]) -> None:
        """Pin the calling thread's lane label."""
        self.tracer.set_worker(label)

    def spans(self):
        """All spans recorded so far, sorted by start time."""
        return self.tracer.spans()

    # ------------------------------------------------------------------ #
    # metrics

    def counter(self, name: str, help: str = "", labels=None) -> Counter:
        return self.metrics.counter(name, help, labels=labels)

    def gauge(self, name: str, help: str = "", labels=None) -> Gauge:
        return self.metrics.gauge(name, help, labels=labels)

    def histogram(self, name: str, help: str = "", **kwargs) -> Histogram:
        return self.metrics.histogram(name, help, **kwargs)

    def windowed_rate(self, name: str, window: float = 10.0) -> WindowedRate:
        return self.metrics.windowed_rate(name, window=window)

    def snapshot(self) -> Dict[str, object]:
        return self.metrics.snapshot()

    def counter_sample(self, name: str, value: float) -> None:
        """Record one reading of a live level for the trace's counter track.

        Stored as a zero-duration span with category ``"counter"``; the
        Chrome exporter turns these into ``ph: "C"`` counter events, so a
        trace shows leased/pending and states/sec as plotted tracks.
        """
        self.tracer.instant(name, "counter", value=value)

    # ------------------------------------------------------------------ #
    # pipeline hooks

    def task_done(self, stats) -> None:
        """One enumeration task finished (called by the drivers).

        Feeds the canonical series (``states_enumerated_total``,
        ``intervals_enumerated_total``, ``enumeration_seconds``), the
        recent-window rates behind ``/progress`` and the live gauges, and
        the progress reporter, if any.
        """
        self.counter("states_enumerated_total").inc(stats.states)
        self.counter("intervals_enumerated_total").inc()
        self.histogram("enumeration_seconds").observe(stats.seconds)
        states_rate = self.windowed_rate("states_per_second")
        states_rate.add(stats.states)
        self.windowed_rate("intervals_per_second").add(1)
        now = self.clock()
        if now - self._rate_sampled_at >= 0.25:
            # Throttled states/sec counter track for the Chrome trace.
            self._rate_sampled_at = now
            self.counter_sample("states_per_sec", round(states_rate.rate(), 1))
        if self.progress is not None:
            self.progress.on_task_done(stats.states, stats.seconds)


class NullObserver(Observer):
    """The default observer: every hook is a no-op.

    ``enabled`` is ``False`` so instrumented code can skip building span
    attributes entirely; the methods still exist (and do nothing) so call
    sites never need a None check.
    """

    enabled = False

    def __init__(self, clock: Optional[Clock] = None, progress=None):
        super().__init__(clock=clock, progress=progress)

    def span(self, name: str, category: str = "", **attrs: object):
        return _NULL_CONTEXT

    def instant(self, name, category="", worker=None, **attrs):
        return None

    def record(self, name, category, t0, dt, worker=None, attrs=None):
        return None

    def record_epoch(self, name, category, epoch_t0, dt, worker, attrs=None):
        return None

    def set_worker(self, label):
        return None

    def counter_sample(self, name, value):
        return None

    def task_done(self, stats):
        return None


#: Shared default observer — the uninstrumented fast path.
NULL_OBSERVER = NullObserver()


class SpanLogHandler(logging.Handler):
    """Forwards ``repro`` log records into a trace as instant markers.

    Attach to the ``repro`` root (the CLI does this when ``--trace-out``
    is given) and every warning — a degradation, a quarantined record, a
    no-progress timeout — appears on the emitting worker's lane in the
    exported trace, with the record's structured ``extra={}`` fields as
    span attributes.
    """

    #: LogRecord attributes that are plumbing, not structured payload.
    _STANDARD = frozenset(
        logging.LogRecord("", 0, "", 0, "", (), None).__dict__
    ) | {"message", "asctime", "taskName"}

    def __init__(self, observer: Observer, level: int = logging.WARNING):
        super().__init__(level=level)
        self.observer = observer

    def emit(self, record: logging.LogRecord) -> None:
        try:
            extra = {
                key: value
                for key, value in record.__dict__.items()
                if key not in self._STANDARD
            }
            self.observer.instant(
                record.getMessage(),
                category="log",
                level=record.levelname,
                logger=record.name,
                **extra,
            )
        except Exception:  # pragma: no cover - never break the logged code
            self.handleError(record)


def ensure_observer(observer: Optional[Observer]) -> Observer:
    """Normalize an optional observer argument to a usable instance."""
    return observer if observer is not None else NULL_OBSERVER
