"""Summarize a captured trace file (``repro-tools obs render``).

Consumes the Chrome trace-event JSON written by ``--trace-out`` (or by
:func:`repro.obs.export.write_chrome_trace`) and renders the run as text:
wall span, per-category time, per-worker lanes with busy time and task
counts, steal/split/retry markers, and the slowest spans — the quick look
before (or instead of) opening Perfetto.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.util.tables import TextTable
from repro.util.timing import format_duration

__all__ = ["render_trace_file", "load_trace_events"]


def _recover_torn_trace(text: str, path: Union[str, Path]) -> List[dict]:
    """Salvage complete events from a truncated Chrome trace file.

    A killed run can leave the JSON cut off mid-event.  We find the
    ``traceEvents`` array and decode one event object at a time with
    ``raw_decode``; the first undecodable tail is the torn part and is
    dropped — the checkpoint journal's torn-tail policy, applied to a
    nested JSON document instead of JSON-lines.
    """
    marker = '"traceEvents"'
    start = text.find(marker)
    if start < 0:
        raise ValueError(
            f"{path} is not a Chrome trace file (no traceEvents key)"
        )
    cursor = text.find("[", start + len(marker))
    if cursor < 0:
        raise ValueError(f"{path}: traceEvents is not a list")
    cursor += 1
    decoder = json.JSONDecoder()
    events: List[dict] = []
    while True:
        while cursor < len(text) and text[cursor] in " \t\r\n,":
            cursor += 1
        if cursor >= len(text) or text[cursor] == "]":
            break
        try:
            event, cursor = decoder.raw_decode(text, cursor)
        except ValueError:
            break  # torn tail: keep the complete events before it
        if isinstance(event, dict):
            events.append(event)
    return events


def load_trace_events(path: Union[str, Path]) -> List[dict]:
    """Load and structurally validate a Chrome trace-event JSON file.

    Tolerates a torn tail: if the file is truncated mid-event (a killed
    worker or a crash during export), the complete events before the tear
    are returned and the partial one is dropped.
    """
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except ValueError:
        return _recover_torn_trace(text, path)
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError(
            f"{path} is not a Chrome trace file (no traceEvents key)"
        )
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ValueError(f"{path}: traceEvents is not a list")
    return events


def render_trace_file(path: Union[str, Path], top: int = 5) -> str:
    """Render a one-screen text summary of a Chrome trace file."""
    events = load_trace_events(path)
    lane_names: Dict[int, str] = {}
    complete: List[dict] = []
    instants: List[dict] = []
    counter_tracks: Dict[str, int] = {}
    for event in events:
        ph = event.get("ph")
        if ph == "M" and event.get("name") == "thread_name":
            lane_names[event["tid"]] = event["args"]["name"]
        elif ph == "X":
            complete.append(event)
        elif ph == "i":
            instants.append(event)
        elif ph == "C":
            name = event.get("name", "?")
            counter_tracks[name] = counter_tracks.get(name, 0) + 1

    out: List[str] = [f"trace: {path}"]
    if not complete and not instants:
        out.append("  (no spans recorded)")
        return "\n".join(out)

    t_lo = min(e["ts"] for e in complete + instants)
    t_hi = max(e["ts"] + e.get("dur", 0.0) for e in complete + instants)
    out.append(
        f"  {len(complete)} span(s), {len(instants)} marker(s), "
        f"{len(lane_names)} worker lane(s), "
        f"wall {format_duration((t_hi - t_lo) / 1e6)}"
    )

    by_category: Dict[str, List[float]] = {}
    for event in complete:
        by_category.setdefault(event.get("cat", "default"), []).append(
            event.get("dur", 0.0)
        )
    table = TextTable(["category", "spans", "total", "max"], title="By category")
    for category in sorted(by_category):
        durs = by_category[category]
        table.add_row(
            [
                category,
                len(durs),
                format_duration(sum(durs) / 1e6),
                format_duration(max(durs) / 1e6),
            ]
        )
    out.append(table.render())

    by_lane: Dict[int, List[float]] = {}
    for event in complete:
        by_lane.setdefault(event["tid"], []).append(event.get("dur", 0.0))
    marks_by_lane: Dict[int, int] = {}
    for event in instants:
        marks_by_lane[event["tid"]] = marks_by_lane.get(event["tid"], 0) + 1
    table = TextTable(
        ["worker", "spans", "busy", "markers"], title="By worker lane"
    )
    for tid in sorted(set(by_lane) | set(marks_by_lane)):
        durs = by_lane.get(tid, [])
        table.add_row(
            [
                lane_names.get(tid, f"tid-{tid}"),
                len(durs),
                format_duration(sum(durs) / 1e6),
                marks_by_lane.get(tid, 0),
            ]
        )
    out.append(table.render())

    marker_counts: Dict[str, int] = {}
    for event in instants:
        key = f"{event.get('cat', 'default')}:{event['name']}"
        marker_counts[key] = marker_counts.get(key, 0) + 1
    if marker_counts:
        rendered = ", ".join(
            f"{key}×{count}" for key, count in sorted(marker_counts.items())
        )
        out.append(f"  markers: {rendered}")

    if counter_tracks:
        rendered = ", ".join(
            f"{name}×{count}"
            for name, count in sorted(counter_tracks.items())
        )
        out.append(f"  counter tracks: {rendered}")

    slowest = sorted(complete, key=lambda e: -e.get("dur", 0.0))[:top]
    if slowest:
        table = TextTable(
            ["span", "category", "worker", "duration"],
            title=f"Slowest {len(slowest)} span(s)",
        )
        for event in slowest:
            table.add_row(
                [
                    event["name"],
                    event.get("cat", "default"),
                    lane_names.get(event["tid"], f"tid-{event['tid']}"),
                    format_duration(event.get("dur", 0.0) / 1e6),
                ]
            )
        out.append(table.render())
    return "\n".join(out)
