"""HTTP ops endpoint: ``/metrics``, ``/healthz``, ``/progress``.

The ROADMAP's north star is a long-running service, and a service is
operated through a scrape port, not an exported file.  This module mounts
a stdlib ``ThreadingHTTPServer`` (daemon threads, so a hung scrape never
blocks shutdown) over a live :class:`~repro.obs.observer.Observer`:

* ``GET /metrics`` — the Prometheus text exposition of the observer's
  *current* snapshot, including histogram buckets and per-host labeled
  series when mounted on a distributed coordinator.
* ``GET /healthz`` — liveness JSON; returns 503 when the mounting
  component reports itself degraded (e.g. a coordinator with outstanding
  work and no connected workers), 200 otherwise.
* ``GET /progress`` — a JSON progress document: intervals done/total,
  recent-window rates (states/sec, intervals/sec), and per-worker load.

Providers are injected by the mounting site (CLI run loop, dist
coordinator), so the endpoint itself stays policy-free.  Binding to
port 0 picks an ephemeral port, exposed as :attr:`OpsEndpoint.port` —
tests and the CLI print the resolved URL.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from repro.obs.export import prometheus_text
from repro.obs.observer import Observer

__all__ = ["OpsEndpoint"]

Provider = Callable[[], Dict[str, object]]


class OpsEndpoint:
    """A scrapeable ops server bound to one observer.

    Parameters
    ----------
    observer:
        Source of ``/metrics`` snapshots and the default progress data.
    host, port:
        Bind address; ``port=0`` (the default) picks a free port.
    progress_provider:
        Optional callable returning the ``/progress`` JSON document;
        defaults to a summary of the observer's own snapshot.
    health_provider:
        Optional callable returning the ``/healthz`` JSON document; any
        ``status`` other than ``"ok"`` is served with HTTP 503.
    """

    def __init__(
        self,
        observer: Observer,
        host: str = "127.0.0.1",
        port: int = 0,
        progress_provider: Optional[Provider] = None,
        health_provider: Optional[Provider] = None,
    ):
        self.observer = observer
        self.progress_provider = progress_provider or self._default_progress
        self.health_provider = health_provider or (lambda: {"status": "ok"})
        endpoint = self

        class _Handler(BaseHTTPRequestHandler):
            daemon_threads = True

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                endpoint._serve(self)

            def log_message(self, *args: object) -> None:
                pass  # scrapes must not spam the run's stderr

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="obs-http", daemon=True
        )

    # ------------------------------------------------------------------ #
    # lifecycle

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "OpsEndpoint":
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "OpsEndpoint":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # routes

    def _default_progress(self) -> Dict[str, object]:
        snapshot = self.observer.snapshot()
        counters = snapshot.get("counters", {})
        return {
            "intervals_done": counters.get("intervals_enumerated_total", 0),
            "states": counters.get("states_enumerated_total", 0),
            "rates": snapshot.get("rates", {}),
            "gauges": snapshot.get("gauges", {}),
        }

    def _serve(self, handler: BaseHTTPRequestHandler) -> None:
        path = handler.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = prometheus_text(self.observer.snapshot()).encode()
                content_type = "text/plain; version=0.0.4; charset=utf-8"
                status = 200
            elif path == "/healthz":
                health = self.health_provider()
                body = (json.dumps(health, sort_keys=True) + "\n").encode()
                content_type = "application/json"
                status = 200 if health.get("status") == "ok" else 503
            elif path == "/progress":
                body = (
                    json.dumps(self.progress_provider(), sort_keys=True) + "\n"
                ).encode()
                content_type = "application/json"
                status = 200
            else:
                body = b'{"error": "not found"}\n'
                content_type = "application/json"
                status = 404
        except Exception as exc:  # a broken provider must not kill a scrape
            body = (json.dumps({"error": str(exc)}) + "\n").encode()
            content_type = "application/json"
            status = 500
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)
