"""Pipeline metrics: counters, gauges, histograms, windowed rates.

The registry mirrors the axes the related work measures — states/second
and work accounting (arXiv:2008.12516), per-level memory (arXiv:1707.07788)
— as first-class series the exporters can ship:

* :class:`Counter` — monotone totals (``states_enumerated_total``,
  ``steals_total``).  Increments land in lock-free per-thread cells (the
  same discipline as the span tracer) and are summed at snapshot time, so
  a counter bump on the enumeration hot path is an attribute lookup and an
  integer add, no lock.
* :class:`Gauge` — last-write-wins level (``intervals_pending``).
* :class:`~repro.obs.timeseries.Histogram` — fixed log-spaced cumulative
  buckets with the same per-thread-cell discipline, plus p50/p95/p99
  estimates in every snapshot (``enumeration_seconds``),
  Prometheus-compatible.
* :class:`~repro.obs.timeseries.WindowedRate` — recent-window rates
  (``states_per_second``) for live dashboards and ETA, exported as gauges.

Series may carry **labels** (``labels={"host": "host0"}``): the registry
keys the instance by ``name{k="v",…}`` and the Prometheus exporter splits
the key back into name and label set, so per-host series from a
distributed coordinator coexist with the unlabeled totals.

:data:`METRIC_INVENTORY` is the registry of record for every series the
codebase emits — name, type, and help text.  The exporter draws its
``# HELP``/``# TYPE`` lines from it, and a pin test greps the source tree
for registrations to prove no counter is incremented anywhere without an
inventory entry (so a scrape is always self-describing).

Snapshots are plain dicts with deterministically ordered keys; under an
injected fake clock two identical runs snapshot byte-identically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.timeseries import (
    DEFAULT_SECONDS_BUCKETS,
    Histogram,
    WindowedRate,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "WindowedRate",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "METRIC_INVENTORY",
    "series_key",
    "split_series_key",
    "inventory_entry",
]

Clock = Callable[[], float]

#: Every metric series the codebase registers, name -> (type, help).
#: The Prometheus exporter emits ``# HELP``/``# TYPE`` from this table and
#: ``tests/test_obs_inventory.py`` greps registrations against it, so a
#: new ``observer.counter("x_total")`` call site without an entry here
#: fails the build, not the dashboard.
METRIC_INVENTORY: Dict[str, Tuple[str, str]] = {
    # enumeration core
    "states_enumerated_total": (
        "counter", "Consistent global states enumerated across all intervals."
    ),
    "intervals_enumerated_total": (
        "counter", "Interval tasks completed (sub-tasks counted separately)."
    ),
    "enumeration_seconds": (
        "histogram", "Wall-clock seconds per interval enumeration task."
    ),
    "states_per_second": (
        "gauge", "Recent-window enumeration rate in states per second."
    ),
    "intervals_per_second": (
        "gauge", "Recent-window interval completion rate per second."
    ),
    "queue_depth": (
        "gauge", "Interval tasks not yet completed by the current executor."
    ),
    "tasks_queued": (
        "gauge", "Tasks left in the work-stealing deques at the last steal."
    ),
    "intervals_split_total": (
        "counter", "Oversized intervals split by the adaptive scheduler."
    ),
    "packed_kernel_fallbacks_total": (
        "counter",
        "Packed-subroutine runs that fell back from the bitmask kernel "
        "to the array kernel (poset exceeded BITMASK_MAX_EVENTS).",
    ),
    # executors / resilience
    "steals_total": (
        "counter", "Tasks executed by a worker other than the one dealt to."
    ),
    "retry_attempts_total": (
        "counter", "Interval task resubmissions by the resilient executors."
    ),
    "checkpoint_records_total": (
        "counter", "Interval records flushed to the checkpoint journal."
    ),
    # online front-end
    "events_inserted_total": (
        "counter", "Events inserted into the online enumeration front-end."
    ),
    "events_quarantined_total": (
        "counter", "Malformed trace events quarantined by the online reader."
    ),
    # detector
    "predicate_checks_total": (
        "counter", "Predicate evaluations performed during detection."
    ),
    "hb_events_total": (
        "counter", "Events stamped by the happened-before front-end."
    ),
    "predicates_fast_pathed_total": (
        "counter", "Predicates routed to a slicing fast path by the planner."
    ),
    "predicates_demoted_total": (
        "counter", "Predicates demoted to full enumeration (unsound claims)."
    ),
    # distributed backend
    "leases_expired_total": (
        "counter", "Interval leases that expired without an acknowledgement."
    ),
    "redispatches_total": (
        "counter", "Interval tasks re-queued after lease expiry or worker loss."
    ),
    "duplicate_acks_total": (
        "counter", "Acknowledgements dropped because the task already committed."
    ),
    "stale_acks_total": (
        "counter", "Acknowledgements refused for a mismatched poset digest."
    ),
    "stale_workers_total": (
        "counter", "Workers rejected at handshake for a mismatched digest."
    ),
    "task_errors_total": (
        "counter", "Interval tasks that raised on a worker (task-error)."
    ),
    "leases_pending": (
        "gauge", "Distributed tasks waiting for a worker lease."
    ),
    "leases_leased": (
        "gauge", "Distributed tasks currently leased to a worker."
    ),
    "leases_committed": (
        "gauge", "Distributed tasks committed exactly once to the journal."
    ),
    "dist_workers_connected": (
        "gauge", "Worker connections currently held by the coordinator."
    ),
    # profiler
    "profiler_samples_total": (
        "counter", "Stack samples captured by the sampling profiler."
    ),
}


def inventory_entry(name: str) -> Optional[Tuple[str, str]]:
    """The ``(type, help)`` inventory row for a series base name, if any."""
    return METRIC_INVENTORY.get(name)


def series_key(name: str, labels: Optional[Mapping[str, str]] = None) -> str:
    """The registry key for a series: ``name`` or ``name{k="v",…}``."""
    if not labels:
        return name
    rendered = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{rendered}}}"


def split_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`series_key` back into ``(name, labels)``."""
    name, brace, rest = key.partition("{")
    if not brace:
        return key, {}
    labels: Dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if not part:
            continue
        label, _, value = part.partition("=")
        labels[label] = value.strip('"')
    return name, labels


class Counter:
    """A monotone counter with lock-free per-thread cells."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._local = threading.local()
        self._lock = threading.Lock()
        self._cells: List[List[float]] = []

    def _cell(self) -> List[float]:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = self._local.cell = [0.0]
            with self._lock:
                self._cells.append(cell)
        return cell

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be ≥ 0) to the calling thread's cell."""
        self._cell()[0] += amount

    def value(self) -> float:
        """Total across every thread's cell."""
        with self._lock:
            return sum(cell[0] for cell in self._cells)


class Gauge:
    """A settable level (last write wins; ``inc``/``dec`` are convenience)."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    def value(self) -> float:
        with self._lock:
            return self._value


class MetricsRegistry:
    """Creates and snapshots the pipeline's metric series.

    ``counter``/``gauge``/``histogram``/``windowed_rate`` are
    get-or-create: the same name (and label set) always returns the same
    instance, so call sites need no coordination.
    """

    def __init__(self, clock: Optional[Clock] = None):
        self.clock: Clock = clock if clock is not None else time.perf_counter
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._rates: Dict[str, WindowedRate] = {}

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        key = series_key(name, labels)
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(key, help)
            return metric

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        key = series_key(name, labels)
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge(key, help)
            return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        key = series_key(name, labels)
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(key, help, buckets)
            return metric

    def windowed_rate(
        self,
        name: str,
        window: float = 10.0,
        labels: Optional[Mapping[str, str]] = None,
    ) -> WindowedRate:
        key = series_key(name, labels)
        with self._lock:
            metric = self._rates.get(key)
            if metric is None:
                metric = self._rates[key] = WindowedRate(
                    key, window=window, clock=self.clock
                )
            return metric

    def snapshot(self) -> Dict[str, object]:
        """Deterministically ordered dump of every series.

        ``at`` is the registry clock's reading, so snapshots taken under a
        fake clock are fully reproducible.  Windowed rates appear under
        ``rates`` as their current per-second reading.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            rates = dict(self._rates)
        return {
            "at": self.clock(),
            "counters": {
                name: counters[name].value() for name in sorted(counters)
            },
            "gauges": {name: gauges[name].value() for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].snapshot() for name in sorted(histograms)
            },
            "rates": {name: rates[name].rate() for name in sorted(rates)},
        }
