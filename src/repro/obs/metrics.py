"""Pipeline metrics: counters, gauges, histograms with a snapshot API.

The registry mirrors the axes the related work measures — states/second
and work accounting (arXiv:2008.12516), per-level memory (arXiv:1707.07788)
— as first-class series the exporters can ship:

* :class:`Counter` — monotone totals (``states_enumerated_total``,
  ``steals_total``).  Increments land in lock-free per-thread cells (the
  same discipline as the span tracer) and are summed at snapshot time, so
  a counter bump on the enumeration hot path is an attribute lookup and an
  integer add, no lock.
* :class:`Gauge` — last-write-wins level (``intervals_pending``).
* :class:`Histogram` — fixed cumulative buckets plus sum/count
  (``enumeration_seconds``), Prometheus-compatible.

Snapshots are plain dicts with deterministically ordered keys; under an
injected fake clock two identical runs snapshot byte-identically.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
]

Clock = Callable[[], float]

#: Default histogram bucket bounds for second-valued series: exponential
#: from 10µs to ~100s, the observed range of interval enumeration tasks.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 100.0,
)


class Counter:
    """A monotone counter with lock-free per-thread cells."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._local = threading.local()
        self._lock = threading.Lock()
        self._cells: List[List[float]] = []

    def _cell(self) -> List[float]:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = self._local.cell = [0.0]
            with self._lock:
                self._cells.append(cell)
        return cell

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be ≥ 0) to the calling thread's cell."""
        self._cell()[0] += amount

    def value(self) -> float:
        """Total across every thread's cell."""
        with self._lock:
            return sum(cell[0] for cell in self._cells)


class Gauge:
    """A settable level (last write wins; ``inc``/``dec`` are convenience)."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are the upper bounds of the non-``+Inf`` buckets, strictly
    increasing; every observation also lands in the implicit ``+Inf``
    bucket and in ``sum``/``count``.
    """

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ):
        bounds = tuple(buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram buckets must be strictly increasing: {bounds}")
        self.name = name
        self.help = help
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +Inf is the last slot
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation (per-task, not per-state — lock is fine)."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Dict[str, object]:
        """Cumulative bucket counts keyed by upper bound, plus sum/count."""
        with self._lock:
            counts = list(self._counts)
            total, n = self._sum, self._count
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            cumulative[repr(bound)] = running
        cumulative["+Inf"] = running + counts[-1]
        return {"buckets": cumulative, "sum": total, "count": n}


class MetricsRegistry:
    """Creates and snapshots the pipeline's metric series.

    ``counter``/``gauge``/``histogram`` are get-or-create: the same name
    always returns the same instance, so call sites need no coordination.
    """

    def __init__(self, clock: Optional[Clock] = None):
        self.clock: Clock = clock if clock is not None else time.perf_counter
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name, help)
            return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name, help)
            return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, help, buckets)
            return metric

    def snapshot(self) -> Dict[str, object]:
        """Deterministically ordered dump of every series.

        ``at`` is the registry clock's reading, so snapshots taken under a
        fake clock are fully reproducible.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "at": self.clock(),
            "counters": {
                name: counters[name].value() for name in sorted(counters)
            },
            "gauges": {name: gauges[name].value() for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].snapshot() for name in sorted(histograms)
            },
        }
