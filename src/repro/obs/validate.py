"""Structural validators for exported telemetry.

Used by the test suite and by CI smoke jobs to check artifacts the way a
downstream consumer would:

* :func:`validate_chrome_trace` — the Trace Event Format rules Perfetto
  relies on: every lane event points at a declared lane, duration events
  are balanced per lane (``B``/``E`` nesting, non-negative ``X``
  durations), per-lane timestamps are monotone, and counter tracks carry
  numeric samples.
* :func:`validate_prometheus_text` — the text exposition format rules a
  Prometheus scraper enforces: every sample line parses, every family is
  announced by exactly one ``# TYPE`` (and its samples follow it), and
  histogram families ship ``_bucket``/``_sum``/``_count`` series with
  cumulative, ``+Inf``-terminated buckets.

Both return a list of human-readable problems — empty means valid — so a
test can assert emptiness and print the failures verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["validate_chrome_trace", "validate_prometheus_text"]

_PROM_KINDS = {"counter", "gauge", "histogram", "summary", "untyped"}


def validate_chrome_trace(events: Sequence[dict]) -> List[str]:
    """Structural problems in a Chrome trace-event list (empty = valid)."""
    problems: List[str] = []
    declared_tids = set()
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            declared_tids.add((event.get("pid"), event.get("tid")))

    open_stacks: Dict[Tuple[object, object], List[str]] = {}
    last_ts: Dict[Tuple[object, object], float] = {}
    counter_samples = 0
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph is None:
            problems.append(f"event {i}: missing ph")
            continue
        if ph == "M":
            continue
        lane = (event.get("pid"), event.get("tid"))
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i} ({event.get('name')}): missing ts")
            continue
        if ph == "C":
            value = event.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                problems.append(
                    f"event {i} (counter {event.get('name')}): "
                    f"non-numeric value {value!r}"
                )
            counter_samples += 1
            continue
        if lane not in declared_tids:
            problems.append(
                f"event {i} ({event.get('name')}): lane {lane} has no "
                f"thread_name metadata"
            )
        if ts < last_ts.get(lane, float("-inf")):
            problems.append(
                f"event {i} ({event.get('name')}): ts {ts} goes backwards "
                f"on lane {lane} (last {last_ts[lane]})"
            )
        last_ts[lane] = ts
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"event {i} ({event.get('name')}): bad dur {dur!r}"
                )
        elif ph == "B":
            open_stacks.setdefault(lane, []).append(event.get("name", "?"))
        elif ph == "E":
            stack = open_stacks.get(lane, [])
            if not stack:
                problems.append(
                    f"event {i}: E without matching B on lane {lane}"
                )
            else:
                stack.pop()
        elif ph not in ("i", "I"):
            problems.append(f"event {i}: unknown ph {ph!r}")
    for lane, stack in open_stacks.items():
        if stack:
            problems.append(
                f"lane {lane}: {len(stack)} unclosed B event(s): {stack}"
            )
    return problems


def _parse_sample(line: str) -> Tuple[str, Dict[str, str], float]:
    """Split ``name{labels} value`` into parts; raises ValueError."""
    body, _, value_text = line.rpartition(" ")
    if not body:
        raise ValueError("no value")
    value = float(value_text)  # NaN/inf accepted, like Prometheus
    name, brace, rest = body.partition("{")
    labels: Dict[str, str] = {}
    if brace:
        if not rest.endswith("}"):
            raise ValueError("unterminated label set")
        for part in rest[:-1].split(","):
            if not part:
                continue
            key, eq, raw = part.partition("=")
            if not eq or not (raw.startswith('"') and raw.endswith('"')):
                raise ValueError(f"bad label {part!r}")
            labels[key] = raw[1:-1]
    return name, labels, value


def validate_prometheus_text(text: str) -> List[str]:
    """Problems in a Prometheus text exposition (empty = valid)."""
    problems: List[str] = []
    typed: Dict[str, str] = {}
    buckets: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    sampled_families = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {lineno}: malformed comment {line!r}")
                continue
            if parts[1] == "TYPE":
                family, kind = parts[2], parts[3] if len(parts) > 3 else ""
                if kind not in _PROM_KINDS:
                    problems.append(
                        f"line {lineno}: unknown type {kind!r} for {family}"
                    )
                if family in typed:
                    problems.append(
                        f"line {lineno}: duplicate # TYPE for {family}"
                    )
                typed[family] = kind
            continue
        try:
            name, labels, value = _parse_sample(line)
        except ValueError as exc:
            problems.append(f"line {lineno}: unparseable sample {line!r}: {exc}")
            continue
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
                break
        if family not in typed:
            problems.append(
                f"line {lineno}: sample {name} precedes its # TYPE line"
            )
        sampled_families.add(family)
        if name.endswith("_bucket") and typed.get(family) == "histogram":
            series = {k: v for k, v in labels.items() if k != "le"}
            key = family + repr(sorted(series.items()))
            buckets.setdefault(key, []).append((labels, value))
    for key, series in buckets.items():
        running = float("-inf")
        for labels, count in series:
            if count < running:
                problems.append(
                    f"{key}: bucket counts not cumulative at "
                    f"le={labels.get('le')!r}"
                )
            running = count
        if series and series[-1][0].get("le") != "+Inf":
            problems.append(f"{key}: bucket series does not end at +Inf")
    for family in typed:
        if family not in sampled_families:
            problems.append(f"family {family}: # TYPE with no samples")
    return problems
