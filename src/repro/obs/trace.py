"""Low-overhead span tracing for the enumeration pipeline.

A *span* is one timed unit of pipeline work — a vector-clock pass, an
interval enumeration task, a checkpoint flush — recorded as
``(name, category, t0, dt, worker, attrs)``.  The design constraints come
straight from the paper's evaluation story (wall-clock speedup, Figures
10–11): the instrument must not perturb what it measures.

* **Explicit clock injection.** Every timestamp comes from one injected
  ``clock`` callable (default ``time.perf_counter``).  Tests inject a fake
  clock and get byte-deterministic spans; the measured-seconds plumbing in
  :mod:`repro.core.bounded` uses the *same* clock, so span durations and
  :class:`~repro.core.metrics.IntervalStats.seconds` never disagree.
* **Lock-free per-thread buffers.** Each recording thread appends to its
  own list (``threading.local``); the tracer's lock is taken only when a
  thread's buffer is first registered and when spans are drained — never
  on the recording hot path.
* **Cross-process shipping.** Worker processes cannot share the parent's
  ``perf_counter`` timeline, so they record spans against the epoch clock
  (``time.time``) and the parent rebases them via the anchor pair the
  tracer captured at construction (:meth:`SpanTracer.record_epoch`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from functools import wraps
from typing import Callable, Dict, List, Optional

__all__ = ["Span", "SpanTracer"]

Clock = Callable[[], float]


@dataclass(frozen=True)
class Span:
    """One timed unit of pipeline work on the tracer's clock timeline."""

    name: str
    category: str
    #: Start time in seconds on the tracer's (injected) clock.
    t0: float
    #: Duration in seconds; ``0.0`` marks an instant event.
    dt: float
    #: Lane label — the worker (thread name, ``pid-…``, …) that did the work.
    worker: str
    #: Small JSON-able annotations (event id, states, stolen, …).
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def is_instant(self) -> bool:
        """True for zero-duration marker events (steals, retries, logs)."""
        return self.dt == 0.0


class _SpanContext:
    """Context manager recording one span on exit (one allocation per span)."""

    __slots__ = ("_tracer", "_name", "_category", "_attrs", "_t0", "_pushed")

    def __init__(self, tracer: "SpanTracer", name: str, category: str, attrs):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attrs = attrs

    def __enter__(self) -> "_SpanContext":
        tracer = self._tracer
        # Active-stack maintenance is opt-in (a sampling profiler is
        # attached); the common traced path pays one attribute check.
        if tracer.track_active:
            ident = threading.get_ident()
            stack = tracer.active.get(ident)
            if stack is None:
                stack = tracer.active[ident] = []
            stack.append((self._name, self._category))
            self._pushed = True
        else:
            self._pushed = False
        self._t0 = tracer.clock()
        return self

    def annotate(self, **attrs: object) -> None:
        """Attach attributes discovered while the span is open."""
        self._attrs = {**self._attrs, **attrs}

    def __exit__(self, exc_type, exc, tb) -> None:
        t0 = self._t0
        tracer = self._tracer
        attrs = self._attrs
        if exc_type is not None:
            attrs = {**attrs, "error": exc_type.__name__}
        tracer.record(
            self._name, self._category, t0, tracer.clock() - t0, attrs=attrs
        )
        if self._pushed:
            stack = tracer.active.get(threading.get_ident())
            if stack:
                stack.pop()


class SpanTracer:
    """Records spans into lock-free per-thread buffers.

    Parameters
    ----------
    clock:
        Monotonic seconds source shared by every span (default
        ``time.perf_counter``).  Injecting a fake clock makes the whole
        trace deterministic.
    """

    def __init__(self, clock: Optional[Clock] = None):
        self.clock: Clock = clock if clock is not None else time.perf_counter
        self._local = threading.local()
        self._lock = threading.Lock()
        self._buffers: List[List[Span]] = []
        #: When True (a sampling profiler is attached), span contexts
        #: maintain :attr:`active` — per-thread stacks of open
        #: ``(name, category)`` pairs — so samples can be attributed to
        #: the pipeline phase that was running.  Off by default: the
        #: traced-but-unprofiled path must not pay for stack upkeep.
        self.track_active = False
        #: thread ident -> stack of open ``(name, category)`` pairs.
        #: Each thread mutates only its own list; the profiler thread
        #: reads concurrently (GIL-atomic list ops make that safe).
        self.active: Dict[int, List] = {}
        #: Anchor pair for rebasing epoch-clock spans shipped from worker
        #: processes onto this tracer's timeline.
        self.anchor_perf = self.clock()
        self.anchor_epoch = time.time()

    # ------------------------------------------------------------------ #
    # recording

    def _buffer(self) -> List[Span]:
        buf = getattr(self._local, "buf", None)
        if buf is None:
            buf = self._local.buf = []
            with self._lock:
                self._buffers.append(buf)
        return buf

    def set_worker(self, label: Optional[str]) -> None:
        """Pin the calling thread's lane label (default: the thread name)."""
        self._local.worker = label

    def current_worker(self) -> str:
        """The calling thread's lane label."""
        label = getattr(self._local, "worker", None)
        return label if label is not None else threading.current_thread().name

    def record(
        self,
        name: str,
        category: str,
        t0: float,
        dt: float,
        worker: Optional[str] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        """Append one already-timed span (the hot-path primitive)."""
        self._buffer().append(
            Span(
                name=name,
                category=category,
                t0=t0,
                dt=dt,
                worker=worker if worker is not None else self.current_worker(),
                attrs=attrs if attrs is not None else {},
            )
        )

    def record_epoch(
        self,
        name: str,
        category: str,
        epoch_t0: float,
        dt: float,
        worker: str,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        """Append a span timed on the epoch clock in another process.

        The worker's ``time.time()`` start is rebased onto this tracer's
        timeline through the anchor pair captured at construction; ``dt``
        is the worker's own (accurate) duration measurement and is kept
        as-is.
        """
        t0 = self.anchor_perf + (epoch_t0 - self.anchor_epoch)
        self.record(name, category, t0, dt, worker=worker, attrs=attrs)

    def instant(
        self,
        name: str,
        category: str = "",
        worker: Optional[str] = None,
        **attrs: object,
    ) -> None:
        """Record a zero-duration marker (a steal, a retry, a log line)."""
        self.record(name, category, self.clock(), 0.0, worker=worker, attrs=attrs)

    def span(self, name: str, category: str = "", **attrs: object) -> _SpanContext:
        """Context manager timing a block::

            with tracer.span("plan_schedule", "plan", workers=8):
                ...
        """
        return _SpanContext(self, name, category, attrs)

    def traced(self, name: Optional[str] = None, category: str = ""):
        """Decorator form of :meth:`span` (span name defaults to __name__)."""

        def decorate(fn):
            span_name = name if name is not None else fn.__name__

            @wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name, category):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def active_stacks(self) -> Dict[int, List]:
        """Snapshot of the open-span stacks (profiler attribution source).

        Only meaningful while :attr:`track_active` is on; returns shallow
        copies so the caller can inspect them without racing the owners.
        """
        return {
            ident: list(stack) for ident, stack in list(self.active.items())
        }

    # ------------------------------------------------------------------ #
    # draining

    def spans(self) -> List[Span]:
        """All spans recorded so far, merged across threads, by start time."""
        with self._lock:
            merged = [span for buf in self._buffers for span in buf]
        merged.sort(key=lambda s: (s.t0, s.dt))
        return merged

    def clear(self) -> None:
        """Drop every recorded span (buffers stay registered)."""
        with self._lock:
            for buf in self._buffers:
                del buf[:]

    def __len__(self) -> int:
        with self._lock:
            return sum(len(buf) for buf in self._buffers)
