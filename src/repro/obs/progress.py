"""Live progress reporting for long enumerations.

The reporter is fed by the drivers (``OnlineParaMount.insert`` per event,
``ParaMount`` per finished task) and prints a rate-limited one-line status:

    progress: events=1,204 intervals 970/1,204 done (pending 234) states=88,410 (41,205 states/s) eta 12s

It is deliberately dumb — no terminal control, one line per emission — so
it composes with log output and CI transcripts.  The emission clock is
injected for testability; the rate limit, not the caller, decides when a
line is actually written.

The states/sec figure and the ETA come from a **recent-window** rate
(:class:`~repro.obs.timeseries.WindowedRate`), not the run-cumulative
average: on skewed posets the cumulative average is dominated by a cold
start or one giant early interval and the old ETA could be off by an
order of magnitude for most of the run.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Callable, Optional, TextIO

from repro.obs.timeseries import WindowedRate
from repro.util.timing import format_duration

__all__ = ["ProgressReporter"]

Clock = Callable[[], float]


class ProgressReporter:
    """Rate-limited progress lines for an enumeration run.

    Parameters
    ----------
    stream:
        Output stream (default ``sys.stderr``).
    min_interval:
        Minimum seconds between emitted lines (``0`` = every update).
    clock:
        Seconds source for rate limiting and the states/sec rate.
    total_tasks:
        Optional known task count (offline runs), rendered as ``done/total``.
    window:
        Width in seconds of the recent window behind the displayed
        states/sec rate and the ETA.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval: float = 0.5,
        clock: Optional[Clock] = None,
        total_tasks: Optional[int] = None,
        window: float = 10.0,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.clock: Clock = clock if clock is not None else time.perf_counter
        self.total_tasks = total_tasks
        self._lock = threading.Lock()
        self._t_start = self.clock()
        self._t_last = float("-inf")
        self.events_inserted = 0
        self.tasks_done = 0
        self.states = 0
        self.lines_emitted = 0
        self._states_rate = WindowedRate(
            "progress_states", window=window, clock=self.clock
        )
        self._tasks_rate = WindowedRate(
            "progress_tasks", window=window, clock=self.clock
        )

    # ------------------------------------------------------------------ #
    # driver hooks

    def set_total(self, total_tasks: int) -> None:
        """Declare the task count once the schedule is planned."""
        with self._lock:
            self.total_tasks = total_tasks

    def on_event(self) -> None:
        """One event inserted (online runs)."""
        with self._lock:
            self.events_inserted += 1
            self._maybe_emit()

    def on_task_done(self, states: int, seconds: float) -> None:
        """One interval task finished."""
        with self._lock:
            self.tasks_done += 1
            self.states += states
            self._states_rate.add(states)
            self._tasks_rate.add(1)
            self._maybe_emit()

    def close(self) -> None:
        """Emit the final line unconditionally."""
        with self._lock:
            self._maybe_emit(force=True)

    # ------------------------------------------------------------------ #

    def _maybe_emit(self, force: bool = False) -> None:
        now = self.clock()
        if not force and now - self._t_last < self.min_interval:
            return
        self._t_last = now
        rate = self._states_rate.rate()
        if self.total_tasks is not None:
            pending = max(self.total_tasks - self.tasks_done, 0)
            intervals = f"intervals {self.tasks_done:,}/{self.total_tasks:,} done"
        else:
            pending = max(self.events_inserted - self.tasks_done, 0)
            intervals = f"intervals {self.tasks_done:,} done"
        parts = ["progress:"]
        if self.events_inserted:
            parts.append(f"events={self.events_inserted:,}")
        parts.append(f"{intervals} (pending {pending:,})")
        parts.append(f"states={self.states:,} ({rate:,.0f} states/s)")
        task_rate = self._tasks_rate.rate()
        if self.total_tasks is not None and pending > 0 and task_rate > 0:
            parts.append(f"eta {format_duration(pending / task_rate)}")
        self.stream.write(" ".join(parts) + "\n")
        flush = getattr(self.stream, "flush", None)
        if flush is not None:
            flush()
        self.lines_emitted += 1
