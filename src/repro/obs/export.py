"""Exporters: Chrome trace-event JSON, Prometheus text, JSON-lines.

* :func:`chrome_trace` — the Trace Event Format consumed by Perfetto and
  ``chrome://tracing``: one ``pid`` for the run, one ``tid`` **lane per
  worker** (thread or worker process), complete events (``ph="X"``) for
  timed spans and instant events (``ph="i"``) for markers like steals and
  retries.  Timestamps are microseconds relative to the earliest span, so
  a trace from an injected fake clock is byte-deterministic.
* :func:`prometheus_text` — the Prometheus exposition format for a
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`: every family gets
  its ``# HELP``/``# TYPE`` header (help text from
  :data:`~repro.obs.metrics.METRIC_INVENTORY`), labeled series render
  their label sets, histograms ship cumulative ``_bucket`` lines, and
  windowed rates are exported as gauges.
* :func:`spans_jsonl` / :func:`read_spans_jsonl` — one span per line, for
  ad-hoc ``jq``-style analysis and the log-shipping path.  The reader is
  torn-tail tolerant with the checkpoint journal's policy: a truncated
  *final* line (a killed worker mid-write) is discarded, but a valid line
  after a torn one means corruption, not truncation, and raises.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.obs.metrics import inventory_entry, split_series_key
from repro.obs.trace import Span

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    "spans_jsonl",
    "write_spans_jsonl",
    "read_spans_jsonl",
]

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _lane_order(spans: Sequence[Span]) -> List[str]:
    """Worker lane labels in order of first appearance (by start time)."""
    lanes: List[str] = []
    seen = set()
    for span in sorted(spans, key=lambda s: s.t0):
        if span.worker not in seen:
            seen.add(span.worker)
            lanes.append(span.worker)
    return lanes


def chrome_trace(spans: Sequence[Span], pid: int = 1) -> Dict[str, object]:
    """Render spans as a Chrome trace-event JSON object.

    Load the written file in https://ui.perfetto.dev or chrome://tracing:
    each worker is one named lane; splits show up as ``schedule`` spans,
    steals as instant markers on the thief's lane.  Spans with category
    ``"counter"`` (recorded by ``Observer.counter_sample``) become
    ``ph="C"`` counter events — plotted tracks of live levels such as
    states/sec and leased/pending — rather than lane markers.
    """
    counters = [s for s in spans if s.category == "counter"]
    spans = [s for s in spans if s.category != "counter"]
    lanes = _lane_order(spans)
    tid_of = {lane: tid for tid, lane in enumerate(lanes)}
    t_base = min((s.t0 for s in spans + counters), default=0.0)
    events: List[Dict[str, object]] = []
    for tid, lane in enumerate(lanes):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": lane},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )
    for span in sorted(spans, key=lambda s: (s.t0, s.dt)):
        ts = (span.t0 - t_base) * 1e6
        event: Dict[str, object] = {
            "name": span.name,
            "cat": span.category or "default",
            "pid": pid,
            "tid": tid_of[span.worker],
            "ts": ts,
            "args": dict(span.attrs),
        }
        if span.is_instant:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped marker
        else:
            event["ph"] = "X"
            event["dur"] = span.dt * 1e6
        events.append(event)
    for span in sorted(counters, key=lambda s: s.t0):
        events.append(
            {
                "name": span.name,
                "cat": "counter",
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": (span.t0 - t_base) * 1e6,
                "args": {"value": span.attrs.get("value", 0)},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, Path], spans: Sequence[Span], pid: int = 1
) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(spans, pid=pid), indent=1) + "\n")
    return path


# ---------------------------------------------------------------------- #
# Prometheus


def _metric_name(name: str) -> str:
    """Sanitize and namespace a series name for Prometheus exposition."""
    name = _METRIC_NAME_RE.sub("_", name)
    return name if name.startswith("repro_") else f"repro_{name}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _labels_suffix(
    labels: Dict[str, str], extra: Union[Dict[str, str], None] = None
) -> str:
    items = dict(labels)
    if extra:
        items.update(extra)
    if not items:
        return ""
    body = ",".join(f'{key}="{items[key]}"' for key in sorted(items))
    return "{" + body + "}"


def _families(section: Dict[str, object]) -> List[Tuple[str, List[Tuple[Dict[str, str], object]]]]:
    """Group a snapshot section's series keys into (base name, series) families.

    Snapshot sections are sorted by series key, so the unlabeled series of
    a family (plain ``name``) always precedes its labeled siblings
    (``name{...}``) and family order is deterministic.
    """
    grouped: Dict[str, List[Tuple[Dict[str, str], object]]] = {}
    for key, value in section.items():
        base, labels = split_series_key(key)
        grouped.setdefault(base, []).append((labels, value))
    return sorted(grouped.items())


def _family_header(lines: List[str], base: str, kind: str) -> str:
    metric = _metric_name(base)
    entry = inventory_entry(base)
    if entry is not None:
        lines.append(f"# HELP {metric} {entry[1]}")
    lines.append(f"# TYPE {metric} {kind}")
    return metric


def prometheus_text(snapshot: Dict[str, object]) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format.

    Each family is announced once with ``# HELP`` (from the metric
    inventory, when registered there) and ``# TYPE``; labeled series from
    :func:`~repro.obs.metrics.series_key` keys render their label sets, so
    a coordinator's per-host histograms scrape as
    ``repro_enumeration_seconds_bucket{host="host0",le="0.1"}``.
    Windowed rates are instantaneous readings and export as gauges.
    """
    lines: List[str] = []
    for base, series in _families(snapshot.get("counters", {})):  # type: ignore[arg-type]
        metric = _family_header(lines, base, "counter")
        for labels, value in series:
            lines.append(
                f"{metric}{_labels_suffix(labels)} {_format_value(value)}"
            )
    gauges: Dict[str, object] = dict(snapshot.get("gauges", {}))  # type: ignore[arg-type]
    for key, rate in snapshot.get("rates", {}).items():  # type: ignore[union-attr]
        gauges.setdefault(key, rate)
    for base, series in _families(dict(sorted(gauges.items()))):
        metric = _family_header(lines, base, "gauge")
        for labels, value in series:
            lines.append(
                f"{metric}{_labels_suffix(labels)} {_format_value(value)}"
            )
    for base, series in _families(snapshot.get("histograms", {})):  # type: ignore[arg-type]
        metric = _family_header(lines, base, "histogram")
        for labels, hist in series:
            for bound, count in hist["buckets"].items():
                suffix = _labels_suffix(labels, {"le": bound})
                lines.append(f"{metric}_bucket{suffix} {count}")
            lines.append(
                f"{metric}_sum{_labels_suffix(labels)} "
                f"{_format_value(hist['sum'])}"
            )
            lines.append(
                f"{metric}_count{_labels_suffix(labels)} {hist['count']}"
            )
    return "\n".join(lines) + "\n"


def write_prometheus(
    path: Union[str, Path], snapshot: Dict[str, object]
) -> Path:
    """Write :func:`prometheus_text` output; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(snapshot))
    return path


# ---------------------------------------------------------------------- #
# JSON-lines


def spans_jsonl(spans: Iterable[Span]) -> str:
    """One compact JSON object per span, one span per line."""
    lines = [
        json.dumps(
            {
                "name": s.name,
                "cat": s.category,
                "t0": s.t0,
                "dt": s.dt,
                "worker": s.worker,
                "attrs": dict(s.attrs),
            },
            sort_keys=True,
        )
        for s in spans
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_spans_jsonl(path: Union[str, Path], spans: Iterable[Span]) -> Path:
    """Write :func:`spans_jsonl` output; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(spans_jsonl(spans))
    return path


def _parse_span_line(line: str) -> Union[Span, None]:
    """One JSON-lines span, or ``None`` for a torn (unparseable) line."""
    try:
        record = json.loads(line)
        return Span(
            name=record["name"],
            category=record["cat"],
            t0=float(record["t0"]),
            dt=float(record["dt"]),
            worker=record["worker"],
            attrs=dict(record.get("attrs", {})),
        )
    except (ValueError, KeyError, TypeError):
        return None


def read_spans_jsonl(path: Union[str, Path]) -> List[Span]:
    """Load a :func:`spans_jsonl` file, tolerating a torn final line.

    A worker killed mid-flush (the fault-injection suites do exactly this)
    leaves a truncated last line; that line is silently dropped — the
    same policy as :class:`~repro.resilience.checkpoint.CheckpointJournal`.
    A *valid* line after a torn one is not truncation but corruption, and
    raises ``ValueError``.
    """
    spans: List[Span] = []
    torn_at: Union[int, None] = None
    for lineno, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        span = _parse_span_line(line)
        if span is None:
            torn_at = lineno
            continue
        if torn_at is not None:
            raise ValueError(
                f"{path}: valid span on line {lineno} after torn "
                f"line {torn_at} — file is corrupt, not truncated"
            )
        spans.append(span)
    return spans
