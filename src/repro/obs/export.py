"""Exporters: Chrome trace-event JSON, Prometheus text, JSON-lines.

* :func:`chrome_trace` — the Trace Event Format consumed by Perfetto and
  ``chrome://tracing``: one ``pid`` for the run, one ``tid`` **lane per
  worker** (thread or worker process), complete events (``ph="X"``) for
  timed spans and instant events (``ph="i"``) for markers like steals and
  retries.  Timestamps are microseconds relative to the earliest span, so
  a trace from an injected fake clock is byte-deterministic.
* :func:`prometheus_text` — the Prometheus exposition format for a
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.
* :func:`spans_jsonl` — one span per line, for ad-hoc ``jq``-style
  analysis and the log-shipping path.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.obs.trace import Span

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    "spans_jsonl",
    "write_spans_jsonl",
]

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _lane_order(spans: Sequence[Span]) -> List[str]:
    """Worker lane labels in order of first appearance (by start time)."""
    lanes: List[str] = []
    seen = set()
    for span in sorted(spans, key=lambda s: s.t0):
        if span.worker not in seen:
            seen.add(span.worker)
            lanes.append(span.worker)
    return lanes


def chrome_trace(spans: Sequence[Span], pid: int = 1) -> Dict[str, object]:
    """Render spans as a Chrome trace-event JSON object.

    Load the written file in https://ui.perfetto.dev or chrome://tracing:
    each worker is one named lane; splits show up as ``schedule`` spans,
    steals as instant markers on the thief's lane.
    """
    lanes = _lane_order(spans)
    tid_of = {lane: tid for tid, lane in enumerate(lanes)}
    t_base = min((s.t0 for s in spans), default=0.0)
    events: List[Dict[str, object]] = []
    for tid, lane in enumerate(lanes):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": lane},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )
    for span in sorted(spans, key=lambda s: (s.t0, s.dt)):
        ts = (span.t0 - t_base) * 1e6
        event: Dict[str, object] = {
            "name": span.name,
            "cat": span.category or "default",
            "pid": pid,
            "tid": tid_of[span.worker],
            "ts": ts,
            "args": dict(span.attrs),
        }
        if span.is_instant:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped marker
        else:
            event["ph"] = "X"
            event["dur"] = span.dt * 1e6
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, Path], spans: Sequence[Span], pid: int = 1
) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(spans, pid=pid), indent=1) + "\n")
    return path


# ---------------------------------------------------------------------- #
# Prometheus


def _metric_name(name: str) -> str:
    """Sanitize and namespace a series name for Prometheus exposition."""
    name = _METRIC_NAME_RE.sub("_", name)
    return name if name.startswith("repro_") else f"repro_{name}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def prometheus_text(snapshot: Dict[str, object]) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():  # type: ignore[union-attr]
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():  # type: ignore[union-attr]
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, hist in snapshot.get("histograms", {}).items():  # type: ignore[union-attr]
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        for bound, count in hist["buckets"].items():
            lines.append(f'{metric}_bucket{{le="{bound}"}} {count}')
        lines.append(f"{metric}_sum {_format_value(hist['sum'])}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + "\n"


def write_prometheus(
    path: Union[str, Path], snapshot: Dict[str, object]
) -> Path:
    """Write :func:`prometheus_text` output; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(snapshot))
    return path


# ---------------------------------------------------------------------- #
# JSON-lines


def spans_jsonl(spans: Iterable[Span]) -> str:
    """One compact JSON object per span, one span per line."""
    lines = [
        json.dumps(
            {
                "name": s.name,
                "cat": s.category,
                "t0": s.t0,
                "dt": s.dt,
                "worker": s.worker,
                "attrs": dict(s.attrs),
            },
            sort_keys=True,
        )
        for s in spans
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_spans_jsonl(path: Union[str, Path], spans: Iterable[Span]) -> Path:
    """Write :func:`spans_jsonl` output; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(spans_jsonl(spans))
    return path
