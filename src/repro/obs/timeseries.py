"""Windowed time-series metrics: live histograms and recent-window rates.

The paper's evaluation is all about *where the time goes* — per-interval
work distribution (Figures 10–11, Table 1 imbalance) — and a long-running
service needs that answered live, not post-mortem.  This module holds the
two series types the live telemetry rides on:

* :class:`Histogram` — fixed log-spaced cumulative buckets with
  **lock-free per-thread cells** (the same discipline as
  :class:`~repro.obs.metrics.Counter` and the span tracer's buffers): an
  ``observe`` on the enumeration hot path is a bisect, three adds into
  the calling thread's own cell, and no lock.  Cells are summed only at
  snapshot time, which also derives p50/p95/p99 estimates by linear
  interpolation inside the bounding bucket.
* :class:`WindowedRate` — a ring buffer of fixed-width time buckets
  giving the *recent-window* rate (states/sec over the last ~10s) rather
  than the run-cumulative average.  The distinction matters on skewed
  posets: the cumulative average is dominated by a cold start or one
  giant early interval, while the windowed rate tracks what the workers
  are doing *now* — it feeds the progress reporter's ETA, the
  ``/progress`` endpoint, and the live gauges on ``/metrics``.

Both types take an injected clock, so under a fake clock two identical
runs snapshot byte-identically (the registry-wide determinism contract).
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Histogram",
    "WindowedRate",
    "log_buckets",
    "DEFAULT_SECONDS_BUCKETS",
    "QUANTILES",
]

Clock = Callable[[], float]

#: The quantiles every histogram snapshot reports.
QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def log_buckets(lo: float, hi: float, per_decade: int = 3) -> Tuple[float, ...]:
    """Fixed log-spaced bucket bounds from ``lo`` to at least ``hi``.

    ``per_decade`` bounds per power of ten; the sequence always starts at
    ``lo`` and ends at the first bound ≥ ``hi``, so the span is covered.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be ≥ 1, got {per_decade}")
    step = 10.0 ** (1.0 / per_decade)
    bounds: List[float] = []
    value = lo
    while True:
        # round to a clean mantissa so bounds are stable across platforms
        magnitude = 10.0 ** math.floor(math.log10(value) + 1e-9)
        bounds.append(round(value / magnitude, 3) * magnitude)
        if bounds[-1] >= hi:
            return tuple(bounds)
        value *= step


#: Default histogram bucket bounds for second-valued series: log-spaced
#: from 10µs to 100s, the observed range of interval enumeration tasks.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 100.0,
)


class Histogram:
    """Cumulative-bucket histogram with lock-free per-thread cells.

    ``buckets`` are the upper bounds of the non-``+Inf`` buckets, strictly
    increasing; every observation also lands in the implicit ``+Inf``
    bucket and in ``sum``/``count``.  Each recording thread owns one cell
    (a plain list: bucket counts, then sum, then count), registered under
    the lock once and then written lock-free — the Prometheus semantics
    are reconstructed at snapshot time by summing cells.
    """

    #: Cell layout: ``len(bounds) + 1`` bucket slots, then sum, then count.
    __slots__ = ("name", "help", "bounds", "_local", "_lock", "_cells")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ):
        bounds = tuple(buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram buckets must be strictly increasing: {bounds}"
            )
        self.name = name
        self.help = help
        self.bounds = bounds
        self._local = threading.local()
        self._lock = threading.Lock()
        self._cells: List[List[float]] = []

    def _cell(self) -> List[float]:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = self._local.cell = [0.0] * (len(self.bounds) + 3)
            with self._lock:
                self._cells.append(cell)
        return cell

    def observe(self, value: float) -> None:
        """Record one observation into the calling thread's cell."""
        cell = self._cell()
        cell[bisect_left(self.bounds, value)] += 1
        cell[-2] += value
        cell[-1] += 1

    def _merged(self) -> Tuple[List[float], float, int]:
        with self._lock:
            cells = [list(cell) for cell in self._cells]
        counts = [0.0] * (len(self.bounds) + 1)
        total = 0.0
        n = 0
        for cell in cells:
            for i in range(len(counts)):
                counts[i] += cell[i]
            total += cell[-2]
            n += int(cell[-1])
        return counts, total, n

    @property
    def count(self) -> int:
        """Total observations across every thread's cell."""
        return self._merged()[2]

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating inside its bucket.

        Prometheus-style: the value is assumed uniform within the bucket;
        an estimate in the ``+Inf`` bucket clamps to the largest bound.
        Returns 0.0 with no observations.
        """
        counts, _, n = self._merged()
        if n == 0:
            return 0.0
        rank = q * n
        running = 0.0
        for i, bound in enumerate(self.bounds):
            prev = running
            running += counts[i]
            if running >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                if counts[i] == 0:
                    return bound
                return lo + (bound - lo) * (rank - prev) / counts[i]
        return self.bounds[-1] if self.bounds else 0.0

    def snapshot(self) -> Dict[str, object]:
        """Cumulative bucket counts keyed by upper bound, plus sum, count,
        and the :data:`QUANTILES` estimates."""
        counts, total, n = self._merged()
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += int(count)
            cumulative[repr(bound)] = running
        cumulative["+Inf"] = running + int(counts[-1])
        return {
            "buckets": cumulative,
            "sum": total,
            "count": n,
            "quantiles": {
                f"p{int(q * 100)}": self.quantile(q) for q in QUANTILES
            },
        }


class WindowedRate:
    """Per-second rate over a sliding window, on a bucketed ring buffer.

    ``window`` seconds of history are kept in ``slots`` fixed-width
    buckets; :meth:`add` credits the current bucket, :meth:`rate` sums
    the buckets still inside the window and divides by the *covered*
    span — before a full window has elapsed the divisor is the elapsed
    time, so early readings are not diluted toward zero.

    One lock guards the ring (adds are per-task, not per-state, so this
    is off the enumeration hot path); the injected clock makes windowed
    readings reproducible under test.
    """

    __slots__ = (
        "name",
        "window",
        "clock",
        "_width",
        "_lock",
        "_slots",
        "_total",
        "_t_first",
    )

    def __init__(
        self,
        name: str = "",
        window: float = 10.0,
        slots: int = 20,
        clock: Optional[Clock] = None,
    ):
        if window <= 0 or slots < 1:
            raise ValueError(
                f"need window > 0 and slots ≥ 1, got {window}, {slots}"
            )
        self.name = name
        self.window = window
        self.clock: Clock = clock if clock is not None else time.perf_counter
        self._width = window / slots
        self._lock = threading.Lock()
        #: bucket index -> accumulated amount (only live buckets are kept)
        self._slots: Dict[int, float] = {}
        self._total = 0.0
        self._t_first: Optional[float] = None

    def add(self, amount: float = 1.0) -> None:
        """Credit ``amount`` to the current time bucket."""
        now = self.clock()
        index = int(now / self._width)
        with self._lock:
            if self._t_first is None:
                self._t_first = now
            self._slots[index] = self._slots.get(index, 0.0) + amount
            self._total += amount
            horizon = index - int(self.window / self._width)
            for stale in [i for i in self._slots if i <= horizon]:
                del self._slots[stale]

    def rate(self) -> float:
        """Amount per second over the most recent window."""
        now = self.clock()
        current_index = int(now / self._width)
        horizon = current_index - int(self.window / self._width)
        with self._lock:
            if self._t_first is None:
                return 0.0
            live = sum(
                amount
                for index, amount in self._slots.items()
                if index > horizon
            )
            covered = min(max(now - self._t_first, self._width), self.window)
        return live / covered if covered > 0 else 0.0

    @property
    def total(self) -> float:
        """Run-cumulative amount (the old average's numerator)."""
        with self._lock:
            return self._total

    def snapshot(self) -> Dict[str, float]:
        return {"rate": self.rate(), "total": self.total}
