"""``repro.obs`` — unified tracing, metrics, live telemetry, and export.

The observability layer for the enumeration pipeline (DESIGN.md §7d, §7i):

* :class:`~repro.obs.trace.SpanTracer` — low-overhead span recording with
  explicit clock injection and lock-free per-thread buffers;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges,
  histograms, and windowed rates with a deterministic snapshot API and
  label support (per-host series); :data:`~repro.obs.metrics.METRIC_INVENTORY`
  is the registry of record for every series the codebase emits;
* :class:`~repro.obs.timeseries.Histogram` /
  :class:`~repro.obs.timeseries.WindowedRate` — the live series types
  (per-thread cells, p50/p95/p99 snapshots, recent-window rates);
* :class:`~repro.obs.observer.Observer` — the facade every instrumented
  component accepts (``ParaMount(observer=...)``);
  :data:`~repro.obs.observer.NULL_OBSERVER` is the no-op default;
* :class:`~repro.obs.profiler.SamplingProfiler` — stdlib stack sampler
  attributing CPU to pipeline phases via the active-span stack, exporting
  collapsed stacks and speedscope JSON;
* :class:`~repro.obs.http.OpsEndpoint` — the scrapeable ops server
  (``/metrics``, ``/healthz``, ``/progress``);
* exporters (:mod:`repro.obs.export`) — Chrome trace-event JSON (with
  counter tracks) for Perfetto/chrome://tracing, Prometheus text,
  JSON-lines (torn-tail-tolerant reader included);
* validators (:mod:`repro.obs.validate`) — structural checks for traces
  and Prometheus text, shared by tests and CI smoke jobs;
* :class:`~repro.obs.progress.ProgressReporter` — live one-line progress
  with a recent-window ETA;
* :func:`~repro.obs.render.render_trace_file` — the text summary behind
  ``repro-tools obs render``;
* :mod:`repro.obs.forensics` — the post-run straggler/anomaly report
  behind ``repro-tools obs report``.
"""

from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    read_spans_jsonl,
    spans_jsonl,
    write_chrome_trace,
    write_prometheus,
    write_spans_jsonl,
)
from repro.obs.http import OpsEndpoint
from repro.obs.metrics import (
    METRIC_INVENTORY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WindowedRate,
)
from repro.obs.observer import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    SpanLogHandler,
    ensure_observer,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.progress import ProgressReporter
from repro.obs.render import load_trace_events, render_trace_file
from repro.obs.trace import Span, SpanTracer
from repro.obs.validate import validate_chrome_trace, validate_prometheus_text

__all__ = [
    "Span",
    "SpanTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "WindowedRate",
    "MetricsRegistry",
    "METRIC_INVENTORY",
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "ensure_observer",
    "SpanLogHandler",
    "SamplingProfiler",
    "OpsEndpoint",
    "ProgressReporter",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    "spans_jsonl",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "render_trace_file",
    "load_trace_events",
    "validate_chrome_trace",
    "validate_prometheus_text",
]
