"""``repro.obs`` — unified tracing, metrics, and timeline export.

The observability layer for the enumeration pipeline (DESIGN.md §7d):

* :class:`~repro.obs.trace.SpanTracer` — low-overhead span recording with
  explicit clock injection and lock-free per-thread buffers;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  histograms with a deterministic snapshot API;
* :class:`~repro.obs.observer.Observer` — the facade every instrumented
  component accepts (``ParaMount(observer=...)``);
  :data:`~repro.obs.observer.NULL_OBSERVER` is the no-op default;
* exporters (:mod:`repro.obs.export`) — Chrome trace-event JSON for
  Perfetto/chrome://tracing, Prometheus text, JSON-lines;
* :class:`~repro.obs.progress.ProgressReporter` — live one-line progress
  for long online and offline runs;
* :func:`~repro.obs.render.render_trace_file` — the text summary behind
  ``repro-tools obs render``.
"""

from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    spans_jsonl,
    write_chrome_trace,
    write_prometheus,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    SpanLogHandler,
    ensure_observer,
)
from repro.obs.progress import ProgressReporter
from repro.obs.render import load_trace_events, render_trace_file
from repro.obs.trace import Span, SpanTracer

__all__ = [
    "Span",
    "SpanTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "ensure_observer",
    "SpanLogHandler",
    "ProgressReporter",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    "spans_jsonl",
    "write_spans_jsonl",
    "render_trace_file",
    "load_trace_events",
]
