"""Post-run forensics: stragglers, per-host skew, degradation timeline.

``repro-tools obs report`` merges the three artifacts a run leaves behind
— the Chrome trace (spans), the checkpoint journal (committed intervals),
and the lease/robustness counters baked into the trace's instants — into
one text report answering the questions the paper's Table 1 asks of every
parallel run:

* **stragglers** — enumerate spans slower than ``k × p95`` of all
  enumerate spans (the tail that bounds the makespan);
* **per-host skew** — busy seconds and committed intervals per worker
  lane, with the max/mean imbalance factor (Table 1's metric);
* **degradation timeline** — every instant marker that signals trouble
  (lease expiry, worker loss, task errors, executor degradation, OOM
  degradation, retries), in chronological order;
* **journal reconciliation** — committed records in the journal vs.
  enumerate spans in the trace, so a silent trace/journal divergence
  (dropped span buffer, torn journal tail) is surfaced instead of
  averaged away.

Inputs are files, not live objects, so the report runs on artifacts
shipped from another machine.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.render import load_trace_events
from repro.util.tables import TextTable
from repro.util.timing import format_duration

__all__ = ["ForensicsReport", "build_report", "render_report"]

#: Instant-marker names that indicate degradation or faults.
_TROUBLE = {
    "lease-expired",
    "worker-lost",
    "task-error",
    "degrade_executor",
    "deadline",
    "retry",
}
#: Instant categories whose every marker belongs on the timeline.
_TROUBLE_CATEGORIES = {"log"}


def _percentile(values: List[float], q: float) -> float:
    """Exact percentile by nearest-rank (values need not be sorted)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(math.ceil(q * len(ordered)) - 1, 0)
    return ordered[min(rank, len(ordered) - 1)]


@dataclass
class ForensicsReport:
    """The merged post-run picture (see :func:`build_report`)."""

    enumerate_spans: int = 0
    total_busy_seconds: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    straggler_threshold: float = 0.0
    #: (span name, worker, seconds, ratio to p95), slowest first.
    stragglers: List[tuple] = field(default_factory=list)
    #: worker lane -> {"busy": s, "tasks": n, "states": n}
    hosts: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: max/mean busy-seconds imbalance across lanes (1.0 = perfect).
    skew: float = 0.0
    #: (ts_seconds, name, worker, detail) trouble markers, chronological.
    timeline: List[tuple] = field(default_factory=list)
    journal_committed: Optional[int] = None
    #: None when no journal was given; otherwise committed == spans.
    reconciled: Optional[bool] = None


def _read_journal_committed(path: Union[str, Path]) -> int:
    """Count committed interval records, tolerating a torn final line."""
    committed = 0
    torn = False
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            torn = True
            continue
        if torn:
            raise ValueError(
                f"{path}: valid record after a torn line — corrupt journal"
            )
        if isinstance(record, dict) and record.get("kind") == "interval":
            committed += 1
    return committed


def build_report(
    trace_path: Union[str, Path],
    journal_path: Optional[Union[str, Path]] = None,
    k: float = 3.0,
) -> ForensicsReport:
    """Merge a trace (and optionally a journal) into a forensics report.

    ``k`` scales the straggler threshold: an enumerate span is a
    straggler when its duration exceeds ``k × p95`` of all enumerate
    spans.
    """
    events = load_trace_events(trace_path)
    lane_names: Dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            lane_names[event["tid"]] = event["args"]["name"]

    report = ForensicsReport()
    durations: List[float] = []
    enumerate_events: List[dict] = []
    t_base: Optional[float] = None
    for event in events:
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            t_base = ts if t_base is None else min(t_base, ts)
        ph = event.get("ph")
        if ph == "X" and event.get("cat") == "enumerate":
            seconds = event.get("dur", 0.0) / 1e6
            durations.append(seconds)
            enumerate_events.append(event)
            lane = lane_names.get(event.get("tid"), f"tid-{event.get('tid')}")
            host = report.hosts.setdefault(
                lane, {"busy": 0.0, "tasks": 0, "states": 0}
            )
            host["busy"] += seconds
            host["tasks"] += 1
            host["states"] += int(event.get("args", {}).get("states", 0))
        elif ph == "i" and (
            event.get("name") in _TROUBLE
            or event.get("cat") in _TROUBLE_CATEGORIES
        ):
            lane = lane_names.get(event.get("tid"), f"tid-{event.get('tid')}")
            args = event.get("args", {})
            detail = ", ".join(
                f"{key}={args[key]}" for key in sorted(args)
            )
            report.timeline.append(
                ((ts or 0.0) / 1e6, event.get("name", "?"), lane, detail)
            )

    report.enumerate_spans = len(durations)
    report.total_busy_seconds = sum(durations)
    report.p50 = _percentile(durations, 0.50)
    report.p95 = _percentile(durations, 0.95)
    report.p99 = _percentile(durations, 0.99)
    report.straggler_threshold = k * report.p95
    if t_base is not None:
        base_seconds = t_base / 1e6
        report.timeline = [
            (ts - base_seconds, name, lane, detail)
            for ts, name, lane, detail in sorted(report.timeline)
        ]
    for event in sorted(
        enumerate_events, key=lambda e: -e.get("dur", 0.0)
    ):
        seconds = event.get("dur", 0.0) / 1e6
        if report.p95 <= 0 or seconds <= report.straggler_threshold:
            break
        lane = lane_names.get(event.get("tid"), f"tid-{event.get('tid')}")
        report.stragglers.append(
            (event.get("name", "?"), lane, seconds, seconds / report.p95)
        )
    busies = [host["busy"] for host in report.hosts.values()]
    if busies and sum(busies) > 0:
        report.skew = max(busies) / (sum(busies) / len(busies))
    if journal_path is not None:
        report.journal_committed = _read_journal_committed(journal_path)
        report.reconciled = report.journal_committed == report.enumerate_spans
    return report


def render_report(report: ForensicsReport, trace_path: str = "") -> str:
    """One-screen text rendering of a :class:`ForensicsReport`."""
    out: List[str] = [f"forensics: {trace_path}".rstrip(": ")]
    out.append(
        f"  {report.enumerate_spans} enumerate span(s), busy "
        f"{format_duration(report.total_busy_seconds)}; per-interval "
        f"p50 {format_duration(report.p50)}, "
        f"p95 {format_duration(report.p95)}, "
        f"p99 {format_duration(report.p99)}"
    )

    if report.stragglers:
        table = TextTable(
            ["span", "worker", "seconds", "×p95"],
            title=f"Stragglers (> {format_duration(report.straggler_threshold)})",
        )
        for name, lane, seconds, ratio in report.stragglers:
            table.add_row([name, lane, f"{seconds:.4f}", f"{ratio:.1f}"])
        out.append(table.render())
    else:
        out.append("  no stragglers above the threshold")

    if report.hosts:
        table = TextTable(
            ["worker", "tasks", "busy", "states"],
            title=f"Per-host load (skew {report.skew:.2f}×)",
        )
        for lane in sorted(report.hosts):
            host = report.hosts[lane]
            table.add_row(
                [
                    lane,
                    int(host["tasks"]),
                    format_duration(host["busy"]),
                    f"{int(host['states']):,}",
                ]
            )
        out.append(table.render())

    if report.timeline:
        table = TextTable(
            ["t", "marker", "worker", "detail"],
            title="Degradation timeline",
        )
        for ts, name, lane, detail in report.timeline:
            table.add_row([format_duration(ts), name, lane, detail])
        out.append(table.render())
    else:
        out.append("  no degradation markers")

    if report.reconciled is not None:
        verdict = "reconciles" if report.reconciled else "DIVERGES"
        out.append(
            f"  journal: {report.journal_committed} committed record(s) "
            f"{verdict} with {report.enumerate_spans} enumerate span(s)"
        )
    return "\n".join(out)
