"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InconsistentCutError",
    "PosetError",
    "EventOrderError",
    "EnumerationError",
    "IntervalError",
    "SchedulerError",
    "DeadlockError",
    "OutOfMemoryError",
    "DetectorError",
    "PlannerError",
    "WorkloadError",
    "StaticCheckError",
    "SanitizerError",
    "ExecutorError",
    "ExecutorTimeoutError",
    "BrokenPoolError",
    "TaskNotPicklableError",
    "InjectedFaultError",
    "CheckpointError",
    "WireError",
    "ConnectionClosedError",
    "StaleDigestError",
    "WorkerLostError",
]


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class PosetError(ReproError):
    """Raised for structurally invalid posets or malformed poset queries.

    Examples include referencing a thread index outside ``range(n)``,
    referencing an event index beyond the length of a thread's chain, or
    constructing a poset whose happened-before relation is cyclic.
    """


class EventOrderError(PosetError):
    """Raised when events are inserted in an order violating causality.

    The online algorithm (paper Algorithm 4) requires the insertion order to
    be a linear extension of the happened-before relation: an event may only
    be inserted after all of its causal predecessors.
    """


class InconsistentCutError(ReproError):
    """Raised when an operation requires a consistent cut but was given an
    inconsistent one (a cut that omits a causal predecessor of an included
    event)."""


class EnumerationError(ReproError):
    """Raised for invalid enumeration requests, e.g. a bounded enumeration
    whose lower bound does not precede its upper bound."""


class IntervalError(EnumerationError):
    """Raised when an interval of global states ``I(e)`` is malformed, e.g.
    ``Gmin(e) ≤ Gbnd(e)`` does not hold."""


class SchedulerError(ReproError):
    """Raised by the simulated concurrent-program runtime for scheduling
    failures other than deadlock (e.g. scheduling an exited thread)."""


class DeadlockError(SchedulerError):
    """Raised when every runnable thread of a simulated program is blocked
    (all waiting on locks, monitors, or joins that can never be released).

    ``wait_for`` carries the detected wait-for graph
    (:class:`repro.runtime.waitgraph.WaitForGraph`) as structured data, in
    the same format the static lock-order analyzer uses for its deadlock
    warnings, so dynamic and static deadlock reports can be compared
    directly.  It is ``None`` only for legacy constructions that pass a
    bare message.
    """

    def __init__(self, message: str, wait_for=None):
        super().__init__(message)
        #: The wait-for graph at the moment of deadlock (or ``None``).
        self.wait_for = wait_for

    def __reduce__(self):
        # Crosses process/wire boundaries (a remote worker may hit a
        # deadlocked simulated program); the default reduction would drop
        # the structured wait-for graph.
        return (DeadlockError, (self.args[0], self.wait_for))


class OutOfMemoryError(ReproError):
    """Raised when a detector or enumerator exceeds its configured memory
    budget.

    This models the paper's ``o.o.m.`` outcomes: the Cooper–Marzullo BFS
    stores a number of intermediate global states that may grow
    exponentially with the number of threads, so RV runtime (which uses it)
    runs out of memory on large posets (paper Tables 1 and 2).
    """

    def __init__(self, used: int, budget: int, what: str = "global states"):
        super().__init__(
            f"memory budget exceeded: {used} {what} live, budget {budget}"
        )
        #: Number of live units (e.g. stored global states) at failure time.
        self.used = used
        #: The configured budget that was exceeded.
        self.budget = budget

    def __reduce__(self):
        # Raised inside process-pool workers (a BFS interval over budget)
        # and pickled back to the parent; the default exception reduction
        # replays __init__ with the formatted message only, which would
        # kill the pool instead of reporting the OOM.
        return (OutOfMemoryError, (self.used, self.budget))


class DetectorError(ReproError):
    """Raised by predicate detectors for unrecoverable internal failures.

    This also models the ``exception`` outcomes that the paper reports for
    RV runtime on some benchmarks (Table 2).
    """


class PlannerError(DetectorError):
    """Raised by the detection planner for routing requests it cannot
    honor soundly — e.g. ``mode="slice"`` forced on a predicate whose
    classification certificate says ``arbitrary`` (only full enumeration
    is sound there), or an invalid planner mode."""


class WorkloadError(ReproError):
    """Raised when a workload specification is invalid (unknown name, bad
    scale parameters, ...)."""


class StaticCheckError(ReproError):
    """Raised by the static analyzer (:mod:`repro.staticcheck`) when a
    program cannot be analyzed at all — e.g. a thread body whose source is
    unavailable.  Imprecision never raises; it is recorded as
    ``approximation`` notes on the report instead."""


class SanitizerError(ReproError):
    """Raised (in strict mode) by the runtime sanitizer when a pipeline
    invariant is violated: per-thread sequence monotonicity, lock
    discipline, vector-clock monotonicity, ``Gmin(e) ≤ Gbnd(e)``, or the
    interval-partition disjointness of Theorem 2."""


class ExecutorError(ReproError):
    """Raised by execution backends for infrastructure failures — as
    opposed to exceptions raised *by* a task, which propagate unchanged.

    Theorem 2 makes every interval task idempotent, so all of these are
    safely retryable by re-running the affected tasks (see
    :mod:`repro.resilience`); ``BrokenPoolError`` additionally requires a
    fresh pool, and ``TaskNotPicklableError`` requires a different backend.
    """


class ExecutorTimeoutError(ExecutorError):
    """Raised when gathering a task's result exceeded the configured
    per-task timeout (a hung or pathologically slow worker).

    ``task_index`` is the position, in the submitted batch, of the task
    whose result did not arrive in time; the remaining futures have been
    cancelled (already-running tasks cannot be interrupted, but their
    results are discarded — harmless, since interval tasks are idempotent).
    """

    def __init__(self, task_index: int, timeout: float, executor: str = ""):
        where = f" on {executor!r}" if executor else ""
        super().__init__(
            f"task {task_index} exceeded the {timeout:g}s gather timeout"
            f"{where}; remaining tasks were cancelled"
        )
        #: Index of the offending task within the submitted batch.
        self.task_index = task_index
        #: The timeout that was exceeded, in seconds.
        self.timeout = timeout
        #: Name of the executor whose gather timed out ("" when unknown).
        self.executor = executor

    def __reduce__(self):
        # Shipped across process pools and the dist wire; the default
        # reduction replays __init__ with the formatted message only,
        # losing the task index the retry logic charges.
        return (ExecutorTimeoutError, (self.task_index, self.timeout, self.executor))


class BrokenPoolError(ExecutorError):
    """Raised when a process pool died underneath its tasks — a worker was
    OOM-killed, crashed the interpreter, or failed in its initializer.

    The pending results are lost but every interval task is idempotent, so
    the correct response is to resubmit the unfinished tasks on a fresh
    pool, or to degrade to a thread/serial backend
    (:class:`repro.resilience.ResilientExecutor` does both).
    """


class TaskNotPicklableError(ExecutorError):
    """Raised when a task cannot cross the process boundary.

    Retrying cannot help; switching backends can — the same task runs fine
    on :class:`~repro.core.executors.ThreadExecutor` or
    :class:`~repro.core.executors.SerialExecutor`.
    """

    def __init__(self, task_index: int, cause):
        super().__init__(
            f"task {task_index} is not picklable ({cause}); ProcessExecutor "
            f"needs top-level callables — wrap per-task state with "
            f"functools.partial over a module-level function, or run on "
            f"ThreadExecutor/SerialExecutor instead"
        )
        #: Index of the unpicklable task within the submitted batch.
        self.task_index = task_index
        #: Human-readable description of the original pickling failure.
        self.cause = str(cause)

    def __reduce__(self):
        # The original cause exception may itself be unpicklable, so the
        # reduction ships its string form instead.
        return (TaskNotPicklableError, (self.task_index, self.cause))


class InjectedFaultError(ExecutorError):
    """Raised by the fault-injection harness (:mod:`repro.resilience.faults`)
    for a deterministically injected crash or poisoned task."""

    def __init__(self, kind: str, key: object, attempt: int):
        super().__init__(
            f"injected {kind} fault on task {key!r} (attempt {attempt})"
        )
        #: ``"crash"`` or ``"poison"``.
        self.kind = kind
        #: Stable identity of the faulted task.
        self.key = key
        #: Zero-based attempt number the fault was injected on.
        self.attempt = attempt

    def __reduce__(self):
        # Pickled across the process-pool result queue; the default
        # exception reduction would replay __init__ with the formatted
        # message only and crash the pool's management thread.
        return (InjectedFaultError, (self.kind, self.key, self.attempt))


class CheckpointError(ReproError):
    """Raised when a checkpoint journal cannot be resumed from: its poset
    digest or subroutine does not match the current run, or a completed
    record's interval bounds diverge from the recomputed partition (which
    would mean the journal belongs to a different total order)."""


class WireError(ExecutorError):
    """Raised by the distributed wire protocol (:mod:`repro.dist.wire`) for
    malformed traffic: an oversized frame, an unknown encoding tag, or a
    message whose body does not decode.

    Like every :class:`ExecutorError` this is an infrastructure failure, not
    a task failure — interval tasks are idempotent, so the coordinator drops
    the offending connection and re-leases its work elsewhere.
    """


class ConnectionClosedError(WireError):
    """Raised when the peer closed the connection mid-frame or mid-run —
    worker crash, ``kill -9``, or network partition.  The coordinator treats
    it exactly like a lease expiry: the worker's outstanding leases return
    to the pending pool for re-dispatch."""


class StaleDigestError(ExecutorError):
    """Raised when the poset SHA-256 digest presented by one end of a
    distributed run does not match the other end's.

    A stale worker (started against yesterday's poset file, or against a
    differently-built poset) must never be allowed to commit interval
    results: its ``Gmin``/``Gbnd`` bounds would be meaningless against the
    coordinator's partition.  Both ends verify — workers refuse leases whose
    digest differs from their handshake digest, and the coordinator refuses
    acknowledgements carrying an unexpected digest.
    """

    def __init__(self, expected: str, actual: str, where: str = ""):
        at = f" at {where}" if where else ""
        super().__init__(
            f"poset digest mismatch{at}: expected {expected[:12]}…, "
            f"got {actual[:12]}…"
        )
        #: The digest this end computed for its own poset.
        self.expected = expected
        #: The digest the peer presented.
        self.actual = actual
        #: Which end detected the mismatch (e.g. ``"worker"``).
        self.where = where

    def __reduce__(self):
        # Shipped back over the wire as a structured refusal; the default
        # reduction would replay __init__ with the formatted message only.
        return (StaleDigestError, (self.expected, self.actual, self.where))


class WorkerLostError(ExecutorError):
    """Raised (or recorded as a failure) when a remote worker vanished —
    its connection died or its leases expired without acknowledgement —
    and its in-flight intervals had to be re-dispatched."""

    def __init__(self, worker: str, lost_leases: int = 0):
        super().__init__(
            f"worker {worker!r} lost with {lost_leases} in-flight lease(s); "
            f"re-dispatching to surviving workers"
        )
        #: Name of the vanished worker.
        self.worker = worker
        #: Number of leases it held when it vanished.
        self.lost_leases = lost_leases

    def __reduce__(self):
        return (WorkerLostError, (self.worker, self.lost_leases))
