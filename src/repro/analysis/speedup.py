"""Speedup measurement pipeline for Tables 1 and Figures 10–11.

The pipeline measures each benchmark once per algorithm and replays the
metered costs through the simulated k-worker machine (DESIGN.md §3):

1. :func:`measure_sequential` runs the sequential baseline (BFS or
   lexical) over the whole lattice, metering work and live state;
2. :func:`measure_paramount` runs ParaMount serially, metering the same
   quantities *per interval*;
3. :func:`speedup_curve` converts both into modeled seconds via the
   :class:`~repro.core.simulated.CostModel` and greedy-schedules the
   intervals on 1, 2, 4, 8 workers — the paper's thread counts.

Wall-clock time of the actual (GIL-serialized) runs is also recorded so
the reports can show both numbers side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.paramount import ParaMount
from repro.core.simulated import CostModel, simulate_schedule
from repro.enumeration.base import make_enumerator
from repro.errors import OutOfMemoryError
from repro.poset.poset import Poset
from repro.util.timing import Stopwatch

__all__ = [
    "EnumerationMeasurement",
    "SpeedupCurve",
    "measure_sequential",
    "measure_paramount",
    "speedup_curve",
    "WORKER_COUNTS",
]

#: The paper's evaluated worker counts.
WORKER_COUNTS = (1, 2, 4, 8)


@dataclass
class EnumerationMeasurement:
    """Metered outcome of one enumeration run (sequential or partitioned)."""

    algorithm: str
    states: int
    work: int
    peak_live: int
    wall_time: float
    #: Per-interval (work, peak_live) pairs; empty for sequential runs.
    interval_costs: List[tuple]
    #: Set when the run aborted on the modeled memory budget.
    oom: bool = False

    @property
    def finished(self) -> bool:
        """True when the run completed (no o.o.m.)."""
        return not self.oom


def measure_sequential(
    poset: Poset, algorithm: str, memory_budget: Optional[int] = None
) -> EnumerationMeasurement:
    """Run a sequential enumerator over the full lattice and meter it."""
    enumerator = make_enumerator(algorithm, poset, memory_budget=memory_budget)
    with Stopwatch() as sw:
        try:
            result = enumerator.enumerate()
            oom = False
        except OutOfMemoryError:
            result = None
            oom = True
    if oom:
        return EnumerationMeasurement(
            algorithm=algorithm,
            states=0,
            work=0,
            peak_live=memory_budget or 0,
            wall_time=sw.elapsed,
            interval_costs=[],
            oom=True,
        )
    return EnumerationMeasurement(
        algorithm=algorithm,
        states=result.states,
        work=result.work,
        peak_live=result.peak_live,
        wall_time=sw.elapsed,
        interval_costs=[],
    )


def measure_paramount(
    poset: Poset, subroutine: str, memory_budget: Optional[int] = None
) -> EnumerationMeasurement:
    """Run ParaMount (serially) and meter every interval's cost.

    Partitioning bounds each interval's live state, so B-Para completes
    benchmarks the sequential BFS cannot — the paper's Table 1 pattern.
    """
    pm = ParaMount(poset, subroutine=subroutine, memory_budget=memory_budget)
    result = pm.run()
    return EnumerationMeasurement(
        algorithm=f"{subroutine}-para",
        states=result.states,
        work=result.work,
        peak_live=result.peak_live,
        wall_time=result.wall_time,
        interval_costs=[(s.work, s.peak_live) for s in result.intervals],
    )


@dataclass
class SpeedupCurve:
    """Modeled times and speedups across worker counts for one benchmark."""

    benchmark: str
    algorithm: str
    sequential_seconds: Optional[float]
    parallel_seconds: Dict[int, float]

    def speedup(self, workers: int) -> Optional[float]:
        """Modeled speedup over the sequential baseline (None if the
        baseline could not finish — the paper leaves those cells blank)."""
        if self.sequential_seconds is None:
            return None
        return self.sequential_seconds / self.parallel_seconds[workers]

    def speedups(self) -> Dict[int, Optional[float]]:
        """Speedup per worker count."""
        return {k: self.speedup(k) for k in self.parallel_seconds}


def speedup_curve(
    benchmark: str,
    sequential: EnumerationMeasurement,
    partitioned: EnumerationMeasurement,
    cost_model: Optional[CostModel] = None,
    worker_counts: Sequence[int] = WORKER_COUNTS,
) -> SpeedupCurve:
    """Build the modeled speedup curve from two measurements."""
    model = cost_model if cost_model is not None else CostModel()
    seq_seconds = (
        model.sequential_seconds(sequential.work, sequential.peak_live)
        if sequential.finished
        else None
    )
    task_seconds = [
        model.task_seconds(work, live) for work, live in partitioned.interval_costs
    ]
    parallel = {
        k: simulate_schedule(task_seconds, k).makespan for k in worker_counts
    }
    return SpeedupCurve(
        benchmark=benchmark,
        algorithm=partitioned.algorithm,
        sequential_seconds=seq_seconds,
        parallel_seconds=parallel,
    )
