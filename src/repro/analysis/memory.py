"""Memory accounting for Figure 12.

The paper measures JVM heap; we count what actually occupies memory and
convert to bytes with explicit per-object costs:

* the **poset itself** — every algorithm holds the input: events with
  ``n``-wide clocks;
* the **enumerator's live intermediate states** — 1 cut for the stateless
  lexical algorithm, the widest two levels for BFS;
* **ParaMount's bookkeeping** — ``Gmin``/``Gbnd`` per interval, ``O(n)``
  integers each (the paper: "although ParaMount requires additional space
  to store Gmin(e) and Gbnd(e) for each event, the consumed memory is
  quite small").

Figure 12's claim — L-Para's memory is nearly identical to the sequential
lexical algorithm's, both dominated by the input — falls straight out of
this accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.poset.poset import Poset

__all__ = ["MemoryModel", "MemoryReport"]


@dataclass(frozen=True)
class MemoryModel:
    """Byte costs of the library's in-memory objects (CPython-flavoured)."""

    #: Fixed runtime footprint (interpreter/VM baseline) included in every
    #: total — the analogue of the JVM's resident base in the paper's
    #: Figure 12, which measures whole-process memory.
    baseline_bytes: int = 8 * 1024 * 1024
    #: Bytes per stored integer slot in a clock/cut tuple.
    bytes_per_clock_slot: int = 8
    #: Fixed per-event overhead (object header, kind/obj refs).
    bytes_per_event: int = 96
    #: Fixed per-stored-cut overhead (tuple header + hash-set slot).
    bytes_per_cut: int = 64

    def poset_bytes(self, poset: Poset) -> int:
        """Resident size of the input poset (events + clock table)."""
        n = poset.num_threads
        per_event = self.bytes_per_event + n * self.bytes_per_clock_slot
        return poset.num_events * per_event

    def cut_bytes(self, n: int) -> int:
        """Resident size of one stored global state."""
        return self.bytes_per_cut + n * self.bytes_per_clock_slot

    def live_state_bytes(self, poset: Poset, peak_live: int) -> int:
        """Peak bytes held in intermediate global states."""
        return peak_live * self.cut_bytes(poset.num_threads)

    def paramount_overhead_bytes(self, poset: Poset) -> int:
        """ParaMount's Gmin/Gbnd bookkeeping: two cuts per event."""
        return 2 * poset.num_events * self.cut_bytes(poset.num_threads)


@dataclass(frozen=True)
class MemoryReport:
    """Figure 12 row: modeled memory of one algorithm on one benchmark."""

    benchmark: str
    algorithm: str
    poset_bytes: int
    live_bytes: int
    overhead_bytes: int

    baseline_bytes: int = 8 * 1024 * 1024

    @property
    def total_bytes(self) -> int:
        """Total modeled resident bytes (including the runtime baseline)."""
        return (
            self.baseline_bytes
            + self.poset_bytes
            + self.live_bytes
            + self.overhead_bytes
        )

    @property
    def total_mb(self) -> float:
        """Total in MB (the figure's unit)."""
        return self.total_bytes / (1024.0 * 1024.0)
