"""Memory accounting for Figure 12.

The paper measures JVM heap; we count what actually occupies memory and
convert to bytes with explicit per-object costs:

* the **poset itself** — every algorithm holds the input: events with
  ``n``-wide clocks;
* the **enumerator's live intermediate states** — 1 cut for the stateless
  lexical algorithm, the widest two levels for BFS;
* **ParaMount's bookkeeping** — ``Gmin``/``Gbnd`` per interval, ``O(n)``
  integers each (the paper: "although ParaMount requires additional space
  to store Gmin(e) and Gbnd(e) for each event, the consumed memory is
  quite small").

Figure 12's claim — L-Para's memory is nearly identical to the sequential
lexical algorithm's, both dominated by the input — falls straight out of
this accounting.

Alongside the model, :func:`measure_peak` *measures*: ``tracemalloc``'s
peak traced allocation during a run plus the process's ``ru_maxrss``
high-water RSS, both reported in the :class:`MemoryReport` next to the
modeled bytes.  :func:`peak_memory_curve` sweeps poset width over
independent-chain (grid) posets — the widest-level worst case — and
records the curve the level-traversal work targets: ``bfs`` peak memory
grows with lattice width while ``lexical`` and ``level-space`` stay flat.
"""

from __future__ import annotations

import gc
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.poset.poset import Poset

try:  # POSIX; absent on some platforms — RSS then reports as 0
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

__all__ = [
    "MemoryModel",
    "MemoryReport",
    "MeasuredPeak",
    "measure_peak",
    "measure_report",
    "peak_memory_curve",
]

T = TypeVar("T")


@dataclass(frozen=True)
class MemoryModel:
    """Byte costs of the library's in-memory objects (CPython-flavoured)."""

    #: Fixed runtime footprint (interpreter/VM baseline) included in every
    #: total — the analogue of the JVM's resident base in the paper's
    #: Figure 12, which measures whole-process memory.
    baseline_bytes: int = 8 * 1024 * 1024
    #: Bytes per stored integer slot in a clock/cut tuple.
    bytes_per_clock_slot: int = 8
    #: Fixed per-event overhead (object header, kind/obj refs).
    bytes_per_event: int = 96
    #: Fixed per-stored-cut overhead (tuple header + hash-set slot).
    bytes_per_cut: int = 64

    def poset_bytes(self, poset: Poset) -> int:
        """Resident size of the input poset (events + clock table)."""
        n = poset.num_threads
        per_event = self.bytes_per_event + n * self.bytes_per_clock_slot
        return poset.num_events * per_event

    def cut_bytes(self, n: int) -> int:
        """Resident size of one stored global state."""
        return self.bytes_per_cut + n * self.bytes_per_clock_slot

    def live_state_bytes(self, poset: Poset, peak_live: int) -> int:
        """Peak bytes held in intermediate global states."""
        return peak_live * self.cut_bytes(poset.num_threads)

    def paramount_overhead_bytes(self, poset: Poset) -> int:
        """ParaMount's Gmin/Gbnd bookkeeping: two cuts per event."""
        return 2 * poset.num_events * self.cut_bytes(poset.num_threads)


@dataclass(frozen=True)
class MemoryReport:
    """Figure 12 row: modeled memory of one algorithm on one benchmark."""

    benchmark: str
    algorithm: str
    poset_bytes: int
    live_bytes: int
    overhead_bytes: int

    baseline_bytes: int = 8 * 1024 * 1024

    #: Measured peak of Python allocations during the run (``tracemalloc``),
    #: or ``None`` for model-only reports.
    measured_traced_bytes: Optional[int] = None
    #: Process high-water RSS after the run (``ru_maxrss``; monotone over
    #: the process lifetime, so an upper bound), or ``None``.
    measured_rss_bytes: Optional[int] = None

    @property
    def measured_traced_mb(self) -> Optional[float]:
        """Measured traced peak in MB, when this report carries one."""
        if self.measured_traced_bytes is None:
            return None
        return self.measured_traced_bytes / (1024.0 * 1024.0)

    @property
    def total_bytes(self) -> int:
        """Total modeled resident bytes (including the runtime baseline)."""
        return (
            self.baseline_bytes
            + self.poset_bytes
            + self.live_bytes
            + self.overhead_bytes
        )

    @property
    def total_mb(self) -> float:
        """Total in MB (the figure's unit)."""
        return self.total_bytes / (1024.0 * 1024.0)


# --------------------------------------------------------------------- #
# measured peaks


@dataclass(frozen=True)
class MeasuredPeak:
    """Measured peak memory of one run (what the model approximates)."""

    #: Peak of tracked Python allocations while the function ran
    #: (``tracemalloc``): the live-state growth the model prices per cut.
    traced_bytes: int
    #: ``getrusage`` high-water RSS of the whole process, in bytes.  This
    #: is monotone over the process lifetime (a *bound*, not a delta) —
    #: the analogue of the paper's whole-JVM Figure 12 measurements.
    rss_bytes: int


def measure_peak(fn: Callable[[], T]) -> Tuple[T, MeasuredPeak]:
    """Run ``fn`` under ``tracemalloc``; return its result and the peaks."""
    gc.collect()
    tracemalloc.start()
    try:
        result = fn()
        _, traced_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    if resource is not None:
        # Linux reports ru_maxrss in KiB.
        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    else:  # pragma: no cover
        rss = 0
    return result, MeasuredPeak(traced_bytes=traced_peak, rss_bytes=rss)


def measure_report(
    benchmark: str,
    algorithm: str,
    poset: Poset,
    memory_budget: Optional[int] = None,
    model: Optional[MemoryModel] = None,
) -> MemoryReport:
    """One Figure 12 row with *both* modeled and measured peaks filled in."""
    from repro.enumeration.base import make_enumerator

    mm = model if model is not None else MemoryModel()
    enumerator = make_enumerator(algorithm, poset, memory_budget=memory_budget)
    result, measured = measure_peak(lambda: enumerator.enumerate())
    return MemoryReport(
        benchmark=benchmark,
        algorithm=algorithm,
        poset_bytes=mm.poset_bytes(poset),
        live_bytes=mm.live_state_bytes(poset, result.peak_live),
        overhead_bytes=0,
        measured_traced_bytes=measured.traced_bytes,
        measured_rss_bytes=measured.rss_bytes,
    )


def _grid_poset(num_threads: int, chain_length: int) -> Poset:
    """Independent chains — the widest-lattice worst case for BFS."""
    from repro.poset.builder import PosetBuilder

    builder = PosetBuilder(num_threads)
    for _ in range(chain_length):
        for tid in range(num_threads):
            builder.append(tid)
    return builder.build()


def peak_memory_curve(
    widths: Sequence[int] = (2, 3, 4, 5),
    chain_length: int = 3,
    algorithms: Sequence[str] = ("lexical", "bfs", "level-space"),
) -> List[Dict[str, object]]:
    """Measured peak memory as a function of poset width.

    For each width ``n`` a grid poset (``n`` independent chains of
    ``chain_length`` events — ``(chain_length+1)^n`` states, widest
    possible levels) is enumerated by each algorithm under
    :func:`measure_peak`.  One row per (width, algorithm) with the
    measured peaks, the enumerator's ``peak_live`` and the modeled live
    bytes, so the curve shows both the measurement and what the model
    predicts: ``bfs`` rows grow super-linearly with width, ``lexical``
    and ``level-space`` rows stay at one live cut.
    """
    mm = MemoryModel()
    from repro.enumeration.base import make_enumerator

    rows: List[Dict[str, object]] = []
    for n in widths:
        poset = _grid_poset(n, chain_length)
        for algorithm in algorithms:
            enumerator = make_enumerator(algorithm, poset)
            result, measured = measure_peak(lambda e=enumerator: e.enumerate())
            rows.append(
                {
                    "width": n,
                    "chain_length": chain_length,
                    "algorithm": algorithm,
                    "states": result.states,
                    "peak_live": result.peak_live,
                    "modeled_live_bytes": mm.live_state_bytes(
                        poset, result.peak_live
                    ),
                    "traced_peak_bytes": measured.traced_bytes,
                    "rss_peak_bytes": measured.rss_bytes,
                }
            )
    return rows
