"""Lattice and partition profiling.

``repro-tools profile`` and the ablation benches use this to answer "what
does this poset's lattice look like, and how well will ParaMount's
partition parallelize it?" without eyeballing raw numbers:

* lattice shape: state count, level count, widest level (the BFS memory
  driver);
* partition shape: interval-size distribution, load imbalance, and the
  modeled speedups at the paper's worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.paramount import ParaMount
from repro.core.scheduling import plan_schedule
from repro.core.simulated import CostModel, simulate_schedule
from repro.enumeration.bfs import BFSEnumerator
from repro.poset.poset import Poset
from repro.util.cuts import zero_cut
from repro.util.stats import Summary, summarize
from repro.util.tables import TextTable

__all__ = ["LatticeProfile", "profile_poset", "render_profile"]


@dataclass(frozen=True)
class LatticeProfile:
    """Shape summary of one poset's lattice and its ParaMount partition."""

    threads: int
    events: int
    states: int
    levels: int
    max_level_width: int
    interval_sizes: Summary
    load_imbalance: float
    modeled_speedup: Dict[int, float]
    #: Max/mean per-worker load after the adaptive split schedule, per
    #: worker count (compare against the static ``load_imbalance``).
    schedule_imbalance: Dict[int, float] = None  # type: ignore[assignment]
    #: Modeled speedup under the adaptive split schedule, per worker count.
    scheduled_speedup: Dict[int, float] = None  # type: ignore[assignment]
    #: Total measured enumeration seconds (sum of per-interval times from
    #: the profiling run's observer — real spans, not the cost model).
    measured_seconds: float = 0.0
    #: Speedup at each worker count when the simulated schedule is fed the
    #: *measured* per-interval seconds instead of modeled costs.
    measured_speedup: Dict[int, float] = None  # type: ignore[assignment]
    #: Measured seconds per span category ("plan", "enumerate", ...) from
    #: the profiling run's trace.
    span_seconds: Dict[str, float] = None  # type: ignore[assignment]


def profile_poset(
    poset: Poset,
    cost_model: Optional[CostModel] = None,
    worker_counts: Sequence[int] = (1, 2, 4, 8),
) -> LatticeProfile:
    """Profile the lattice (full enumeration — size the poset accordingly)."""
    from repro.obs import Observer

    model = cost_model if cost_model is not None else CostModel()
    widths = BFSEnumerator(poset).level_widths(
        zero_cut(poset.num_threads), poset.lengths
    )
    # Profile with a live observer: the run's spans give real measured
    # times alongside the cost model's predictions.
    observer = Observer()
    paramount = ParaMount(poset, observer=observer)
    result = paramount.run()
    tasks = [model.task_seconds(s.work, s.peak_live) for s in result.intervals]
    serial = sum(tasks)
    speedups = {
        k: (serial / simulate_schedule(tasks, k).makespan if tasks else 1.0)
        for k in worker_counts
    }
    measured_tasks = [s.seconds for s in result.intervals]
    measured_serial = sum(measured_tasks)
    measured_speedup = {
        k: (
            measured_serial / simulate_schedule(measured_tasks, k).makespan
            if measured_tasks and measured_serial > 0
            else 1.0
        )
        for k in worker_counts
    }
    span_seconds: Dict[str, float] = {}
    for span in observer.spans():
        if not span.is_instant:
            span_seconds[span.category] = (
                span_seconds.get(span.category, 0.0) + span.dt
            )

    # The adaptive schedule's effect, modeled per worker count: sub-task
    # work is apportioned from the measured parent work by size-bound
    # share (the same heuristic the split budget itself uses).
    work_of = {s.event: s.work for s in result.intervals}
    peak_of = {s.event: s.peak_live for s in result.intervals}
    parent_bound = {iv.event: iv.size_bound for iv in paramount.intervals}
    schedule_imbalance: Dict[int, float] = {}
    scheduled_speedup: Dict[int, float] = {}
    for k in worker_counts:
        plan = plan_schedule(poset, paramount.intervals, "split-steal", k)
        split_tasks = [
            model.task_seconds(
                work_of.get(iv.event, 0)
                * iv.size_bound
                / parent_bound[iv.event],
                peak_of.get(iv.event, 0),
            )
            for iv in plan.tasks
        ]
        scheduled_speedup[k] = (
            serial / simulate_schedule(split_tasks, k).makespan
            if split_tasks
            else 1.0
        )
        bins = [0.0] * k
        for seconds in split_tasks:  # greedy deal in dispatch order
            bins[min(range(k), key=bins.__getitem__)] += seconds
        loads = [b for b in bins if b > 0]
        mean = sum(loads) / len(loads) if loads else 0.0
        schedule_imbalance[k] = max(loads) / mean if mean else 1.0

    return LatticeProfile(
        threads=poset.num_threads,
        events=poset.num_events,
        states=result.states,
        levels=len(widths),
        max_level_width=max(widths) if widths else 0,
        interval_sizes=summarize(
            [s.states for s in result.intervals] or [0]
        ),
        load_imbalance=result.load_imbalance(),
        modeled_speedup=speedups,
        schedule_imbalance=schedule_imbalance,
        scheduled_speedup=scheduled_speedup,
        measured_seconds=measured_serial,
        measured_speedup=measured_speedup,
        span_seconds=span_seconds,
    )


def render_profile(profile: LatticeProfile, title: str = "Lattice profile") -> str:
    """Render a profile as a two-column table."""
    table = TextTable(["metric", "value"], title=title)
    table.add_row(["threads (n)", profile.threads])
    table.add_row(["events |E|", profile.events])
    table.add_row(["global states i(P)", profile.states])
    table.add_row(["lattice levels", profile.levels])
    table.add_row(["widest level", profile.max_level_width])
    s = profile.interval_sizes
    table.add_row(
        ["interval sizes", f"mean {s.mean:.1f}, min {s.minimum:.0f}, max {s.maximum:.0f}"]
    )
    table.add_row(["load imbalance", f"{profile.load_imbalance:.2f}"])
    for k in sorted(profile.modeled_speedup):
        row = f"{profile.modeled_speedup[k]:.2f}x"
        if profile.scheduled_speedup:
            row += f" (split: {profile.scheduled_speedup.get(k, 0.0):.2f}x)"
        if profile.measured_speedup:
            row += f" (measured: {profile.measured_speedup.get(k, 0.0):.2f}x)"
        table.add_row([f"modeled speedup ({k}w)", row])
    if profile.schedule_imbalance:
        worst = max(profile.schedule_imbalance.values())
        table.add_row(["schedule imbalance (split)", f"{worst:.2f}"])
    if profile.measured_seconds:
        table.add_row(
            ["measured enumeration", f"{profile.measured_seconds:.4f}s"]
        )
    if profile.span_seconds:
        parts = ", ".join(
            f"{category} {seconds * 1e3:.1f}ms"
            for category, seconds in sorted(profile.span_seconds.items())
        )
        table.add_row(["span time by category", parts])
    return table.render()
