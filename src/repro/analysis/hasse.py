"""Text rendering of small global-state lattices.

Debugging aid used by the examples and docs: prints the lattice of
consistent cuts level by level (a level = number of executed events, the
paper's Figure 2(b)/4(c) layout rotated), optionally marking the states
that satisfy a predicate.  Intended for posets with at most a few hundred
states — render anything bigger with statistics, not pictures.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.enumeration.lexical import LexicalEnumerator
from repro.poset.lattice import consistent_successors
from repro.poset.poset import Poset
from repro.types import Cut

__all__ = ["lattice_levels", "hasse_edges", "render_lattice"]

#: Refuse to render lattices bigger than this (use statistics instead).
MAX_RENDER_STATES = 2000


def lattice_levels(poset: Poset) -> Dict[int, List[Cut]]:
    """Consistent cuts grouped by level (= number of executed events)."""
    levels: Dict[int, List[Cut]] = {}

    def visit(cut: Cut) -> None:
        levels.setdefault(sum(cut), []).append(cut)

    result = LexicalEnumerator(poset).enumerate(visit)
    if result.states > MAX_RENDER_STATES:  # pragma: no cover - guard
        raise ValueError(
            f"lattice has {result.states} states; too large to render"
        )
    for cuts in levels.values():
        cuts.sort()
    return levels


def hasse_edges(poset: Poset) -> List[Tuple[Cut, Cut]]:
    """Covering pairs of the lattice: ``(G, G')`` with ``G'`` one event
    above ``G`` (the arrows of the paper's Figure 2(b))."""
    edges: List[Tuple[Cut, Cut]] = []

    def visit(cut: Cut) -> None:
        for succ in consistent_successors(poset, cut):
            edges.append((cut, succ))

    LexicalEnumerator(poset).enumerate(visit)
    return edges


def render_lattice(
    poset: Poset,
    mark: Optional[Callable[[Cut], bool]] = None,
    label: str = "*",
) -> str:
    """Render the lattice bottom-up, one level per line.

    ``mark`` flags states (e.g. predicate witnesses) with ``label``::

        level 0:  (0,0)
        level 1:  (0,1)  (1,0)
        level 2:  (1,1)* (0,2)
    """
    levels = lattice_levels(poset)
    lines: List[str] = []
    for level in sorted(levels):
        cells = []
        for cut in levels[level]:
            text = "(" + ",".join(str(c) for c in cut) + ")"
            if mark is not None and mark(cut):
                text += label
            cells.append(text)
        lines.append(f"level {level:>2}:  " + "  ".join(cells))
    return "\n".join(lines)
