"""Analysis and reporting: speedup computation on the simulated parallel
machine, the memory model behind Figure 12, lattice profiling and
rendering, and text renderers for the paper's tables and figures."""

from repro.analysis.hasse import hasse_edges, lattice_levels, render_lattice
from repro.analysis.memory import MemoryModel, MemoryReport
from repro.analysis.profile import LatticeProfile, profile_poset, render_profile
from repro.analysis.speedup import (
    EnumerationMeasurement,
    SpeedupCurve,
    measure_paramount,
    measure_sequential,
    speedup_curve,
)

__all__ = [
    "EnumerationMeasurement",
    "SpeedupCurve",
    "measure_sequential",
    "measure_paramount",
    "speedup_curve",
    "MemoryModel",
    "MemoryReport",
    "LatticeProfile",
    "profile_poset",
    "render_profile",
    "lattice_levels",
    "hasse_edges",
    "render_lattice",
]
