"""Static lock-order graph with cycle detection.

Every :class:`~repro.staticcheck.extract.LockOrderEdge` ``held → acquired``
says some thread acquired ``acquired`` while holding ``held``.  A cycle
``a → b → … → a`` means two (or more) threads can interleave their nested
acquisitions into a circular wait — the classic static deadlock signal.

Each cycle is converted into a *hypothetical*
:class:`~repro.runtime.waitgraph.WaitForGraph` — the same structure the
scheduler attaches to a dynamic :class:`~repro.errors.DeadlockError` — so
static warnings and dynamic deadlock reports can be compared directly.

A cycle whose witnesses all come from one non-replicated thread instance
is discarded: a single sequential thread cannot deadlock with itself by
ordering alone (it would have to hold both locks at once, which the
self-deadlock check reports separately).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.runtime.waitgraph import WaitEdge, WaitForGraph
from repro.staticcheck.diag import SourceSpan
from repro.staticcheck.extract import LockOrderEdge, ProgramSummary
from repro.staticcheck.report import StaticWarning

__all__ = ["analyze_lock_order"]


def _lock_cycles(edges: List[LockOrderEdge]) -> List[List[LockOrderEdge]]:
    """Elementary cycles in the lock graph, deduplicated up to rotation."""
    by_src: Dict[str, List[LockOrderEdge]] = {}
    for edge in edges:
        by_src.setdefault(edge.held, []).append(edge)
    found: Dict[Tuple[str, ...], List[LockOrderEdge]] = {}

    def canonical(cycle: List[LockOrderEdge]) -> Tuple[str, ...]:
        locks = [e.held for e in cycle]
        return min(tuple(locks[i:] + locks[:i]) for i in range(len(locks)))

    def walk(path: List[LockOrderEdge], on_path: List[str]) -> None:
        for edge in by_src.get(on_path[-1], ()):
            if edge.acquired == on_path[0]:
                cycle = path + [edge]
                found.setdefault(canonical(cycle), cycle)
            elif edge.acquired not in on_path:
                walk(path + [edge], on_path + [edge.acquired])

    for lock in sorted(by_src):
        walk([], [lock])
    return list(found.values())


def _viable(cycle: List[LockOrderEdge], summary: ProgramSummary) -> bool:
    """A cycle needs ≥ 2 distinct threads (or one replicated instance)."""
    labels: Set[str] = {e.thread for e in cycle}
    if len(labels) >= 2:
        return True
    replicated = {i.label for i in summary.instances if i.replicated}
    return bool(labels & replicated)


def _hypothetical_graph(cycle: List[LockOrderEdge]) -> WaitForGraph:
    """The wait-for graph of the interleaving the cycle makes possible:
    each witness holds its ``held`` lock and waits on its ``acquired``
    lock, held by the next witness around the cycle."""
    edges = []
    for i, e in enumerate(cycle):
        nxt = cycle[(i + 1) % len(cycle)]
        edges.append(
            WaitEdge(waiter=e.thread, holder=nxt.thread, resource=e.acquired, kind="lock")
        )
    return WaitForGraph.from_edges(edges)


def analyze_lock_order(summary: ProgramSummary) -> List[StaticWarning]:
    """Emit deadlock warnings for lock-order cycles and re-acquisitions."""
    warnings: List[StaticWarning] = []
    for cycle in _lock_cycles(summary.lock_edges):
        if not _viable(cycle, summary):
            continue
        locks = tuple(e.held for e in cycle)
        threads = tuple(sorted({e.thread for e in cycle}))
        ring = " -> ".join(locks + (locks[0],))
        warnings.append(
            StaticWarning(
                category="deadlock",
                message=f"lock-order cycle {ring} between threads {', '.join(threads)}",
                locks=locks,
                threads=threads,
                graph=_hypothetical_graph(cycle),
                sites=tuple(f"line {e.line}: {e.held} -> {e.acquired}" for e in cycle),
                rule="LO001",
                spans=tuple(SourceSpan(file=e.file, line=e.line) for e in cycle),
                evidence={
                    "cycle": [
                        {"held": e.held, "acquired": e.acquired, "thread": e.thread, "line": e.line}
                        for e in cycle
                    ]
                },
                fix=f"acquire locks in one global order: {', '.join(sorted(set(locks)))}",
            )
        )
    for thread, lock, line, file in summary.self_deadlocks:
        warnings.append(
            StaticWarning(
                category="self-deadlock",
                var=lock,
                message=(
                    f"{thread} acquires non-reentrant lock {lock!r} while "
                    "already holding it"
                ),
                threads=(thread,),
                locks=(lock,),
                sites=(f"line {line}",),
                rule="LO002",
                spans=(SourceSpan(file=file, line=line),),
                evidence={"thread": thread, "lock": lock, "line": line},
                fix=f"release {lock!r} before re-acquiring, or use a reentrant lock",
            )
        )
    return warnings
