"""Static may-happen-in-parallel (MHP) analysis over extracted summaries.

The extractor (:mod:`repro.staticcheck.extract`) records, per access site,
conservative fork/join knowledge (which child instances may already be
forked, which are surely joined).  This module turns that per-site
knowledge into an explicit **static happens-before skeleton** and answers
MHP queries by reachability closure over it — the partial-order view a
pairwise heuristic cannot provide, because ordering composes
*transitively* across instances (a joined child orders a later fork, which
orders that fork's grandchildren, and so on).

Construction
------------

Per thread instance ``X`` the graph has a *start* node ``S(X)`` ("no copy
of ``X`` has begun") and an *end* node ``E(X)`` ("every copy of ``X`` has
finished").  The instance's access sites are grouped into **segments** —
maximal site groups sharing the same fork/join snapshot, i.e. the code
regions delimited by the fork/join boundaries the extractor observed.
Edges encode exactly the sound ordering facts of the summary:

* ``S(X) -> seg -> E(X)`` for every segment of ``X`` (each dynamic event
  of ``X`` runs after its own copy starts and before it ends);
* ``S(P) -> S(X)`` when ``P`` forks ``X`` (every copy of ``X`` is forked
  by a running copy of ``P``);
* ``seg -> S(X)`` when ``seg``'s sites run in ``X``'s parent and on every
  path *before* any fork of ``X`` (fork edge);
* ``E(X) -> seg`` when ``seg``'s sites run in ``X``'s parent and on every
  path *after* all copies of ``X`` are joined (join edge);
* ``E(X) -> S(Y)`` when instance ``Y`` is first forked only after every
  copy of ``X`` was joined (sibling serialization).

Every edge is a sound happens-before claim (see DESIGN.md §7a for the
argument, including the replicated-instance reading of ``S``/``E``), so
graph reachability implies happens-before in **all** executions; two sites
of different instances may happen in parallel only when neither segment
reaches the other.

Same-instance pairs need no graph: a single dynamic thread is sequential
with itself, and a *replicated* instance (a fork site standing for several
dynamic threads) is pairwise-ordered exactly when the extractor proved the
re-forks serial (``ThreadInstance.serial_refork`` — the fork/join-loop
idiom).

Two query flavors, deliberately distinct:

* :meth:`MHPAnalysis.ordered` — provable happens-before in every run.
  This is what the race analyzer and the detector-side pruner use.
* :meth:`MHPAnalysis.may_happen_in_parallel` — additionally treats sites
  whose locksets surely share a lock as non-parallel (monitors force
  serialization in *some* order).  Mutual exclusion is not ordering, so
  this must never feed a decision that needs happens-before; it exists
  for clients asking the literal "can these run simultaneously?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.staticcheck.extract import AccessSite, ProgramSummary

__all__ = [
    "MHPAnalysis",
    "Segment",
    "build_mhp",
]

#: Segment grouping key: (instance id, forked_before, joined_before).
_SegKey = Tuple[int, frozenset, frozenset]


@dataclass(frozen=True)
class Segment:
    """A maximal group of one instance's access sites sharing a fork/join
    snapshot — a code region between fork/join boundaries."""

    id: int
    instance: int
    #: Child instance ids possibly forked when the region runs.
    forked_before: frozenset
    #: Child instance ids surely fully joined when the region runs.
    joined_before: frozenset
    #: Number of access sites grouped into this segment.
    num_sites: int


class MHPAnalysis:
    """Reachability-closed static happens-before graph of one summary."""

    def __init__(self, summary: ProgramSummary):
        self.summary = summary
        #: Segment key -> graph node id.
        self._seg_ids: Dict[_SegKey, int] = {}
        self._seg_sites: Dict[_SegKey, int] = {}
        #: Per instance id: (start node id, end node id).
        self._se: Dict[int, Tuple[int, int]] = {}
        self._succ: List[Set[int]] = []
        self._reach: List[int] = []
        self._build()

    # ------------------------------------------------------------------ #
    # construction

    def _new_node(self) -> int:
        self._succ.append(set())
        return len(self._succ) - 1

    def _seg_node(self, key: _SegKey) -> int:
        node = self._seg_ids.get(key)
        if node is None:
            node = self._seg_ids[key] = self._new_node()
            self._seg_sites[key] = 0
        return node

    def _build(self) -> None:
        summary = self.summary
        for inst in summary.instances:
            self._se[inst.id] = (self._new_node(), self._new_node())
        for site in summary.accesses:
            key = (site.instance, site.forked_before, site.joined_before)
            self._seg_node(key)
            self._seg_sites[key] += 1
        for inst in summary.instances:
            start, end = self._se[inst.id]
            self._succ[start].add(end)
            if inst.parent is not None:
                parent_start, _ = self._se[inst.parent]
                self._succ[parent_start].add(start)
            for other in inst.forked_after_joins:
                _, other_end = self._se[other]
                self._succ[other_end].add(start)
        for (instance, forked_before, joined_before), node in self._seg_ids.items():
            start, end = self._se[instance]
            self._succ[start].add(node)
            self._succ[node].add(end)
            for inst in summary.instances:
                if inst.parent != instance:
                    continue
                child_start, child_end = self._se[inst.id]
                if inst.id not in forked_before:
                    self._succ[node].add(child_start)  # fork edge
                if inst.id in joined_before:
                    self._succ[child_end].add(node)  # join edge
        self._close()

    def _close(self) -> None:
        """Transitive closure as per-node reachability bitmasks.

        The graphs are tiny (a handful of nodes per instance), so an
        iterative DFS per node is plenty; bitmasks make the pairwise
        queries O(1)."""
        n = len(self._succ)
        self._reach = [0] * n
        for root in range(n):
            seen = 0
            stack = list(self._succ[root])
            while stack:
                node = stack.pop()
                bit = 1 << node
                if seen & bit:
                    continue
                seen |= bit
                stack.extend(self._succ[node])
            self._reach[root] = seen

    # ------------------------------------------------------------------ #
    # queries

    @property
    def segments(self) -> List[Segment]:
        """The segment nodes, in creation order."""
        return [
            Segment(
                id=node,
                instance=key[0],
                forked_before=key[1],
                joined_before=key[2],
                num_sites=self._seg_sites[key],
            )
            for key, node in self._seg_ids.items()
        ]

    @property
    def num_nodes(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._succ)

    def _node_of(self, site: AccessSite):
        key = (site.instance, site.forked_before, site.joined_before)
        return self._seg_ids.get(key)

    def _reaches(self, a: int, b: int) -> bool:
        return bool(self._reach[a] & (1 << b))

    def ordered(self, a: AccessSite, b: AccessSite) -> bool:
        """Whether the two sites are happens-before ordered (one way or
        the other) in **every** execution."""
        if a.instance == b.instance:
            inst = self.summary.instance(a.instance)
            # One dynamic thread is sequential with itself; a replicated
            # instance stands for several dynamic threads, pairwise
            # ordered only when the re-forks were proven serial.
            return (not inst.replicated) or inst.serial_refork
        na, nb = self._node_of(a), self._node_of(b)
        if na is None or nb is None:
            # A site not drawn from this summary (e.g. built by hand in a
            # test): only whole-instance ordering can be claimed soundly.
            return self.instance_ordered(a.instance, b.instance)
        return self._reaches(na, nb) or self._reaches(nb, na)

    def may_happen_in_parallel(self, a: AccessSite, b: AccessSite) -> bool:
        """The literal MHP question: can the two sites execute
        *simultaneously* in some run?  Ordering rules it out, and so does
        a surely-shared lock (the monitor serializes the two regions,
        though in schedule-dependent order)."""
        if self.ordered(a, b):
            return False
        return not (a.lockset & b.lockset)

    def instance_ordered(self, xa: int, xb: int) -> bool:
        """Whether *every* site pair across the two instances is ordered
        (instance-granularity convenience for reports)."""
        if xa == xb:
            inst = self.summary.instance(xa)
            return (not inst.replicated) or inst.serial_refork
        (sa, ea), (sb, eb) = self._se[xa], self._se[xb]
        return self._reaches(ea, sb) or self._reaches(eb, sa)

    # ------------------------------------------------------------------ #
    # diagnostics

    def describe(self) -> str:
        """Human-readable rendering of the segment graph (CLI ``--mhp``)."""
        summary = self.summary
        segments = self.segments
        lines = [
            f"MHP segment graph of {summary.program_name!r}: "
            f"{len(summary.instances)} instance(s), {len(segments)} "
            f"segment(s), {self.num_edges} edge(s)"
        ]
        by_instance: Dict[int, List[Segment]] = {}
        for seg in segments:
            by_instance.setdefault(seg.instance, []).append(seg)
        for inst in summary.instances:
            tag = ""
            if inst.replicated:
                tag = (
                    " [replicated, serial re-fork]"
                    if inst.serial_refork
                    else " [replicated]"
                )
            lines.append(f"  {inst.label}{tag}:")
            for seg in by_instance.get(inst.id, []):
                forked = ",".join(
                    summary.instance(i).label for i in sorted(seg.forked_before)
                ) or "-"
                joined = ",".join(
                    summary.instance(i).label for i in sorted(seg.joined_before)
                ) or "-"
                lines.append(
                    f"    segment#{seg.id}: {seg.num_sites} site(s), "
                    f"forked={{{forked}}} joined={{{joined}}}"
                )
            if inst.id not in by_instance:
                lines.append("    (no access sites)")
        ordered_pairs = concurrent_pairs = 0
        sites = summary.accesses
        for i, a in enumerate(sites):
            for b in sites[i + 1 :]:
                if self.ordered(a, b):
                    ordered_pairs += 1
                else:
                    concurrent_pairs += 1
        lines.append(
            f"  site pairs: {ordered_pairs} ordered, "
            f"{concurrent_pairs} possibly concurrent"
        )
        return "\n".join(lines)


def build_mhp(summary: ProgramSummary) -> MHPAnalysis:
    """Construct the MHP analysis for an extracted summary."""
    return MHPAnalysis(summary)
