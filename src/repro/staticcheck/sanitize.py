"""Opt-in runtime sanitizers for the simulate → detect → enumerate pipeline.

Three checkers, one per pipeline stage, each asserting the invariants the
correctness argument of the paper rests on:

* :class:`TraceSanitizer` — fed every :class:`~repro.runtime.trace.TraceOp`
  the scheduler emits (``Scheduler(..., sanitizer=...)``): global and
  per-thread sequence monotonicity, lock acquire/release discipline
  (including the wait-releases-then-reacquires protocol), and thread
  lifecycle (start before use, join only of finished threads, no
  operations after end).
* :class:`ClockSanitizer` — fed every :class:`~repro.poset.event.Event`
  the HB front-end emits (``HBFrontEnd(..., sanitizer=...)``): the
  ``vc[tid] == idx`` invariant that lets ``Gmin(e)`` be read straight off
  the clock (§2.2), per-thread chain contiguity, and componentwise clock
  monotonicity along each thread.
* :class:`EnumerationSanitizer` — fed every interval and every enumerated
  cut by the ParaMount driver (``ParaMount(..., sanitizer=...)``):
  ``Gmin(e) ≤ Gbnd(e)`` for every interval, every cut within its
  interval's bounds, and — Theorem 2's disjointness — no global state
  visited twice across intervals.

:class:`PipelineSanitizer` bundles all three behind the union of their
observe interfaces, so one object can be handed to every stage.

By default violations are *collected* (``sanitizer.violations``) so a test
can assert on the whole run; ``strict=True`` raises
:class:`~repro.errors.SanitizerError` at the first violation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import SanitizerError
from repro.util.cuts import cut_leq

__all__ = [
    "ClockSanitizer",
    "EnumerationSanitizer",
    "PipelineSanitizer",
    "SanitizerViolation",
    "TraceSanitizer",
]


@dataclass(frozen=True)
class SanitizerViolation:
    """One violated invariant."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"

    def as_diagnostic(self, program: str = "") -> "Diagnostic":
        """This violation as an ``SN001`` (error-severity) diagnostic."""
        from repro.staticcheck.diag import Diagnostic

        return Diagnostic(
            rule="SN001",
            message=self.message,
            program=program,
            evidence={"invariant": self.invariant},
        )


class _Checker:
    """Shared collect-or-raise behavior."""

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.violations: List[SanitizerViolation] = []

    def _flag(self, invariant: str, message: str) -> None:
        violation = SanitizerViolation(invariant=invariant, message=message)
        self.violations.append(violation)
        if self.strict:
            raise SanitizerError(str(violation))

    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_clean(self) -> None:
        """Raise unless the run was violation-free."""
        if self.violations:
            raise SanitizerError(
                f"{len(self.violations)} sanitizer violation(s):\n"
                + "\n".join(str(v) for v in self.violations)
            )


class TraceSanitizer(_Checker):
    """Validates the operation stream the scheduler emits."""

    def __init__(self, strict: bool = False):
        super().__init__(strict)
        self.ops_observed = 0
        self._last_seq = -1
        self._last_seq_by_tid: Dict[int, int] = {}
        self._lock_owner: Dict[str, Optional[int]] = {}
        self._held: Dict[int, Set[str]] = {}
        self._started: Set[int] = set()
        self._ended: Set[int] = set()

    def observe(self, op) -> None:
        self.ops_observed += 1
        tid = op.tid
        if op.seq <= self._last_seq:
            self._flag(
                "seq-monotone",
                f"op seq {op.seq} not greater than previous {self._last_seq}",
            )
        self._last_seq = max(self._last_seq, op.seq)
        prev = self._last_seq_by_tid.get(tid)
        if prev is not None and op.seq <= prev:
            self._flag(
                "seq-monotone",
                f"thread {tid} op seq {op.seq} not greater than its previous {prev}",
            )
        self._last_seq_by_tid[tid] = max(prev if prev is not None else -1, op.seq)

        if tid in self._ended:
            self._flag("lifecycle", f"thread {tid} emitted {op.kind!r} after thread_end")
        if op.kind == "thread_start":
            if tid in self._started:
                self._flag("lifecycle", f"thread {tid} started twice")
            self._started.add(tid)
            return
        if tid not in self._started:
            self._flag("lifecycle", f"thread {tid} emitted {op.kind!r} before thread_start")
            self._started.add(tid)

        if op.kind == "thread_end":
            held = self._held.get(tid)
            if held:
                self._flag(
                    "lock-discipline",
                    f"thread {tid} ended holding lock(s) {sorted(held)}",
                )
            self._ended.add(tid)
        elif op.kind in ("acquire", "wait"):
            # a "wait" record marks the monitor *re-acquisition* after the
            # suspension (the release was emitted separately), so both
            # kinds require the lock to be free and take ownership.
            owner = self._lock_owner.get(op.obj)
            if owner is not None:
                self._flag(
                    "lock-discipline",
                    f"thread {tid} {op.kind}d lock {op.obj!r} owned by thread {owner}",
                )
            self._lock_owner[op.obj] = tid
            self._held.setdefault(tid, set()).add(op.obj)
        elif op.kind == "release":
            owner = self._lock_owner.get(op.obj)
            if owner != tid:
                self._flag(
                    "lock-discipline",
                    f"thread {tid} released lock {op.obj!r} owned by {owner}",
                )
            self._lock_owner[op.obj] = None
            self._held.setdefault(tid, set()).discard(op.obj)
        elif op.kind == "notify":
            owner = self._lock_owner.get(op.obj)
            if owner != tid:
                self._flag(
                    "lock-discipline",
                    f"thread {tid} notified lock {op.obj!r} owned by {owner}",
                )
        elif op.kind == "fork":
            if op.target in self._started:
                self._flag("lifecycle", f"thread {tid} forked already-started thread {op.target}")
        elif op.kind == "join":
            if op.target not in self._ended:
                self._flag(
                    "lifecycle",
                    f"thread {tid} joined thread {op.target} before it ended",
                )


class ClockSanitizer(_Checker):
    """Validates the vector-clocked events the HB front-end emits."""

    def __init__(self, strict: bool = False):
        super().__init__(strict)
        self.events_observed = 0
        self._last_vc: Dict[int, Tuple[int, ...]] = {}
        self._last_idx: Dict[int, int] = {}

    def observe_event(self, event) -> None:
        self.events_observed += 1
        tid, idx, vc = event.tid, event.idx, event.vc
        if not 0 <= tid < len(vc):
            self._flag("clock-shape", f"event tid {tid} out of range for clock {vc}")
            return
        if vc[tid] != idx:
            self._flag(
                "gmin-invariant",
                f"event ({tid},{idx}) has vc[tid]={vc[tid]} != idx (§2.2 broken)",
            )
        prev_idx = self._last_idx.get(tid, 0)
        if idx != prev_idx + 1:
            self._flag(
                "chain-contiguity",
                f"thread {tid} emitted idx {idx} after idx {prev_idx}",
            )
        self._last_idx[tid] = idx
        prev_vc = self._last_vc.get(tid)
        if prev_vc is not None and not cut_leq(prev_vc, vc):
            self._flag(
                "clock-monotone",
                f"thread {tid} clock regressed: {prev_vc} -> {vc}",
            )
        self._last_vc[tid] = tuple(vc)


class EnumerationSanitizer(_Checker):
    """Validates the interval partition and the enumerated global states.

    Duplicate detection keeps every visited cut in a set — fine for the
    workload-scale lattices the sanitizer is meant for, and exactly what
    certifies Theorem 2's "each state visited exactly once" claim.
    """

    def __init__(self, strict: bool = False):
        super().__init__(strict)
        self.intervals_observed = 0
        self.states_observed = 0
        self._seen: Set[Tuple[int, ...]] = set()
        self._mutex = threading.Lock()

    def observe_interval(self, interval) -> None:
        with self._mutex:
            self.intervals_observed += 1
            if not cut_leq(interval.lo, interval.hi):
                self._flag(
                    "interval-bounds",
                    f"interval of {interval.event}: Gmin={interval.lo} "
                    f"exceeds Gbnd={interval.hi}",
                )

    def observe_state(self, interval, cut) -> None:
        key = tuple(cut)
        with self._mutex:
            self.states_observed += 1
            if not interval.contains(cut):
                self._flag(
                    "interval-membership",
                    f"cut {key} enumerated by interval {interval.event} "
                    f"[{interval.lo}, {interval.hi}] but outside its bounds",
                )
            if key in self._seen:
                self._flag(
                    "partition-disjoint",
                    f"cut {key} enumerated twice (Theorem 2 violated)",
                )
            self._seen.add(key)


class PipelineSanitizer(_Checker):
    """One object implementing all three observe interfaces.

    Hand the same instance to ``run_program``, ``HBFrontEnd`` and
    ``ParaMount`` to sanitize a full Table 1 pipeline end-to-end.
    """

    def __init__(self, strict: bool = False):
        super().__init__(strict)
        self.trace = TraceSanitizer(strict=strict)
        self.clocks = ClockSanitizer(strict=strict)
        self.enumeration = EnumerationSanitizer(strict=strict)

    def observe(self, op) -> None:
        self.trace.observe(op)

    def observe_event(self, event) -> None:
        self.clocks.observe_event(event)

    def observe_interval(self, interval) -> None:
        self.enumeration.observe_interval(interval)

    def observe_state(self, interval, cut) -> None:
        self.enumeration.observe_state(interval, cut)

    @property
    def violations(self) -> List[SanitizerViolation]:  # type: ignore[override]
        return (
            self.trace.violations
            + self.clocks.violations
            + self.enumeration.violations
        )

    @violations.setter
    def violations(self, value) -> None:
        # _Checker.__init__ assigns []; sub-checkers own the real lists.
        pass

    def counters(self) -> Dict[str, int]:
        return {
            "trace_ops": self.trace.ops_observed,
            "events": self.clocks.events_observed,
            "intervals": self.enumeration.intervals_observed,
            "states": self.enumeration.states_observed,
        }
