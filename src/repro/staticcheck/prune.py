"""Static pruning bridge: MHP facts feeding the dynamic detector.

The ParaMount detector evaluates its predicate on every enumerated global
state for every captured variable.  A variable whose *every* pair of
static access sites is provably happens-before ordered (including
self-pairs, :meth:`~repro.staticcheck.mhp.MHPAnalysis.ordered`) cannot
race in any execution, so the detector may skip its accesses entirely —
no event-collection bookkeeping, no predicate work — without changing any
race report.

Why dropping those accesses is report-preserving: the HB front-end's
vector clocks advance only through synchronization operations, which the
pruner never touches; concurrency between the remaining events is decided
purely by those clock merges.  Removing access events of an unrelated,
provably-ordered variable can change event/state *counts* but never which
of the surviving access pairs are concurrent, hence never a detection.

Trust boundary: the decision is sound only when the static summary is
*complete* — every dynamic access to the variable corresponds to some
extracted site.  Every extractor approximation note (unanalyzed fork
body, depth/instance limit, unmodeled statement, dynamic lock name, …)
signals possible incompleteness, so a summary with any notes prunes
nothing.  Likewise a dynamic variable name no static site may-alias is
never skipped.  All of this errs toward "don't prune": pruning less is
always correct, merely slower.

The detector layer stays import-free of this module: ``HBFrontEnd`` and
``ParaMountDetector`` take the pruner duck-typed (anything with
``should_skip(var)``), mirroring the sanitizer hook.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.runtime.program import Program
from repro.staticcheck.extract import ProgramSummary, extract_summary
from repro.staticcheck.mhp import MHPAnalysis
from repro.staticcheck.values import names_may_alias

__all__ = ["StaticPruner", "build_pruner"]


class StaticPruner:
    """Per-variable skip oracle backed by one program's MHP analysis."""

    def __init__(self, summary: ProgramSummary, mhp: Optional[MHPAnalysis] = None):
        self.summary = summary
        self.mhp = mhp if mhp is not None else MHPAnalysis(summary)
        #: Pruning is only sound for a complete summary (see module doc).
        self.trusted = not summary.approximations
        self._cache: Dict[str, bool] = {}

    @classmethod
    def from_program(cls, program: Program) -> "StaticPruner":
        """Extract the program's summary and build its pruner."""
        return cls(extract_summary(program))

    def should_skip(self, var: str) -> bool:
        """Whether the detector may drop accesses to ``var`` (sound skip).

        ``var`` is a *dynamic* variable name; it is matched against the
        static sites through may-alias, so pattern-named sites (f-string
        variables) participate conservatively.
        """
        cached = self._cache.get(var)
        if cached is None:
            cached = self._cache[var] = self._decide(var)
        return cached

    def _decide(self, var: str) -> bool:
        if not self.trusted:
            return False
        sites = [s for s in self.summary.accesses if names_may_alias(s.var, var)]
        if not sites:
            # Statically unseen variable: never skip.
            return False
        for i, a in enumerate(sites):
            for b in sites[i:]:
                if not self.mhp.ordered(a, b):
                    return False
        return True

    # ------------------------------------------------------------------ #
    # diagnostics

    def prunable_static_vars(self) -> List[str]:
        """The concretely-named static variables the oracle would skip."""
        names = sorted(
            {str(s.var) for s in self.summary.accesses if isinstance(s.var, str)}
        )
        return [v for v in names if self.should_skip(v)]

    def describe(self) -> str:
        """Human-readable pruning summary (CLI ``detect --static-prune``)."""
        if not self.trusted:
            return (
                f"static pruner for {self.summary.program_name!r}: summary "
                f"has {len(self.summary.approximations)} approximation "
                f"note(s); pruning disabled"
            )
        prunable = self.prunable_static_vars()
        total = len({str(s.var) for s in self.summary.accesses})
        lines = [
            f"static pruner for {self.summary.program_name!r}: "
            f"{len(prunable)}/{total} statically-ordered variable(s) prunable"
        ]
        for var in prunable:
            lines.append(f"  prunable: {var}")
        return "\n".join(lines)


def build_pruner(program: Program) -> StaticPruner:
    """Convenience alias for :meth:`StaticPruner.from_program`."""
    return StaticPruner.from_program(program)
