"""Static predicate classification: which detection fast path is *provably* safe.

The paper motivates general-purpose enumeration because an **arbitrary**
predicate forces visiting every global state (§1, §6.2) — but most
predicates users actually write are not arbitrary.  This module assigns
every predicate object a class in the routing lattice

    ``local ⊂ conjunctive ⊂ linear ⊂ stable ⊂ arbitrary``

(read left-to-right as "cheapest applicable fast path" to "no fast path";
it is a detection-difficulty chain, not a semantic containment — see
DESIGN §7e) and emits a machine-checkable
:class:`ClassificationCertificate` that the
:class:`~repro.detector.planner.DetectionPlanner` consumes.

The certificate carries *evidence*, not trust:

* **conjunctive/local** claims are proven: each conjunct's function source
  is parsed (the same ``inspect.getsource`` + AST walk idiom as
  :mod:`repro.staticcheck.extract`) and verified to read only the event
  parameter's thread-local attributes (``tid``, ``idx``, ``kind``,
  ``obj``, ``accesses``, ``eid``), whitelisted pure builtins, and
  immutable closure constants.  Every verified conjunct contributes a
  :class:`LocalityWitness`; any violation contributes a :class:`Demotion`
  carrying the *concrete offending sub-expression* (e.g. ``e.vc[0]`` — a
  cross-thread clock read disguised as a local predicate) and the whole
  predicate drops to ``arbitrary``.
* **linear/stable** claims are structural: the predicate must subclass
  :class:`~repro.predicates.linear.LinearPredicate` /
  :class:`~repro.predicates.stable.StablePredicate` *and* supply a
  non-empty meet-closure / upward-closure argument, which is recorded in
  the certificate for audit; claims without an argument are demoted.
  Cross-validation (:mod:`repro.staticcheck.crossval`) additionally checks
  every routed verdict against full enumeration.
* everything else — including the data-race predicate — is ``arbitrary``
  and keeps the full ParaMount path, byte-for-byte.

The soundness contract: a demotion can only ever *widen* the route toward
full enumeration, so a wrong (too conservative) classification costs time,
never a verdict.
"""

from __future__ import annotations

import ast
import enum
import inspect
import textwrap
from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple, Union

__all__ = [
    "PredicateClass",
    "LocalityWitness",
    "Demotion",
    "ClassificationCertificate",
    "classify_predicate",
    "verify_certificate",
]


class PredicateClass(enum.Enum):
    """The routing lattice, cheapest fast path first."""

    LOCAL = "local"
    CONJUNCTIVE = "conjunctive"
    LINEAR = "linear"
    STABLE = "stable"
    ARBITRARY = "arbitrary"

    @property
    def rank(self) -> int:
        """Position in the routing chain (higher ⇒ more general ⇒ slower)."""
        return _RANK[self]

    def __lt__(self, other: "PredicateClass") -> bool:
        return self.rank < other.rank

    def __le__(self, other: "PredicateClass") -> bool:
        return self.rank <= other.rank


_RANK = {
    PredicateClass.LOCAL: 0,
    PredicateClass.CONJUNCTIVE: 1,
    PredicateClass.LINEAR: 2,
    PredicateClass.STABLE: 3,
    PredicateClass.ARBITRARY: 4,
}


@dataclass(frozen=True)
class LocalityWitness:
    """Proof that one conjunct reads only its own thread's frontier event."""

    #: Thread the conjunct constrains.
    tid: int
    #: Function name (``<lambda>`` for anonymous conjuncts).
    func: str
    #: Event attributes the conjunct reads (sorted).
    reads: Tuple[str, ...] = ()
    #: Immutable closure constants the conjunct captures (sorted names).
    captures: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Demotion:
    """Why a claim was rejected, with the offending sub-expression."""

    #: What was being analyzed (``conjunct[tid=2]``, ``predicate``, …).
    subject: str
    reason: str
    #: Source of the sub-expression that forced the demotion ("" when the
    #: failure is structural, e.g. unavailable source).
    expr: str = ""

    def describe(self) -> str:
        tail = f": {self.expr}" if self.expr else ""
        return f"{self.subject}: {self.reason}{tail}"


@dataclass(frozen=True)
class ClassificationCertificate:
    """The classifier's machine-checkable output for one predicate.

    ``claimed`` is the class the predicate's structure (or its registry
    declaration) asserts; ``assigned`` is what the classifier could prove.
    ``assigned`` ranks strictly above ``claimed`` exactly when the claim
    was unsound (:attr:`demoted`) — the planner then takes the assigned
    (safe) route, and ``repro-tools check --predicates --strict`` fails.
    """

    predicate: str
    claimed: PredicateClass
    assigned: PredicateClass
    witnesses: Tuple[LocalityWitness, ...] = ()
    demotions: Tuple[Demotion, ...] = ()
    #: Human-auditable closure arguments (meet-closure for conjunctive /
    #: linear, upward-closure for stable).
    arguments: Tuple[str, ...] = ()

    @property
    def fast_path_eligible(self) -> bool:
        """May the planner route this predicate around full enumeration?"""
        return self.assigned is not PredicateClass.ARBITRARY

    @property
    def demoted(self) -> bool:
        """True when the claim could not be proven (assigned ⊃ claimed)."""
        return self.assigned.rank > self.claimed.rank

    def format(self) -> str:
        lines = [
            f"predicate {self.predicate!r}: claimed={self.claimed.value} "
            f"assigned={self.assigned.value}"
            + (" (DEMOTED)" if self.demoted else "")
        ]
        for w in self.witnesses:
            reads = ",".join(w.reads) or "∅"
            caps = f" captures={{{','.join(w.captures)}}}" if w.captures else ""
            lines.append(
                f"  conjunct[tid={w.tid}] {w.func}: thread-local "
                f"(reads {{{reads}}}{caps})"
            )
        for d in self.demotions:
            lines.append(f"  demotion — {d.describe()}")
        for a in self.arguments:
            lines.append(f"  argument: {a}")
        return "\n".join(lines)

    def diagnostics(self, program: str = "") -> List["Diagnostic"]:
        """The certificate's demotions as ``PC001`` diagnostics."""
        from repro.staticcheck.diag import Diagnostic

        out: List[Diagnostic] = []
        for d in self.demotions:
            out.append(
                Diagnostic(
                    rule="PC001",
                    message=(
                        f"predicate {self.predicate!r} claimed "
                        f"{self.claimed.value} but assigned "
                        f"{self.assigned.value} — {d.describe()}"
                    ),
                    program=program,
                    var=self.predicate,
                    evidence={
                        "claimed": self.claimed.value,
                        "assigned": self.assigned.value,
                        "subject": d.subject,
                        "reason": d.reason,
                        "expr": d.expr,
                    },
                    fix=(
                        f"declare the predicate as {self.assigned.value}, or "
                        "restructure it to satisfy the claimed class"
                    ),
                )
            )
        return out


# --------------------------------------------------------------------- #
# AST locality analysis of one conjunct


#: Event attributes a thread-local predicate may read.  ``vc`` and
#: ``weak_vc`` are excluded on purpose: a vector clock encodes *other*
#: threads' progress, so reading it breaks thread locality (the classic
#: way to smuggle a non-conjunctive condition into a "local" predicate).
_ALLOWED_EVENT_ATTRS = frozenset(
    {"tid", "idx", "kind", "obj", "accesses", "eid"}
)

#: Pure builtins a local predicate may call.
_ALLOWED_BUILTINS = frozenset(
    {
        "abs", "all", "any", "bool", "enumerate", "float", "frozenset",
        "int", "isinstance", "len", "max", "min", "range", "repr",
        "sorted", "str", "sum", "tuple", "zip", "set",
    }
)


def _is_immutable(value: object) -> bool:
    if isinstance(value, (bool, int, float, complex, str, bytes, range)):
        return True
    if value is None:
        return True
    if isinstance(value, (tuple, frozenset)):
        return all(_is_immutable(v) for v in value)
    return False


def _candidate_nodes(tree: ast.AST, fn: Callable) -> List[ast.AST]:
    name = getattr(fn, "__name__", "<lambda>")
    out: List[ast.AST] = []
    for node in ast.walk(tree):
        if name == "<lambda>":
            if isinstance(node, ast.Lambda):
                out.append(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                out.append(node)
    return out


def _bound_names(node: ast.AST) -> Set[str]:
    """Names bound *inside* the predicate body: parameters, comprehension
    targets, walrus targets, assignments, for-loop targets, nested
    function parameters.  Reads of these never leave the event's data."""
    bound: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            a = sub.args
            for arg in (
                list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs)
            ):
                bound.add(arg.arg)
            if a.vararg:
                bound.add(a.vararg.arg)
            if a.kwarg:
                bound.add(a.kwarg.arg)
        elif isinstance(sub, ast.Name) and isinstance(
            sub.ctx, (ast.Store, ast.Del)
        ):
            bound.add(sub.id)
    return bound


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure is cosmetic
        return "<unprintable>"


def analyze_local_predicate(
    fn: Callable, tid: int
) -> Union[LocalityWitness, Demotion]:
    """Prove one conjunct thread-local, or explain why it is not.

    A conjunct is thread-local when its value depends only on the frontier
    event of its own thread: it may read the event's non-clock attributes
    (and anything reachable from them), call whitelisted pure builtins,
    and capture immutable constants.  Anything else — vector clocks,
    mutable captures, helper calls, unresolvable names — yields a
    :class:`Demotion` quoting the offending sub-expression.
    """
    subject = f"conjunct[tid={tid}]"
    if not callable(fn):
        return Demotion(subject, f"not callable: {type(fn).__name__}")
    try:
        src = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        return Demotion(subject, "source unavailable (builtin or C callable)")
    try:
        tree: ast.AST = ast.parse(src)
    except SyntaxError:
        # A lambda extracted from mid-expression (trailing comma, operator
        # continuation) often fails to parse bare; wrapping in parentheses
        # recovers the common cases.
        try:
            tree = ast.parse(f"({src.strip()})")
        except SyntaxError:
            return Demotion(subject, "source does not parse in isolation")

    candidates = _candidate_nodes(tree, fn)
    if len(candidates) != 1:
        return Demotion(
            subject,
            f"ambiguous source: {len(candidates)} candidate function(s) "
            f"in the defining statement",
        )
    node = candidates[0]
    args = node.args  # type: ignore[attr-defined]
    positional = list(args.posonlyargs) + list(args.args)
    if not positional:
        return Demotion(subject, "predicate takes no event parameter")
    param = positional[0].arg

    try:
        closure = inspect.getclosurevars(fn)
    except TypeError:
        return Demotion(subject, "closure variables unavailable")

    bound = _bound_names(node)
    reads: Set[str] = set()
    captures: Set[str] = set()

    body = node.body  # type: ignore[attr-defined]
    body_nodes = body if isinstance(body, list) else [body]
    for stmt in body_nodes:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Global, ast.Nonlocal)):
                return Demotion(subject, "global/nonlocal declaration", _unparse(sub))
            if isinstance(sub, (ast.Import, ast.ImportFrom)):
                return Demotion(subject, "import inside predicate", _unparse(sub))
            if isinstance(sub, ast.Attribute):
                if isinstance(sub.ctx, (ast.Store, ast.Del)):
                    return Demotion(
                        subject, "attribute mutation (side effect)", _unparse(sub)
                    )
                if isinstance(sub.value, ast.Name) and sub.value.id == param:
                    if sub.attr not in _ALLOWED_EVENT_ATTRS:
                        reason = (
                            "reads cross-thread vector clock"
                            if sub.attr in ("vc", "weak_vc")
                            else f"reads unknown event attribute {sub.attr!r}"
                        )
                        return Demotion(subject, reason, _unparse(sub))
                    reads.add(sub.attr)
            elif isinstance(sub, ast.Subscript):
                if isinstance(sub.value, ast.Name) and sub.value.id == param:
                    return Demotion(
                        subject, "subscripts the event object", _unparse(sub)
                    )
            elif isinstance(sub, ast.Call):
                func = sub.func
                if isinstance(func, ast.Name):
                    fname = func.id
                    if fname in bound or fname == param:
                        return Demotion(
                            subject,
                            "calls a locally bound value (purity unprovable)",
                            _unparse(sub),
                        )
                    if not (
                        fname in _ALLOWED_BUILTINS
                        and fname in closure.builtins
                    ):
                        return Demotion(
                            subject,
                            f"calls non-builtin helper {fname!r}",
                            _unparse(sub),
                        )
                # Method calls (Attribute func) are covered by the
                # attribute rules: a method on thread-local or immutable
                # data stays thread-local.
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                name = sub.id
                if name == param or name in bound:
                    continue
                if name in closure.builtins:
                    if name not in _ALLOWED_BUILTINS:
                        return Demotion(
                            subject,
                            f"uses non-whitelisted builtin {name!r}",
                            _unparse(sub),
                        )
                    continue
                if name in closure.nonlocals:
                    value = closure.nonlocals[name]
                elif name in closure.globals:
                    value = closure.globals[name]
                else:
                    return Demotion(
                        subject, f"unresolvable name {name!r}", _unparse(sub)
                    )
                if not _is_immutable(value):
                    return Demotion(
                        subject,
                        f"captures mutable value {name!r} "
                        f"({type(value).__name__})",
                        _unparse(sub),
                    )
                captures.add(name)

    return LocalityWitness(
        tid=tid,
        func=getattr(fn, "__qualname__", getattr(fn, "__name__", "<callable>")),
        reads=tuple(sorted(reads)),
        captures=tuple(sorted(captures)),
    )


# --------------------------------------------------------------------- #
# whole-predicate classification


_MEET_CLOSURE_ARGUMENT = (
    "each conjunct constrains only its own thread's frontier position, so "
    "the satisfying set is closed under componentwise min and max "
    "(Garg–Waldecker): the slice [least, greatest] is exact"
)


def classify_predicate(
    pred: object,
    name: Optional[str] = None,
    claimed: Optional[PredicateClass] = None,
) -> ClassificationCertificate:
    """Classify a predicate object (or a raw per-thread locals list).

    ``claimed`` overrides the structural claim — registries use it to
    record what the *author* declared, so a declaration the classifier
    cannot prove shows up as a demotion rather than silently passing.
    """
    from repro.predicates.conjunctive import ConjunctivePredicate
    from repro.predicates.linear import LinearPredicate
    from repro.predicates.stable import StablePredicate

    pname = name or getattr(pred, "name", None) or type(pred).__name__

    locals_: Optional[List[Optional[Callable]]] = None
    if isinstance(pred, ConjunctivePredicate):
        locals_ = list(pred.locals_)
    elif isinstance(pred, (list, tuple)):
        locals_ = list(pred)

    if locals_ is not None:
        constrained = [(t, f) for t, f in enumerate(locals_) if f is not None]
        structural = (
            PredicateClass.LOCAL
            if len(constrained) <= 1
            else PredicateClass.CONJUNCTIVE
        )
        claim = claimed if claimed is not None else structural
        witnesses: List[LocalityWitness] = []
        demotions: List[Demotion] = []
        for t, f in constrained:
            outcome = analyze_local_predicate(f, t)
            if isinstance(outcome, Demotion):
                demotions.append(outcome)
            else:
                witnesses.append(outcome)
        if demotions:
            assigned = PredicateClass.ARBITRARY
            arguments: Tuple[str, ...] = ()
        else:
            assigned = structural
            arguments = (_MEET_CLOSURE_ARGUMENT,)
        return ClassificationCertificate(
            predicate=pname,
            claimed=claim,
            assigned=assigned,
            witnesses=tuple(witnesses),
            demotions=tuple(demotions),
            arguments=arguments,
        )

    if isinstance(pred, LinearPredicate):
        claim = claimed if claimed is not None else PredicateClass.LINEAR
        argument = pred.linearity_argument()
        if not argument.strip():
            return ClassificationCertificate(
                predicate=pname,
                claimed=claim,
                assigned=PredicateClass.ARBITRARY,
                demotions=(
                    Demotion(
                        "predicate",
                        "linear claim carries no meet-closure argument",
                    ),
                ),
            )
        return ClassificationCertificate(
            predicate=pname,
            claimed=claim,
            assigned=PredicateClass.LINEAR,
            arguments=(argument,),
        )

    if isinstance(pred, StablePredicate):
        claim = claimed if claimed is not None else PredicateClass.STABLE
        argument = pred.stability_argument()
        if not argument.strip():
            return ClassificationCertificate(
                predicate=pname,
                claimed=claim,
                assigned=PredicateClass.ARBITRARY,
                demotions=(
                    Demotion(
                        "predicate",
                        "stable claim carries no upward-closure argument",
                    ),
                ),
            )
        return ClassificationCertificate(
            predicate=pname,
            claimed=claim,
            assigned=PredicateClass.STABLE,
            arguments=(argument,),
        )

    claim = claimed if claimed is not None else PredicateClass.ARBITRARY
    cert = ClassificationCertificate(
        predicate=pname,
        claimed=claim,
        assigned=PredicateClass.ARBITRARY,
        arguments=(
            f"no exploitable structure declared by {type(pred).__name__}: "
            f"full enumeration",
        ),
    )
    if claim is not PredicateClass.ARBITRARY:
        # An author-declared fast class on a structureless object is an
        # unsound declaration, not a silent fallback.
        cert = ClassificationCertificate(
            predicate=pname,
            claimed=claim,
            assigned=PredicateClass.ARBITRARY,
            demotions=(
                Demotion(
                    "predicate",
                    f"declared {claim.value!r} but exposes no "
                    f"conjunctive/linear/stable structure",
                ),
            ),
        )
    return cert


def verify_certificate(
    cert: ClassificationCertificate, pred: object
) -> bool:
    """Machine-check a certificate: re-derive the classification from the
    predicate object and compare the load-bearing fields.  Used by the
    planner before trusting a cached or externally supplied certificate."""
    fresh = classify_predicate(pred, name=cert.predicate, claimed=cert.claimed)
    return (
        fresh.assigned is cert.assigned
        and fresh.claimed is cert.claimed
        and {(w.tid, w.reads) for w in fresh.witnesses}
        == {(w.tid, w.reads) for w in cert.witnesses}
        and {(d.subject, d.reason) for d in fresh.demotions}
        == {(d.subject, d.reason) for d in cert.demotions}
    )
