"""Static race/deadlock analysis and runtime sanitizing for simulated programs.

ParaMount detects races *dynamically* by enumerating the consistent global
states of one observed execution; this package adds the complementary
*static* pass over the program text plus an opt-in runtime *sanitizer*:

* :mod:`~repro.staticcheck.diag` — the unified diagnostics layer: stable
  rule IDs (``RR001`` data race, ``LO001`` lock cycle, …) with severity,
  source spans, ``# repro: noqa[RULE]`` suppressions, SARIF 2.1.0 and
  JSONL exporters, and per-workload precision baselines;
* :mod:`~repro.staticcheck.extract` — an AST extractor that walks every
  thread-body generator **without executing it** and produces a
  conservative op-flow summary (variables read/written, the lockset held
  at each access, fork/join edges; branches and loops join conservatively);
* :mod:`~repro.staticcheck.mhp` — the static may-happen-in-parallel
  analysis: fork/join segment graph + reachability closure, answering
  whether two access sites are provably happens-before ordered in every
  execution;
* :mod:`~repro.staticcheck.races` — an Eraser-style lockset analyzer
  flagging variables reachable from ≥ 2 threads under disjoint locksets
  (initialization writes are reported separately, honoring the ParaMount
  detector's §5.2 init filter); concurrency decided by the MHP analysis;
* :mod:`~repro.staticcheck.prune` — the pruning bridge: a per-variable
  skip oracle (all site pairs statically ordered ⇒ drop the variable)
  the dynamic detector consumes duck-typed;
* :mod:`~repro.staticcheck.lockorder` — a lock-order graph with cycle
  detection emitting static deadlock warnings in the scheduler's
  wait-for-graph format;
* :mod:`~repro.staticcheck.sanitize` — runtime invariant checkers wired
  (opt-in) into the scheduler, the HB front-end and the ParaMount driver;
* :mod:`~repro.staticcheck.predclass` — the predicate classifier: proves
  a predicate local / conjunctive / linear / stable (or demotes it to
  arbitrary with a counterexample sub-expression) and emits the
  classification certificate the detection planner routes on;
* :mod:`~repro.staticcheck.crossval` — the harness comparing static
  warnings against FastTrack/ParaMount dynamic findings over the workload
  registry (the static warnings must be a superset of the dynamically
  confirmed races), plus the planner cross-validation proving fast-path
  verdicts identical to full enumeration.
"""

from repro.staticcheck.crossval import (
    CrossValidation,
    PlannerCrossValidation,
    PredicateCheck,
    cross_validate,
    cross_validate_planner,
    cross_validate_planner_registry,
    cross_validate_registry,
)
from repro.staticcheck.extract import (
    AccessSite,
    LockOrderEdge,
    ProgramSummary,
    SummaryExtractor,
    ThreadInstance,
    extract_summary,
)
from repro.staticcheck.diag import (
    Diagnostic,
    Rule,
    RULES,
    SourceSpan,
    rule_for_category,
    validate_sarif,
)
from repro.staticcheck.lockorder import analyze_lock_order
from repro.staticcheck.mhp import (
    MHPAnalysis,
    Segment,
    build_mhp,
)
from repro.staticcheck.predclass import (
    ClassificationCertificate,
    Demotion,
    LocalityWitness,
    PredicateClass,
    classify_predicate,
    verify_certificate,
)
from repro.staticcheck.prune import StaticPruner, build_pruner
from repro.staticcheck.races import analyze_races
from repro.staticcheck.report import StaticReport, StaticWarning, analyze_program
from repro.staticcheck.sanitize import (
    ClockSanitizer,
    EnumerationSanitizer,
    PipelineSanitizer,
    SanitizerViolation,
    TraceSanitizer,
)

__all__ = [
    "AccessSite",
    "ClassificationCertificate",
    "ClockSanitizer",
    "CrossValidation",
    "Demotion",
    "Diagnostic",
    "EnumerationSanitizer",
    "LocalityWitness",
    "LockOrderEdge",
    "MHPAnalysis",
    "RULES",
    "Rule",
    "PipelineSanitizer",
    "PlannerCrossValidation",
    "PredicateCheck",
    "PredicateClass",
    "ProgramSummary",
    "SanitizerViolation",
    "Segment",
    "SourceSpan",
    "StaticPruner",
    "StaticReport",
    "StaticWarning",
    "SummaryExtractor",
    "ThreadInstance",
    "TraceSanitizer",
    "analyze_lock_order",
    "analyze_program",
    "analyze_races",
    "build_mhp",
    "build_pruner",
    "classify_predicate",
    "cross_validate",
    "cross_validate_planner",
    "cross_validate_planner_registry",
    "cross_validate_registry",
    "extract_summary",
    "rule_for_category",
    "validate_sarif",
    "verify_certificate",
]
