"""Unified static diagnostics: stable rule IDs, spans, exporters, baselines.

Every finding of the static layer — lockset races, lock-order cycles,
MHP overlaps, predicate demotions, sanitizer violations, extractor
approximations — is representable as one :class:`Diagnostic` carrying:

* a **stable rule ID** from the :data:`RULES` registry (``RR001`` data
  race, ``LO001`` lock cycle, ``MH001`` MHP overlap, …) with a severity
  (``error`` / ``warning`` / ``note``);
* **source spans** (file, line, function) pointing at the witnesses;
* a machine-readable **evidence** payload (the facts behind the finding)
  and an optional **fix** hint;
* a **fingerprint** stable across line drift, used by the checked-in
  per-workload baseline (``tests/data/staticcheck_baseline.json``) so any
  precision regression — a new false positive or a lost true positive —
  fails CI rather than slipping by.

Exporters: SARIF 2.1.0 (:func:`to_sarif` / :func:`write_sarif`, with an
in-repo structural validator :func:`validate_sarif` so CI needs no
external schema package) and JSON-lines (:func:`write_jsonl` /
:func:`read_jsonl`).  Both round-trip the rule ID and payload.

Suppressions: a source line carrying ``# repro: noqa[RULE]`` (or a bare
``# repro: noqa``) suppresses matching diagnostics whose span lands on
it.  Suppressed findings are still *carried* (marked ``suppressed``, with
a SARIF ``suppressions`` entry) but excluded from strict gating and
baselines — and deliberately still consulted by cross-validation
coverage, because silencing a report must never weaken the static ⊇
dynamic soundness argument.

This module is self-contained (no imports from the rest of the package)
so every staticcheck layer can depend on it without cycles.
"""

from __future__ import annotations

import json
import linecache
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Diagnostic",
    "Rule",
    "RULES",
    "SourceSpan",
    "baseline_from_diagnostics",
    "diff_baseline",
    "load_baseline",
    "read_jsonl",
    "rule_for_category",
    "suppressed_rules_at",
    "to_sarif",
    "validate_sarif",
    "write_baseline",
    "write_jsonl",
    "write_sarif",
]


# --------------------------------------------------------------------- #
# the rule registry

SEVERITIES = ("error", "warning", "note")


@dataclass(frozen=True)
class Rule:
    """One stable diagnostic rule."""

    id: str
    name: str  # kebab-case slug, e.g. "data-race"
    severity: str  # "error" | "warning" | "note"
    short_description: str
    help_text: str = ""


RULES: Dict[str, Rule] = {
    r.id: r
    for r in (
        Rule(
            id="RR001",
            name="data-race",
            severity="warning",
            short_description="Eraser-style lockset data race",
            help_text=(
                "Two accesses (at least one a write) to may-aliasing "
                "variables are not happens-before ordered and hold "
                "disjoint locksets."
            ),
        ),
        Rule(
            id="RR002",
            name="init-race",
            severity="warning",
            short_description="lockset race involving an initialization write",
            help_text=(
                "Like RR001, but a witness is an is_init write: filtered "
                "by the ParaMount detector (§5.2), visible to FastTrack."
            ),
        ),
        Rule(
            id="LO001",
            name="lock-cycle",
            severity="warning",
            short_description="cycle in the static lock-order graph",
            help_text=(
                "Nested acquisitions form a circular lock order between "
                "threads — a potential deadlock interleaving exists."
            ),
        ),
        Rule(
            id="LO002",
            name="lock-reentry",
            severity="warning",
            short_description="re-acquisition of a held non-reentrant lock",
            help_text="A thread acquires a lock it already holds (self-deadlock).",
        ),
        Rule(
            id="MH001",
            name="mhp-overlap",
            severity="note",
            short_description="lock-serialized but unordered access pair",
            help_text=(
                "The accesses share a lock (no race), but are not "
                "happens-before ordered: their order is schedule-dependent."
            ),
        ),
        Rule(
            id="EX001",
            name="approximation",
            severity="note",
            short_description="extractor lost precision",
            help_text=(
                "The summary is still sound but over-approximates; static "
                "pruning is disabled while any EX001/EX002 exists."
            ),
        ),
        Rule(
            id="EX002",
            name="unanalyzed-thread",
            severity="warning",
            short_description="fork body not statically resolved",
            help_text=(
                "Races by the unanalyzed thread are NOT covered by this "
                "report."
            ),
        ),
        Rule(
            id="PC001",
            name="predicate-demotion",
            severity="warning",
            short_description="predicate class claim could not be proven",
            help_text=(
                "The classifier demoted an author-declared predicate class; "
                "the planner falls back to the sound full-enumeration route."
            ),
        ),
        Rule(
            id="SN001",
            name="sanitizer-violation",
            severity="error",
            short_description="runtime sanitizer invariant violated",
        ),
    )
}

#: StaticWarning category -> rule ID (report-layer bridge).
CATEGORY_RULES: Dict[str, str] = {
    "race": "RR001",
    "init-race": "RR002",
    "deadlock": "LO001",
    "self-deadlock": "LO002",
    "approximation": "EX001",
    "unanalyzed-thread": "EX002",
}


def rule_for_category(category: str) -> str:
    """The stable rule ID for a legacy warning category."""
    return CATEGORY_RULES.get(category, "EX001")


# --------------------------------------------------------------------- #
# diagnostics

@dataclass(frozen=True)
class SourceSpan:
    """A witness location: file, 1-based line range, enclosing function."""

    file: str = ""
    line: int = 0
    end_line: int = 0
    func: str = ""

    def to_json(self) -> Dict[str, Any]:
        return {
            "file": self.file,
            "line": self.line,
            "end_line": self.end_line or self.line,
            "func": self.func,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "SourceSpan":
        return cls(
            file=str(data.get("file", "")),
            line=int(data.get("line", 0)),
            end_line=int(data.get("end_line", 0)),
            func=str(data.get("func", "")),
        )

    def describe(self) -> str:
        loc = f"{self.file}:{self.line}" if self.file else f"line {self.line}"
        return f"{loc} ({self.func})" if self.func else loc


_LINE_REF = re.compile(r":\d+")


@dataclass
class Diagnostic:
    """One static finding with a stable identity."""

    rule: str
    message: str
    program: str = ""
    var: Optional[str] = None
    threads: Tuple[str, ...] = ()
    locks: Tuple[str, ...] = ()
    spans: Tuple[SourceSpan, ...] = ()
    #: Machine-readable facts behind the finding (JSON-serializable).
    evidence: Dict[str, Any] = field(default_factory=dict)
    #: Suggested remediation, when one is known.
    fix: str = ""
    #: True when a ``# repro: noqa`` directive silenced this finding.
    suppressed: bool = False

    @property
    def severity(self) -> str:
        rule = RULES.get(self.rule)
        return rule.severity if rule else "warning"

    @property
    def rule_name(self) -> str:
        rule = RULES.get(self.rule)
        return rule.name if rule else self.rule

    def fingerprint(self) -> str:
        """Identity stable across line drift and message rewording of the
        location parts: program, rule, subject variable (or the
        line-number-stripped message when the rule has no variable),
        threads and locks."""
        subject = self.var if self.var is not None else _LINE_REF.sub("", self.message)
        return "/".join(
            (
                self.program,
                self.rule,
                str(subject),
                ",".join(sorted(self.threads)),
                ",".join(sorted(self.locks)),
            )
        )

    def format(self) -> str:
        head = f"[{self.rule} {self.rule_name}]"
        if self.var is not None:
            head += f" {self.var}:"
        lines = [f"{head} {self.message}"]
        for span in self.spans:
            lines.append(f"    at {span.describe()}")
        if self.fix:
            lines.append(f"    fix: {self.fix}")
        if self.suppressed:
            lines.append("    (suppressed by # repro: noqa)")
        return "\n".join(lines)

    # ---- serialization --------------------------------------------- #

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "rule_name": self.rule_name,
            "severity": self.severity,
            "message": self.message,
            "program": self.program,
            "var": self.var,
            "threads": list(self.threads),
            "locks": list(self.locks),
            "spans": [s.to_json() for s in self.spans],
            "evidence": self.evidence,
            "fix": self.fix,
            "suppressed": self.suppressed,
            "fingerprint": self.fingerprint(),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Diagnostic":
        return cls(
            rule=str(data["rule"]),
            message=str(data.get("message", "")),
            program=str(data.get("program", "")),
            var=data.get("var"),
            threads=tuple(data.get("threads", ())),
            locks=tuple(data.get("locks", ())),
            spans=tuple(SourceSpan.from_json(s) for s in data.get("spans", ())),
            evidence=dict(data.get("evidence", {})),
            fix=str(data.get("fix", "")),
            suppressed=bool(data.get("suppressed", False)),
        )


# --------------------------------------------------------------------- #
# suppressions: ``# repro: noqa[RULE,...]`` / ``# repro: noqa``

_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")


def suppressed_rules_at(file: str, line: int) -> Optional[frozenset]:
    """The rules a source line suppresses.

    ``None`` — no directive; ``frozenset()`` — bare ``noqa`` (all rules);
    otherwise the explicit rule IDs listed in brackets.
    """
    if not file or line <= 0:
        return None
    text = linecache.getline(file, line)
    match = _NOQA.search(text)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(r.strip().upper() for r in rules.split(",") if r.strip())


def is_suppressed(rule: str, spans: Sequence[SourceSpan]) -> bool:
    """Whether any witness span lands on a matching noqa directive."""
    for span in spans:
        suppressed = suppressed_rules_at(span.file, span.line)
        if suppressed is None:
            continue
        if not suppressed or rule in suppressed:
            return True
    return False


# --------------------------------------------------------------------- #
# JSONL exporter

def write_jsonl(path: str, diagnostics: Iterable[Diagnostic]) -> int:
    """Write one JSON object per line; returns the count written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for diag in diagnostics:
            fh.write(json.dumps(diag.to_json(), sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Diagnostic]:
    """Read diagnostics back from a JSONL file."""
    out: List[Diagnostic] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(Diagnostic.from_json(json.loads(line)))
    return out


# --------------------------------------------------------------------- #
# SARIF 2.1.0 exporter

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_SARIF_LEVELS = {"error": "error", "warning": "warning", "note": "note"}
TOOL_NAME = "repro-staticcheck"


def to_sarif(diagnostics: Sequence[Diagnostic], tool_version: str = "1.0.0") -> Dict[str, Any]:
    """Render diagnostics as one SARIF 2.1.0 run."""
    used = sorted({d.rule for d in diagnostics} | set())
    rule_index = {rid: i for i, rid in enumerate(used)}
    descriptors = []
    for rid in used:
        rule = RULES.get(rid, Rule(id=rid, name=rid, severity="warning", short_description=rid))
        descriptor: Dict[str, Any] = {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.short_description},
            "defaultConfiguration": {"level": _SARIF_LEVELS[rule.severity]},
        }
        if rule.help_text:
            descriptor["fullDescription"] = {"text": rule.help_text}
        descriptors.append(descriptor)

    results = []
    for diag in diagnostics:
        locations = []
        for span in diag.spans:
            physical: Dict[str, Any] = {}
            if span.file:
                physical["artifactLocation"] = {"uri": span.file}
            if span.line > 0:
                physical["region"] = {
                    "startLine": span.line,
                    "endLine": span.end_line or span.line,
                }
            location: Dict[str, Any] = {}
            if physical:
                location["physicalLocation"] = physical
            if span.func:
                location["logicalLocations"] = [{"fullyQualifiedName": span.func}]
            if location:
                locations.append(location)
        result: Dict[str, Any] = {
            "ruleId": diag.rule,
            "ruleIndex": rule_index[diag.rule],
            "level": _SARIF_LEVELS[diag.severity],
            "message": {"text": diag.message},
            "locations": locations,
            "partialFingerprints": {"reproFingerprint/v1": diag.fingerprint()},
            "properties": {
                "program": diag.program,
                "var": diag.var,
                "threads": list(diag.threads),
                "locks": list(diag.locks),
                "evidence": diag.evidence,
                "fix": diag.fix,
            },
        }
        if diag.suppressed:
            result["suppressions"] = [{"kind": "inSource"}]
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": tool_version,
                        "informationUri": "https://example.invalid/repro-staticcheck",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(path: str, diagnostics: Sequence[Diagnostic], tool_version: str = "1.0.0") -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_sarif(diagnostics, tool_version=tool_version), fh, indent=2, sort_keys=True)
        fh.write("\n")


def from_sarif(doc: Mapping[str, Any]) -> List[Diagnostic]:
    """Reconstruct diagnostics from a SARIF document (round-trip test
    surface; evidence/threads/locks come from our ``properties`` bag)."""
    out: List[Diagnostic] = []
    for run in doc.get("runs", ()):
        for result in run.get("results", ()):
            props = result.get("properties", {})
            spans = []
            for location in result.get("locations", ()):
                physical = location.get("physicalLocation", {})
                region = physical.get("region", {})
                logical = location.get("logicalLocations", [{}])
                spans.append(
                    SourceSpan(
                        file=physical.get("artifactLocation", {}).get("uri", ""),
                        line=int(region.get("startLine", 0)),
                        end_line=int(region.get("endLine", 0)),
                        func=(logical[0] if logical else {}).get("fullyQualifiedName", ""),
                    )
                )
            out.append(
                Diagnostic(
                    rule=str(result.get("ruleId", "")),
                    message=result.get("message", {}).get("text", ""),
                    program=str(props.get("program", "")),
                    var=props.get("var"),
                    threads=tuple(props.get("threads", ())),
                    locks=tuple(props.get("locks", ())),
                    spans=tuple(spans),
                    evidence=dict(props.get("evidence", {})),
                    fix=str(props.get("fix", "")),
                    suppressed=bool(result.get("suppressions")),
                )
            )
    return out


# --------------------------------------------------------------------- #
# structural SARIF 2.1.0 validation (no external schema dependency)

def validate_sarif(doc: Any) -> List[str]:
    """Structural validation against the SARIF 2.1.0 shape.

    Returns a list of error strings (empty = valid).  Covers the subset
    of the schema this exporter uses: top-level version/runs, the tool
    driver with uniquely-identified rules, and per-result ruleId/level/
    message/locations/fingerprints/suppressions consistency.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("version") != SARIF_VERSION:
        errors.append(f"version must be {SARIF_VERSION!r}, got {doc.get('version')!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return errors + ["runs must be a non-empty array"]
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        if not isinstance(run, dict):
            errors.append(f"{where} is not an object")
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(run.get("tool"), dict) else None
        if not isinstance(driver, dict) or not isinstance(driver.get("name"), str):
            errors.append(f"{where}.tool.driver.name missing")
            declared: List[str] = []
        else:
            rules = driver.get("rules", [])
            declared = []
            if not isinstance(rules, list):
                errors.append(f"{where}.tool.driver.rules must be an array")
                rules = []
            for ki, rule in enumerate(rules):
                if not isinstance(rule, dict) or not isinstance(rule.get("id"), str):
                    errors.append(f"{where}.tool.driver.rules[{ki}].id missing")
                    continue
                if rule["id"] in declared:
                    errors.append(f"{where}: duplicate rule id {rule['id']!r}")
                declared.append(rule["id"])
                short = rule.get("shortDescription")
                if short is not None and not isinstance(short.get("text"), str):
                    errors.append(f"{where}.rules[{ki}].shortDescription.text missing")
        results = run.get("results", [])
        if not isinstance(results, list):
            errors.append(f"{where}.results must be an array")
            continue
        for ji, result in enumerate(results):
            rwhere = f"{where}.results[{ji}]"
            if not isinstance(result, dict):
                errors.append(f"{rwhere} is not an object")
                continue
            rule_id = result.get("ruleId")
            if not isinstance(rule_id, str):
                errors.append(f"{rwhere}.ruleId missing")
            elif declared and rule_id not in declared:
                errors.append(f"{rwhere}: ruleId {rule_id!r} not declared by the driver")
            if result.get("level") not in ("none", "note", "warning", "error"):
                errors.append(f"{rwhere}.level invalid: {result.get('level')!r}")
            message = result.get("message")
            if not isinstance(message, dict) or not isinstance(message.get("text"), str):
                errors.append(f"{rwhere}.message.text missing")
            index = result.get("ruleIndex")
            if index is not None:
                if (
                    not isinstance(index, int)
                    or not declared
                    or not (0 <= index < len(declared))
                    or declared[index] != rule_id
                ):
                    errors.append(f"{rwhere}.ruleIndex inconsistent with driver rules")
            for li, location in enumerate(result.get("locations", ())):
                physical = location.get("physicalLocation") if isinstance(location, dict) else None
                if physical is None:
                    continue
                uri = physical.get("artifactLocation", {}).get("uri")
                if uri is not None and not isinstance(uri, str):
                    errors.append(f"{rwhere}.locations[{li}]: artifactLocation.uri not a string")
                region = physical.get("region")
                if region is not None:
                    start = region.get("startLine")
                    if not isinstance(start, int) or start < 1:
                        errors.append(f"{rwhere}.locations[{li}]: region.startLine must be ≥ 1")
            fingerprints = result.get("partialFingerprints")
            if fingerprints is not None and (
                not isinstance(fingerprints, dict)
                or not all(isinstance(v, str) for v in fingerprints.values())
            ):
                errors.append(f"{rwhere}.partialFingerprints must map to strings")
            for si, suppression in enumerate(result.get("suppressions", ())):
                if not isinstance(suppression, dict) or suppression.get("kind") not in (
                    "inSource",
                    "external",
                ):
                    errors.append(f"{rwhere}.suppressions[{si}].kind invalid")
    return errors


# --------------------------------------------------------------------- #
# baselines

BASELINE_VERSION = 1


def baseline_from_diagnostics(
    per_program: Mapping[str, Sequence[Diagnostic]]
) -> Dict[str, Any]:
    """Build the baseline document: per program, the sorted multiset of
    non-suppressed diagnostic fingerprints."""
    return {
        "version": BASELINE_VERSION,
        "workloads": {
            name: sorted(d.fingerprint() for d in diags if not d.suppressed)
            for name, diags in sorted(per_program.items())
        },
    }


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_baseline(path: str, baseline: Mapping[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")


def diff_baseline(
    baseline: Mapping[str, Any], current: Mapping[str, Any]
) -> List[str]:
    """Human-readable deltas between two baseline documents (empty = match).

    Fingerprints are compared as multisets per workload, so both a *new*
    diagnostic (precision loss) and a *vanished* one (possible lost true
    positive) are deltas — either way, CI demands an explicit baseline
    bump."""
    deltas: List[str] = []
    old = baseline.get("workloads", {})
    new = current.get("workloads", {})
    for name in sorted(set(old) | set(new)):
        if name not in new:
            deltas.append(f"{name}: workload disappeared from the analysis run")
            continue
        if name not in old:
            deltas.append(f"{name}: workload not present in the baseline")
            continue
        old_counts: Dict[str, int] = {}
        for fp in old[name]:
            old_counts[fp] = old_counts.get(fp, 0) + 1
        new_counts: Dict[str, int] = {}
        for fp in new[name]:
            new_counts[fp] = new_counts.get(fp, 0) + 1
        for fp in sorted(set(old_counts) | set(new_counts)):
            before = old_counts.get(fp, 0)
            after = new_counts.get(fp, 0)
            if before != after:
                deltas.append(f"{name}: {fp}: baseline×{before} -> current×{after}")
    return deltas
