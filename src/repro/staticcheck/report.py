"""Structured static-analysis warnings and the top-level driver.

A :class:`StaticWarning` is one finding; a :class:`StaticReport` bundles a
program's findings together with the extraction summary that produced
them.  :func:`analyze_program` is the single entry point used by the CLI
(``repro check``) and by the cross-validation harness.

Warning categories:

``race``
    Eraser-style lockset race on non-initialization accesses — these are
    the races ParaMount's dynamic detector may confirm (§5.2).
``init-race``
    A lockset race whose witness involves an initialization write.  The
    ParaMount detector filters such accesses, but FastTrack does not, so
    these are reported in their own category to keep the static report a
    superset of *both* dynamic detectors.
``deadlock``
    A cycle in the static lock-order graph, carried as a hypothetical
    :class:`~repro.runtime.waitgraph.WaitForGraph` — the same structure
    the scheduler attaches to a dynamic
    :class:`~repro.errors.DeadlockError`.
``self-deadlock``
    A thread acquiring a (non-reentrant) lock it already holds.
``approximation``
    The extractor lost precision somewhere; the rest of the report is
    still sound but may over-approximate.
``unanalyzed-thread``
    A fork whose body could not be resolved statically: races by that
    thread are *not* covered by this report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.runtime.program import Program
from repro.runtime.waitgraph import WaitForGraph
from repro.staticcheck.values import VarName, names_may_alias

if TYPE_CHECKING:  # import cycle at runtime (extract imports report users)
    from repro.staticcheck.extract import ProgramSummary

__all__ = ["StaticReport", "StaticWarning", "analyze_program"]


CATEGORIES = (
    "race",
    "init-race",
    "deadlock",
    "self-deadlock",
    "approximation",
    "unanalyzed-thread",
)


@dataclass(frozen=True)
class StaticWarning:
    """One static finding."""

    category: str
    message: str
    #: Variable or lock name the warning is about (None for e.g. deadlock
    #: cycles spanning several locks).
    var: Optional[VarName] = None
    #: Labels of the thread instances involved.
    threads: Tuple[str, ...] = ()
    #: Locks involved (e.g. the cycle of a deadlock warning).
    locks: Tuple[str, ...] = ()
    #: For deadlock warnings: the hypothetical wait-for graph.
    graph: Optional[WaitForGraph] = None
    #: ``func:line`` witnesses.
    sites: Tuple[str, ...] = ()

    def format(self) -> str:
        head = f"[{self.category}]"
        if self.var is not None:
            head += f" {self.var}:"
        lines = [f"{head} {self.message}"]
        for site in self.sites:
            lines.append(f"    at {site}")
        if self.graph is not None:
            lines.append("    " + self.graph.format().replace("\n", "\n    "))
        return "\n".join(lines)


@dataclass
class StaticReport:
    """All static findings for one program."""

    program_name: str
    warnings: List[StaticWarning] = field(default_factory=list)
    #: The extraction summary (kept for tests and diagnostics).
    summary: Optional["ProgramSummary"] = None

    def by_category(self, category: str) -> List[StaticWarning]:
        return [w for w in self.warnings if w.category == category]

    def races(self) -> List[StaticWarning]:
        return self.by_category("race")

    def init_races(self) -> List[StaticWarning]:
        return self.by_category("init-race")

    def deadlocks(self) -> List[StaticWarning]:
        return self.by_category("deadlock") + self.by_category("self-deadlock")

    def race_warnings(self) -> List[StaticWarning]:
        """Warnings that can correspond to a dynamically confirmed race."""
        return self.races() + self.init_races()

    def covers_var(self, var: str) -> bool:
        """Whether some race/init-race warning may concern ``var``.

        Used by cross-validation: a dynamically confirmed race on ``var``
        is *covered* when a static warning's (possibly pattern-valued)
        variable may-aliases it.
        """
        return any(
            w.var is not None and names_may_alias(w.var, var)
            for w in self.race_warnings()
        )

    def format(self) -> str:
        if not self.warnings:
            return f"{self.program_name}: no static warnings"
        lines = [f"{self.program_name}: {len(self.warnings)} static warning(s)"]
        for warning in self.warnings:
            lines.append(warning.format())
        return "\n".join(lines)


_ORDER = {c: i for i, c in enumerate(CATEGORIES)}


def analyze_program(program: Program) -> StaticReport:
    """Run the full static pipeline on ``program``: extract → races +
    lock-order → combined report."""
    # function-body imports: races/lockorder produce StaticWarning, so a
    # module-level import here would be circular.
    from repro.staticcheck.extract import extract_summary
    from repro.staticcheck.lockorder import analyze_lock_order
    from repro.staticcheck.races import analyze_races

    summary = extract_summary(program)
    warnings: List[StaticWarning] = []
    warnings.extend(analyze_races(summary))
    warnings.extend(analyze_lock_order(summary))
    for note in summary.approximations:
        category = (
            "unanalyzed-thread"
            if "unanalyzed thread" in note or "fork body" in note
            else "approximation"
        )
        warnings.append(StaticWarning(category=category, message=note))
    warnings.sort(key=lambda w: (_ORDER.get(w.category, len(_ORDER)), str(w.var or ""), w.message))
    return StaticReport(program_name=program.name, warnings=warnings, summary=summary)
