"""Structured static-analysis warnings and the top-level driver.

A :class:`StaticWarning` is one finding; a :class:`StaticReport` bundles a
program's findings together with the extraction summary that produced
them.  :func:`analyze_program` is the single entry point used by the CLI
(``repro check``) and by the cross-validation harness.

Warning categories:

``race``
    Eraser-style lockset race on non-initialization accesses — these are
    the races ParaMount's dynamic detector may confirm (§5.2).
``init-race``
    A lockset race whose witness involves an initialization write.  The
    ParaMount detector filters such accesses, but FastTrack does not, so
    these are reported in their own category to keep the static report a
    superset of *both* dynamic detectors.
``deadlock``
    A cycle in the static lock-order graph, carried as a hypothetical
    :class:`~repro.runtime.waitgraph.WaitForGraph` — the same structure
    the scheduler attaches to a dynamic
    :class:`~repro.errors.DeadlockError`.
``self-deadlock``
    A thread acquiring a (non-reentrant) lock it already holds.
``approximation``
    The extractor lost precision somewhere; the rest of the report is
    still sound but may over-approximate.
``unanalyzed-thread``
    A fork whose body could not be resolved statically: races by that
    thread are *not* covered by this report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.runtime.program import Program
from repro.runtime.waitgraph import WaitForGraph
from repro.staticcheck import diag as _diag
from repro.staticcheck.diag import Diagnostic, SourceSpan
from repro.staticcheck.values import VarName, names_may_alias

if TYPE_CHECKING:  # import cycle at runtime (extract imports report users)
    from repro.staticcheck.extract import ProgramSummary
    from repro.staticcheck.mhp import MHPAnalysis

__all__ = ["StaticReport", "StaticWarning", "analyze_program"]


CATEGORIES = (
    "race",
    "init-race",
    "deadlock",
    "self-deadlock",
    "approximation",
    "unanalyzed-thread",
)


@dataclass(frozen=True)
class StaticWarning:
    """One static finding."""

    category: str
    message: str
    #: Variable or lock name the warning is about (None for e.g. deadlock
    #: cycles spanning several locks).
    var: Optional[VarName] = None
    #: Labels of the thread instances involved.
    threads: Tuple[str, ...] = ()
    #: Locks involved (e.g. the cycle of a deadlock warning).
    locks: Tuple[str, ...] = ()
    #: For deadlock warnings: the hypothetical wait-for graph.
    graph: Optional[WaitForGraph] = None
    #: ``func:line`` witnesses.
    sites: Tuple[str, ...] = ()
    #: Stable rule ID (:data:`repro.staticcheck.diag.RULES`); derived from
    #: the category when empty.
    rule: str = ""
    #: Structured witness spans (file/line/function) driving SARIF export
    #: and ``# repro: noqa`` suppression lookup.
    spans: Tuple[SourceSpan, ...] = ()
    #: Machine-readable facts behind the finding (excluded from eq/hash).
    evidence: Dict[str, Any] = field(default_factory=dict, compare=False)
    #: Suggested remediation, when one is known.
    fix: str = ""

    @property
    def rule_id(self) -> str:
        return self.rule or _diag.rule_for_category(self.category)

    def as_diagnostic(self, program: str = "", suppressed: bool = False) -> Diagnostic:
        return Diagnostic(
            rule=self.rule_id,
            message=self.message,
            program=program,
            var=str(self.var) if self.var is not None else None,
            threads=tuple(self.threads),
            locks=tuple(self.locks),
            spans=tuple(self.spans),
            evidence=dict(self.evidence),
            fix=self.fix,
            suppressed=suppressed,
        )

    def format(self) -> str:
        head = f"[{self.category}]"
        if self.var is not None:
            head += f" {self.var}:"
        lines = [f"{head} {self.message}"]
        for site in self.sites:
            lines.append(f"    at {site}")
        if self.graph is not None:
            lines.append("    " + self.graph.format().replace("\n", "\n    "))
        return "\n".join(lines)


@dataclass
class StaticReport:
    """All static findings for one program."""

    program_name: str
    warnings: List[StaticWarning] = field(default_factory=list)
    #: The extraction summary (kept for tests and diagnostics).
    summary: Optional["ProgramSummary"] = None
    #: Findings silenced by ``# repro: noqa`` directives.  Kept separate
    #: from ``warnings`` (strict gating and baselines ignore them) but
    #: still consulted by :meth:`covers_var` — suppression must never
    #: weaken the static ⊇ dynamic coverage argument.
    suppressed: List[StaticWarning] = field(default_factory=list)
    #: The MHP analysis built by the driver (shared with the pruner and
    #: the MH001 overlap notes).
    mhp: Optional["MHPAnalysis"] = None

    def by_category(self, category: str) -> List[StaticWarning]:
        return [w for w in self.warnings if w.category == category]

    def races(self) -> List[StaticWarning]:
        return self.by_category("race")

    def init_races(self) -> List[StaticWarning]:
        return self.by_category("init-race")

    def deadlocks(self) -> List[StaticWarning]:
        return self.by_category("deadlock") + self.by_category("self-deadlock")

    def race_warnings(self) -> List[StaticWarning]:
        """Warnings that can correspond to a dynamically confirmed race."""
        return self.races() + self.init_races()

    def covers_var(self, var: str) -> bool:
        """Whether some race/init-race warning may concern ``var``.

        Used by cross-validation: a dynamically confirmed race on ``var``
        is *covered* when a static warning's (possibly pattern-valued)
        variable may-aliases it.
        """
        candidates = self.race_warnings() + [
            w for w in self.suppressed if w.category in ("race", "init-race")
        ]
        return any(
            w.var is not None and names_may_alias(w.var, var) for w in candidates
        )

    def diagnostics(self, include_mhp_notes: bool = True) -> List[Diagnostic]:
        """All findings as :class:`~repro.staticcheck.diag.Diagnostic`\\ s.

        Includes the suppressed findings (marked) and, when the MHP
        analysis is available, the informational ``MH001`` notes: access
        pairs that are lock-serialized (no race) but not happens-before
        ordered, i.e. schedule-dependent orderings the dynamic detector
        still has to resolve.
        """
        out = [w.as_diagnostic(self.program_name) for w in self.warnings]
        out.extend(w.as_diagnostic(self.program_name, suppressed=True) for w in self.suppressed)
        if include_mhp_notes:
            out.extend(self._mhp_overlap_notes())
        return out

    def _mhp_overlap_notes(self) -> List[Diagnostic]:
        if self.summary is None or self.mhp is None:
            return []
        notes: List[Diagnostic] = []
        seen: set = set()
        sites = self.summary.accesses
        for i, a in enumerate(sites):
            for b in sites[i:]:
                if a.op == "read" and b.op == "read":
                    continue
                if not names_may_alias(a.var, b.var):
                    continue
                if not (a.lockset & b.lockset):
                    continue  # disjoint locksets are RR001 territory
                if self.mhp.ordered(a, b):
                    continue
                var = a.var if isinstance(a.var, str) else b.var
                if str(var) in seen:
                    continue
                seen.add(str(var))
                la = self.summary.instance(a.instance).label
                lb = self.summary.instance(b.instance).label
                shared = ",".join(sorted(a.lockset & b.lockset))
                notes.append(
                    Diagnostic(
                        rule="MH001",
                        message=(
                            f"{a.op} by {la} and {b.op} by {lb} are serialized "
                            f"by {{{shared}}} but not happens-before ordered"
                        ),
                        program=self.program_name,
                        var=str(var),
                        threads=tuple(sorted({la, lb})),
                        locks=tuple(sorted(a.lockset & b.lockset)),
                        spans=(
                            SourceSpan(file=a.file, line=a.line, func=a.func),
                            SourceSpan(file=b.file, line=b.line, func=b.func),
                        ),
                        evidence={
                            "sites": [
                                {"op": a.op, "func": a.func, "line": a.line},
                                {"op": b.op, "func": b.func, "line": b.line},
                            ]
                        },
                    )
                )
        notes.sort(key=lambda d: str(d.var))
        return notes

    def format(self) -> str:
        if not self.warnings:
            return f"{self.program_name}: no static warnings"
        lines = [f"{self.program_name}: {len(self.warnings)} static warning(s)"]
        for warning in self.warnings:
            lines.append(warning.format())
        return "\n".join(lines)


_ORDER = {c: i for i, c in enumerate(CATEGORIES)}


def analyze_program(program: Program, interprocedural: bool = True) -> StaticReport:
    """Run the full static pipeline on ``program``: extract → races +
    lock-order → combined report.

    ``interprocedural=False`` re-enables the pre-interprocedural
    worst-case handling of nested defs and helper calls (used by the
    precision benchmark's before/after comparison).
    """
    # function-body imports: races/lockorder produce StaticWarning, so a
    # module-level import here would be circular.
    from repro.staticcheck.extract import extract_summary
    from repro.staticcheck.lockorder import analyze_lock_order
    from repro.staticcheck.mhp import MHPAnalysis
    from repro.staticcheck.races import analyze_races

    summary = extract_summary(program, interprocedural=interprocedural)
    mhp = MHPAnalysis(summary)
    warnings: List[StaticWarning] = []
    warnings.extend(analyze_races(summary, mhp=mhp))
    warnings.extend(analyze_lock_order(summary))
    for note in summary.approximations:
        category = (
            "unanalyzed-thread"
            if "unanalyzed thread" in note or "fork body" in note
            else "approximation"
        )
        warnings.append(StaticWarning(category=category, message=note))
    warnings.sort(key=lambda w: (_ORDER.get(w.category, len(_ORDER)), str(w.var or ""), w.message))
    active: List[StaticWarning] = []
    silenced: List[StaticWarning] = []
    for warning in warnings:
        if _diag.is_suppressed(warning.rule_id, warning.spans):
            silenced.append(warning)
        else:
            active.append(warning)
    return StaticReport(
        program_name=program.name,
        warnings=active,
        summary=summary,
        suppressed=silenced,
        mhp=mhp,
    )
