"""Cross-validation: static warnings vs. dynamically confirmed races.

The soundness contract of the static analyzer is *coverage*: every race a
dynamic detector confirms on an actual execution must correspond to some
static race warning (the converse — static warnings without a dynamic
confirmation — is expected: static analysis over-approximates and a single
observed schedule under-approximates).

For one workload, :func:`cross_validate`:

1. runs the program once under the workload's pinned schedule seed;
2. collects the racy variables confirmed by **both** dynamic detectors —
   the ParaMount predicate detector (init-filtered, §5.2) and FastTrack
   (which reports init races too) — taking their union;
3. runs the static pipeline (:func:`~repro.staticcheck.report.analyze_program`)
   on the same program;
4. reports ``missed`` (dynamically confirmed, not covered by any static
   race/init-race warning — a soundness bug) and ``extra`` (statically
   warned, not confirmed on this schedule — expected over-approximation).

Dynamic results are cached per workload name: the schedules are pinned, so
re-running detectors for every parametrized test would only burn time.

The second harness here cross-validates the **detection planner**
(:func:`cross_validate_planner`): for every predicate registered for a
workload (:mod:`repro.predicates.registry`), the planner's fast-path
verdict *and witness cut* must match full enumeration on the same
event-collection poset, soundly declared predicates must keep their
declared class, and the adversarial misdeclarations must be demoted to
``arbitrary`` (full-enumeration route).  This is the acceptance proof
that the fast paths change detection latency, never detection results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.staticcheck.report import StaticReport, analyze_program
from repro.types import Cut
from repro.workloads.registry import ALL_DETECTION_WORKLOADS, detection_workload

__all__ = [
    "CrossValidation",
    "cross_validate",
    "cross_validate_registry",
    "PredicateCheck",
    "PlannerCrossValidation",
    "cross_validate_planner",
    "cross_validate_planner_registry",
]


@dataclass
class CrossValidation:
    """Static-vs-dynamic comparison for one workload."""

    workload: str
    static_report: StaticReport
    #: Racy variables confirmed by ParaMount (dynamic).
    paramount_racy: frozenset
    #: Racy variables confirmed by FastTrack.
    fasttrack_racy: frozenset
    #: Dynamically confirmed variables not covered statically (must be empty).
    missed: frozenset
    #: Statically warned variables with no dynamic confirmation here.
    extra: Tuple[str, ...]

    @property
    def dynamic_racy(self) -> frozenset:
        return self.paramount_racy | self.fasttrack_racy

    @property
    def ok(self) -> bool:
        """Static warnings cover every dynamically confirmed race."""
        return not self.missed

    def format(self) -> str:
        lines = [
            f"{self.workload}: dynamic races {sorted(self.dynamic_racy) or '[]'} "
            f"(ParaMount {sorted(self.paramount_racy) or '[]'}, "
            f"FastTrack {sorted(self.fasttrack_racy) or '[]'})"
        ]
        statics = sorted(
            str(w.var) for w in self.static_report.race_warnings() if w.var is not None
        )
        lines.append(f"  static race warnings on: {statics or '[]'}")
        if self.missed:
            lines.append(f"  MISSED (soundness bug): {sorted(self.missed)}")
        else:
            lines.append("  coverage OK: no dynamically confirmed race missed")
        if self.extra:
            lines.append(
                f"  static-only (over-approximation or other schedules): "
                f"{list(self.extra)}"
            )
        return "\n".join(lines)


#: workload name -> (paramount racy vars, fasttrack racy vars)
_DYNAMIC_CACHE: Dict[str, Tuple[frozenset, frozenset]] = {}


def _dynamic_racy_vars(name: str) -> Tuple[frozenset, frozenset]:
    cached = _DYNAMIC_CACHE.get(name)
    if cached is not None:
        return cached
    # Imported lazily: the detector package imports the planner, which
    # imports this package — a module-level import here would be circular.
    from repro.detector.fasttrack import FastTrackDetector
    from repro.detector.paramount_detector import ParaMountDetector

    workload = detection_workload(name)
    trace = workload.trace()
    pm = ParaMountDetector().run(trace, benign_vars=workload.benign_vars)
    ft = FastTrackDetector(trace.num_threads).run(trace, benign_vars=workload.benign_vars)
    result = (frozenset(pm.racy_vars), frozenset(ft.racy_vars))
    _DYNAMIC_CACHE[name] = result
    return result


def cross_validate(name: str) -> CrossValidation:
    """Compare static warnings with dynamic findings for one workload."""
    workload = detection_workload(name)
    static_report = analyze_program(workload.build())
    pm_racy, ft_racy = _dynamic_racy_vars(name)
    dynamic = pm_racy | ft_racy
    missed = frozenset(v for v in dynamic if not static_report.covers_var(v))
    confirmed = set(dynamic)
    extra = tuple(
        sorted(
            str(w.var)
            for w in static_report.race_warnings()
            if w.var is not None and str(w.var) not in confirmed
        )
    )
    return CrossValidation(
        workload=name,
        static_report=static_report,
        paramount_racy=pm_racy,
        fasttrack_racy=ft_racy,
        missed=missed,
        extra=extra,
    )


def cross_validate_registry() -> List[CrossValidation]:
    """Cross-validate every detection workload (Table 2 + extras)."""
    return [cross_validate(name) for name in ALL_DETECTION_WORKLOADS]


# --------------------------------------------------------------------- #
# planner cross-validation: fast-path verdicts vs full enumeration


@dataclass
class PredicateCheck:
    """One registered predicate checked on one workload's poset."""

    spec_name: str
    claimed: str
    assigned: str
    route: str
    demoted: bool
    adversarial: bool
    fast_detected: bool
    full_detected: bool
    fast_witness: Optional[Cut]
    full_witness: Optional[Cut]
    ok: bool
    reason: str = ""

    def describe(self) -> str:
        status = "OK" if self.ok else "FAIL"
        tail = f" — {self.reason}" if self.reason else ""
        return (
            f"{self.spec_name:15s} claimed={self.claimed:11s} "
            f"assigned={self.assigned:11s} route={self.route:18s} "
            f"{status}{tail}"
        )


@dataclass
class PlannerCrossValidation:
    """Planner-vs-enumeration comparison for one workload."""

    workload: str
    checks: List[PredicateCheck]

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def fast_pathed(self) -> int:
        """Predicates that actually took a fast path."""
        return sum(1 for c in self.checks if c.route != "full_enumeration")

    def format(self) -> str:
        lines = [f"planner crossval for {self.workload!r}:"]
        lines += [f"  {c.describe()}" for c in self.checks]
        lines.append(
            f"  {'OK' if self.ok else 'FAIL'}: {self.fast_pathed}/"
            f"{len(self.checks)} predicate(s) fast-pathed, verdicts "
            f"identical to full enumeration"
        )
        return "\n".join(lines)


def cross_validate_planner(
    name: str, include_adversarial: bool = True
) -> PlannerCrossValidation:
    """Prove the planner sound on one workload (see module docstring).

    For each registered predicate: plan under the author's declared class,
    run the planned route, run full enumeration (the short-circuiting
    lexical walk over the same event-collection poset — exactly the states
    a full ParaMount pass checks), and compare.  Fresh predicate instances
    are built per side, because predicates accumulate state across checks.
    """
    from repro.detector.hb import poset_from_trace
    from repro.detector.planner import ROUTE_FULL, DetectionPlanner
    from repro.predicates.modalities import possibly
    from repro.predicates.registry import predicates_for
    from repro.staticcheck.predclass import PredicateClass

    workload = detection_workload(name)
    poset = poset_from_trace(workload.trace(), merge_collections=True)
    planner = DetectionPlanner(mode="auto")
    checks: List[PredicateCheck] = []
    for spec in predicates_for(name, include_adversarial=include_adversarial):
        plan = planner.plan(
            spec.build(poset),
            name=spec.name,
            claimed=PredicateClass(spec.claimed),
        )
        fast = planner.detect(poset, spec.build(poset), plan=plan)
        full_witness = possibly(poset, spec.build(poset))
        full_detected = full_witness is not None

        ok = True
        reason = ""
        if spec.adversarial:
            if not (plan.certificate.demoted and plan.route == ROUTE_FULL):
                ok = False
                reason = "misdeclared predicate was NOT demoted"
        elif plan.certificate.demoted:
            ok = False
            reason = "soundly declared predicate was demoted"
        if ok and fast.detected != full_detected:
            ok = False
            reason = (
                f"verdict mismatch: fast={fast.detected} "
                f"full={full_detected}"
            )
        if ok and fast.detected:
            if plan.route in ("conjunctive_slice", "linear_slice", ROUTE_FULL):
                # Meet-closed satisfying sets have a unique least element,
                # which is also the lexicographically first satisfying
                # state — the two witnesses must be identical.
                if fast.witness != full_witness:
                    ok = False
                    reason = (
                        f"witness mismatch: fast={fast.witness} "
                        f"full={full_witness}"
                    )
            else:
                # Stable sets are up-closed, not meet-closed: the sweep's
                # witness need not be the lexical first, but it must be a
                # consistent satisfying state.
                probe = spec.build(poset)
                assert fast.witness is not None
                if not poset.is_consistent(fast.witness) or not probe.check(
                    fast.witness, poset.frontier_events(fast.witness)
                ):
                    ok = False
                    reason = f"stable witness invalid: {fast.witness}"

        checks.append(
            PredicateCheck(
                spec_name=spec.name,
                claimed=spec.claimed,
                assigned=plan.certificate.assigned.value,
                route=plan.route,
                demoted=plan.certificate.demoted,
                adversarial=spec.adversarial,
                fast_detected=fast.detected,
                full_detected=full_detected,
                fast_witness=fast.witness,
                full_witness=full_witness,
                ok=ok,
                reason=reason,
            )
        )
    return PlannerCrossValidation(workload=name, checks=checks)


def cross_validate_planner_registry(
    include_adversarial: bool = True,
) -> List[PlannerCrossValidation]:
    """Planner cross-validation over every detection workload."""
    return [
        cross_validate_planner(name, include_adversarial=include_adversarial)
        for name in ALL_DETECTION_WORKLOADS
    ]
