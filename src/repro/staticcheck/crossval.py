"""Cross-validation: static warnings vs. dynamically confirmed races.

The soundness contract of the static analyzer is *coverage*: every race a
dynamic detector confirms on an actual execution must correspond to some
static race warning (the converse — static warnings without a dynamic
confirmation — is expected: static analysis over-approximates and a single
observed schedule under-approximates).

For one workload, :func:`cross_validate`:

1. runs the program once under the workload's pinned schedule seed;
2. collects the racy variables confirmed by **both** dynamic detectors —
   the ParaMount predicate detector (init-filtered, §5.2) and FastTrack
   (which reports init races too) — taking their union;
3. runs the static pipeline (:func:`~repro.staticcheck.report.analyze_program`)
   on the same program;
4. reports ``missed`` (dynamically confirmed, not covered by any static
   race/init-race warning — a soundness bug) and ``extra`` (statically
   warned, not confirmed on this schedule — expected over-approximation).

Dynamic results are cached per workload name: the schedules are pinned, so
re-running detectors for every parametrized test would only burn time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.detector.fasttrack import FastTrackDetector
from repro.detector.paramount_detector import ParaMountDetector
from repro.staticcheck.report import StaticReport, analyze_program
from repro.workloads.registry import ALL_DETECTION_WORKLOADS, detection_workload

__all__ = ["CrossValidation", "cross_validate", "cross_validate_registry"]


@dataclass
class CrossValidation:
    """Static-vs-dynamic comparison for one workload."""

    workload: str
    static_report: StaticReport
    #: Racy variables confirmed by ParaMount (dynamic).
    paramount_racy: frozenset
    #: Racy variables confirmed by FastTrack.
    fasttrack_racy: frozenset
    #: Dynamically confirmed variables not covered statically (must be empty).
    missed: frozenset
    #: Statically warned variables with no dynamic confirmation here.
    extra: Tuple[str, ...]

    @property
    def dynamic_racy(self) -> frozenset:
        return self.paramount_racy | self.fasttrack_racy

    @property
    def ok(self) -> bool:
        """Static warnings cover every dynamically confirmed race."""
        return not self.missed

    def format(self) -> str:
        lines = [
            f"{self.workload}: dynamic races {sorted(self.dynamic_racy) or '[]'} "
            f"(ParaMount {sorted(self.paramount_racy) or '[]'}, "
            f"FastTrack {sorted(self.fasttrack_racy) or '[]'})"
        ]
        statics = sorted(
            str(w.var) for w in self.static_report.race_warnings() if w.var is not None
        )
        lines.append(f"  static race warnings on: {statics or '[]'}")
        if self.missed:
            lines.append(f"  MISSED (soundness bug): {sorted(self.missed)}")
        else:
            lines.append("  coverage OK: no dynamically confirmed race missed")
        if self.extra:
            lines.append(
                f"  static-only (over-approximation or other schedules): "
                f"{list(self.extra)}"
            )
        return "\n".join(lines)


#: workload name -> (paramount racy vars, fasttrack racy vars)
_DYNAMIC_CACHE: Dict[str, Tuple[frozenset, frozenset]] = {}


def _dynamic_racy_vars(name: str) -> Tuple[frozenset, frozenset]:
    cached = _DYNAMIC_CACHE.get(name)
    if cached is not None:
        return cached
    workload = detection_workload(name)
    trace = workload.trace()
    pm = ParaMountDetector().run(trace, benign_vars=workload.benign_vars)
    ft = FastTrackDetector(trace.num_threads).run(trace, benign_vars=workload.benign_vars)
    result = (frozenset(pm.racy_vars), frozenset(ft.racy_vars))
    _DYNAMIC_CACHE[name] = result
    return result


def cross_validate(name: str) -> CrossValidation:
    """Compare static warnings with dynamic findings for one workload."""
    workload = detection_workload(name)
    static_report = analyze_program(workload.build())
    pm_racy, ft_racy = _dynamic_racy_vars(name)
    dynamic = pm_racy | ft_racy
    missed = frozenset(v for v in dynamic if not static_report.covers_var(v))
    confirmed = set(dynamic)
    extra = tuple(
        sorted(
            str(w.var)
            for w in static_report.race_warnings()
            if w.var is not None and str(w.var) not in confirmed
        )
    )
    return CrossValidation(
        workload=name,
        static_report=static_report,
        paramount_racy=pm_racy,
        fasttrack_racy=ft_racy,
        missed=missed,
        extra=extra,
    )


def cross_validate_registry() -> List[CrossValidation]:
    """Cross-validate every detection workload (Table 2 + extras)."""
    return [cross_validate(name) for name in ALL_DETECTION_WORKLOADS]
