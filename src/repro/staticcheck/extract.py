"""AST extraction of conservative op-flow summaries from thread bodies.

A :class:`~repro.runtime.program.Program`'s thread bodies are generator
functions yielding :mod:`repro.runtime.ops` operations.  The extractor
walks their **source ASTs** — the bodies are never executed — and produces
a :class:`ProgramSummary`:

* every variable access with the *lockset* held at that point;
* the set of abstract thread instances with their fork/join edges
  (which accesses are ordered before a fork or after a join);
* lock-order edges (lock ``b`` acquired while ``a`` is held) for the
  deadlock analyzer.

Precision strategy (everything degrades conservatively, never silently):

* constant expressions, closure cells and module globals are resolved by
  the guarded evaluator of :mod:`repro.staticcheck.values`; anything
  touching the runtime ``ctx`` stays :data:`~repro.staticcheck.values.UNKNOWN`;
* ``for`` loops over statically known small iterables are **unrolled**
  (resolving e.g. per-worker f-string variable names and the
  ``kids.append(k)`` / ``for k in kids: yield Join(k)`` idiom exactly);
  other loops are analyzed twice and joined conservatively — locksets
  intersect, forks replicate, joins are *not* credited (a loop may run
  zero times);
* ``if`` branches with statically known conditions take one side; unknown
  conditions analyze both sides and join (lockset intersection, fork
  union, join intersection);
* ``yield from helper(...)`` inlines the helper's AST with the caller's
  lock/fork state; factory calls such as ``Fork(_worker(i))`` are resolved
  by evaluating the (assumed pure) factory to obtain the closure analyzed
  next.

Whenever resolution fails the extractor records an ``approximation`` note
and errs toward *larger* race reports: locksets shrink, threads replicate,
joins are forgotten.  This is what makes the race analyzer's warnings a
superset of the dynamically confirmed races (see
:mod:`repro.staticcheck.crossval`).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import StaticCheckError
from repro.runtime import ops as rt_ops
from repro.runtime.program import Program
from repro.staticcheck.values import (
    UNKNOWN,
    StrPattern,
    VarName,
    eval_str,
    try_eval,
)

__all__ = [
    "AccessSite",
    "LockOrderEdge",
    "ProgramSummary",
    "SummaryExtractor",
    "ThreadInstance",
    "extract_summary",
]


# --------------------------------------------------------------------- #
# summary data model


@dataclass(frozen=True)
class AccessSite:
    """One static read/write site with its conservative context."""

    op: str  # "read" | "write"
    var: VarName
    is_init: bool
    #: Locks (concrete names) surely held at this access.
    lockset: frozenset
    #: False when the analysis may have lost lock information here.
    lockset_exact: bool
    #: Owning :class:`ThreadInstance` id.
    instance: int
    line: int
    func: str
    #: Instance ids possibly already forked when this site runs (union over
    #: paths) — a site is ordered *before* every instance not in here.
    forked_before: frozenset = frozenset()
    #: Instance ids surely fully joined when this site runs (intersection
    #: over paths) — the site is ordered *after* every instance in here.
    joined_before: frozenset = frozenset()

    def describe(self) -> str:
        locks = ",".join(sorted(self.lockset)) or "∅"
        init = " init" if self.is_init else ""
        return f"{self.op}{init}({self.var}) locks={{{locks}}} @{self.func}:{self.line}"


@dataclass
class ThreadInstance:
    """One abstract thread of the program (a fork site, or ``main``)."""

    id: int
    label: str
    parent: Optional[int]
    #: True when the site stands for ≥ 2 dynamic threads (fork in a loop).
    replicated: bool = False
    #: Instance ids surely fully joined (in the parent) before this fork —
    #: this instance is ordered entirely after those instances.
    forked_after_joins: frozenset = frozenset()
    #: How many times the fork site was seen (≥ 2 ⇒ replicated).
    times_forked: int = 0
    #: True while every re-fork of this site happened only after all prior
    #: copies were surely joined (a strictly sequential fork/join loop):
    #: the dynamic copies are then pairwise HB-ordered even though the
    #: instance is replicated.  Meaningful only when ``replicated``.
    serial_refork: bool = True


@dataclass(frozen=True)
class LockOrderEdge:
    """Lock ``acquired`` taken while ``held`` was held, by ``thread``."""

    held: str
    acquired: str
    thread: str
    line: int


@dataclass
class ProgramSummary:
    """The static op-flow summary of a whole program."""

    program_name: str
    instances: List[ThreadInstance] = field(default_factory=list)
    accesses: List[AccessSite] = field(default_factory=list)
    lock_edges: List[LockOrderEdge] = field(default_factory=list)
    #: (thread label, lock, line) — acquire of a lock already held.
    self_deadlocks: List[Tuple[str, str, int]] = field(default_factory=list)
    #: Human-readable notes where precision was lost.
    approximations: List[str] = field(default_factory=list)

    def instance(self, iid: int) -> ThreadInstance:
        return self.instances[iid]

    def variables(self) -> Set[str]:
        """Concretely named variables accessed anywhere."""
        return {a.var for a in self.accesses if isinstance(a.var, str)}


# --------------------------------------------------------------------- #
# abstract runtime values


@dataclass(frozen=True)
class _Handle:
    """Abstract value of ``yield Fork(...)``: a thread-instance handle."""

    instance_id: int


class _Frame:
    """Mutable concurrency state threaded through one instance's analysis."""

    __slots__ = (
        "lockset",
        "lockset_exact",
        "fork_counts",
        "join_counts",
        "terminated",
    )

    def __init__(self) -> None:
        self.lockset: Set[str] = set()
        self.lockset_exact = True
        self.fork_counts: Dict[int, int] = {}
        self.join_counts: Dict[int, int] = {}
        #: None | "return" | "break" | "continue"
        self.terminated: Optional[str] = None

    def copy(self) -> "_Frame":
        f = _Frame()
        f.lockset = set(self.lockset)
        f.lockset_exact = self.lockset_exact
        f.fork_counts = dict(self.fork_counts)
        f.join_counts = dict(self.join_counts)
        f.terminated = self.terminated
        return f

    def assign_from(self, other: "_Frame") -> None:
        self.lockset = set(other.lockset)
        self.lockset_exact = other.lockset_exact
        self.fork_counts = dict(other.fork_counts)
        self.join_counts = dict(other.join_counts)
        self.terminated = other.terminated


def _join_frames(frames: List[_Frame]) -> _Frame:
    """Conservative join of the live (non-terminated) path states."""
    live = [f for f in frames if f.terminated is None]
    if not live:
        out = frames[0].copy()
        out.terminated = "return"
        return out
    out = live[0].copy()
    for f in live[1:]:
        if f.lockset != out.lockset:
            out.lockset_exact = False
        out.lockset &= f.lockset
        out.lockset_exact = out.lockset_exact and f.lockset_exact
        for iid, cnt in f.fork_counts.items():
            out.fork_counts[iid] = max(out.fork_counts.get(iid, 0), cnt)
        joined: Dict[int, int] = {}
        for iid in set(out.join_counts) | set(f.join_counts):
            joined[iid] = min(out.join_counts.get(iid, 0), f.join_counts.get(iid, 0))
        out.join_counts = joined
    return out


def _join_locals(locals_list: List[Dict[str, Any]]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    keys = set()
    for loc in locals_list:
        keys |= set(loc)
    for key in keys:
        vals = [loc.get(key, UNKNOWN) for loc in locals_list]
        first = vals[0]
        if all(_same_value(v, first) for v in vals[1:]):
            out[key] = first
        else:
            out[key] = UNKNOWN
    return out


def _same_value(a: Any, b: Any) -> bool:
    if a is b:
        return True
    try:
        return bool(a == b)
    except Exception:
        return False


@dataclass
class _AccessDraft:
    op: str
    var: VarName
    is_init: bool
    lockset: frozenset
    lockset_exact: bool
    instance: int
    line: int
    func: str
    fork_snapshot: Dict[int, int]
    join_snapshot: Dict[int, int]


# --------------------------------------------------------------------- #
# the extractor

_OP_NAMES = {
    "Read": rt_ops.Read,
    "Write": rt_ops.Write,
    "Acquire": rt_ops.Acquire,
    "Release": rt_ops.Release,
    "Wait": rt_ops.Wait,
    "Notify": rt_ops.Notify,
    "NotifyAll": rt_ops.NotifyAll,
    "Fork": rt_ops.Fork,
    "Join": rt_ops.Join,
    "Compute": rt_ops.Compute,
    "Sleep": rt_ops.Sleep,
}


class SummaryExtractor:
    """Extracts a :class:`ProgramSummary` from a program without running it."""

    def __init__(
        self,
        program: Program,
        unroll_limit: int = 32,
        max_depth: int = 16,
        max_instances: int = 64,
    ):
        self.program = program
        self.unroll_limit = unroll_limit
        self.max_depth = max_depth
        self.max_instances = max_instances
        self._instances: List[ThreadInstance] = []
        self._accesses: List[_AccessDraft] = []
        self._instance_joins_at_fork: Dict[int, Dict[int, int]] = {}
        self._lock_edges: Set[LockOrderEdge] = set()
        self._self_deadlocks: List[Tuple[str, str, int]] = []
        self._notes: List[str] = []
        self._fork_keys: Dict[Any, int] = {}
        self._ast_cache: Dict[Any, Optional[ast.FunctionDef]] = {}
        self._code_stack: List[Any] = []
        #: > 0 while analyzing a non-unrolled (approximate) loop body.
        self._approx_loop = 0

    # -------------------------------------------------------------- #

    def extract(self) -> ProgramSummary:
        root = ThreadInstance(id=0, label="main", parent=None, times_forked=1)
        self._instances.append(root)
        self._instance_joins_at_fork[0] = {}
        frame = _Frame()
        self._run_function(self.program.main, {}, frame, root)
        return self._finalize()

    def _finalize(self) -> ProgramSummary:
        summary = ProgramSummary(program_name=self.program.name)
        summary.instances = self._instances
        summary.lock_edges = sorted(
            self._lock_edges, key=lambda e: (e.held, e.acquired, e.thread, e.line)
        )
        summary.self_deadlocks = self._self_deadlocks
        summary.approximations = self._notes
        for inst in self._instances:
            inst.replicated = inst.replicated or inst.times_forked > 1
            joins = self._instance_joins_at_fork.get(inst.id, {})
            inst.forked_after_joins = frozenset(
                iid
                for iid, cnt in joins.items()
                if cnt >= self._instances[iid].times_forked
            )
        for draft in self._accesses:
            summary.accesses.append(
                AccessSite(
                    op=draft.op,
                    var=draft.var,
                    is_init=draft.is_init,
                    lockset=draft.lockset,
                    lockset_exact=draft.lockset_exact,
                    instance=draft.instance,
                    line=draft.line,
                    func=draft.func,
                    forked_before=frozenset(
                        iid for iid, cnt in draft.fork_snapshot.items() if cnt > 0
                    ),
                    joined_before=frozenset(
                        iid
                        for iid, cnt in draft.join_snapshot.items()
                        if cnt >= self._instances[iid].times_forked
                    ),
                )
            )
        # deduplicate sites recorded twice by two-pass loop analysis
        seen: Set[AccessSite] = set()
        unique: List[AccessSite] = []
        for site in summary.accesses:
            if site not in seen:
                seen.add(site)
                unique.append(site)
        summary.accesses = unique
        return summary

    # -------------------------------------------------------------- #
    # function-level analysis

    def _run_function(
        self,
        fn: Any,
        bindings: Dict[str, Any],
        frame: _Frame,
        instance: ThreadInstance,
    ) -> None:
        """Inline-analyze ``fn``'s body with the given parameter bindings."""
        node = self._function_ast(fn)
        if node is None:
            self._note(
                f"{instance.label}: cannot obtain source of {getattr(fn, '__name__', fn)!r}; "
                "its effects are unanalyzed"
            )
            frame.lockset.clear()
            frame.lockset_exact = False
            return
        code = getattr(fn, "__code__", None)
        if code in self._code_stack:
            self._note(f"{instance.label}: recursive helper {fn.__name__!r} not re-inlined")
            return
        if len(self._code_stack) >= self.max_depth:
            self._note(f"{instance.label}: helper inlining depth limit reached")
            frame.lockset_exact = False
            return
        env = self._closure_env(fn)
        locals_: Dict[str, Any] = dict(bindings)
        for i, arg in enumerate(node.args.args):
            if arg.arg not in locals_:
                locals_[arg.arg] = UNKNOWN
        ctx = _FnCtx(fn=fn, env=env, qualname=getattr(fn, "__qualname__", "<body>"))
        self._code_stack.append(code)
        try:
            self._exec_block(node.body, frame, locals_, instance, ctx)
        finally:
            self._code_stack.pop()
        if frame.terminated == "return":
            frame.terminated = None  # a return only ends the helper

    def _function_ast(self, fn: Any) -> Optional[ast.FunctionDef]:
        code = getattr(fn, "__code__", None)
        if code is None:
            return None
        if code in self._ast_cache:
            return self._ast_cache[code]
        result: Optional[ast.FunctionDef] = None
        try:
            source = textwrap.dedent(inspect.getsource(fn))
            module = ast.parse(source)
            for stmt in ast.walk(module):
                if isinstance(stmt, ast.FunctionDef) and stmt.name == fn.__name__:
                    result = stmt
                    break
        except (OSError, TypeError, SyntaxError, IndentationError):
            result = None
        self._ast_cache[code] = result
        return result

    def _closure_env(self, fn: Any) -> Dict[str, Any]:
        env: Dict[str, Any] = {}
        try:
            cv = inspect.getclosurevars(fn)
        except (TypeError, ValueError):
            return dict(getattr(fn, "__globals__", {}) or {})
        env.update(cv.globals)
        env.update(cv.nonlocals)
        return env

    # -------------------------------------------------------------- #
    # statement walk

    def _exec_block(self, stmts, frame, locals_, instance, ctx) -> None:
        for stmt in stmts:
            if frame.terminated is not None:
                return
            self._exec_stmt(stmt, frame, locals_, instance, ctx)

    def _exec_stmt(self, stmt, frame, locals_, instance, ctx) -> None:
        if isinstance(stmt, ast.Expr):
            self._exec_expr_stmt(stmt.value, frame, locals_, instance, ctx)
        elif isinstance(stmt, ast.Assign):
            value = self._exec_value(stmt.value, frame, locals_, instance, ctx)
            self._bind_targets(stmt.targets, value, locals_)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self._exec_value(stmt.value, frame, locals_, instance, ctx)
                self._bind_targets([stmt.target], value, locals_)
        elif isinstance(stmt, ast.AugAssign):
            self._consume_stray_yields(stmt.value, frame, locals_, instance, ctx)
            self._bind_targets([stmt.target], UNKNOWN, locals_)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, frame, locals_, instance, ctx)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, frame, locals_, instance, ctx)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt, frame, locals_, instance, ctx)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._consume_stray_yields(stmt.value, frame, locals_, instance, ctx)
            frame.terminated = "return"
        elif isinstance(stmt, ast.Break):
            frame.terminated = "break"
        elif isinstance(stmt, ast.Continue):
            frame.terminated = "continue"
        elif isinstance(stmt, ast.Raise):
            frame.terminated = "return"
        elif isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal, ast.Import, ast.ImportFrom)):
            pass
        elif isinstance(stmt, ast.Assert):
            pass
        elif isinstance(stmt, ast.FunctionDef):
            locals_[stmt.name] = UNKNOWN
            self._note(f"{ctx.qualname}: nested def {stmt.name!r} not modeled")
        elif isinstance(stmt, ast.Try):
            before = frame.copy()
            self._exec_block(stmt.body, frame, locals_, instance, ctx)
            branches = [frame.copy()]
            for handler in stmt.handlers:
                hf = before.copy()
                hl = dict(locals_)
                self._exec_block(handler.body, hf, hl, instance, ctx)
                branches.append(hf)
            frame.assign_from(_join_frames(branches))
            self._exec_block(stmt.finalbody, frame, locals_, instance, ctx)
        elif isinstance(stmt, ast.With):
            self._exec_block(stmt.body, frame, locals_, instance, ctx)
        else:
            self._note(f"{ctx.qualname}:{stmt.lineno}: unmodeled statement "
                       f"{type(stmt).__name__}")

    # ---- expressions that may carry yields ------------------------- #

    def _exec_expr_stmt(self, expr, frame, locals_, instance, ctx) -> None:
        if isinstance(expr, ast.Yield):
            self._do_yield(expr, frame, locals_, instance, ctx)
        elif isinstance(expr, ast.YieldFrom):
            self._do_yield_from(expr, frame, locals_, instance, ctx)
        elif (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "append"
            and isinstance(expr.func.value, ast.Name)
            and isinstance(locals_.get(expr.func.value.id), list)
            and len(expr.args) == 1
        ):
            ok, item = try_eval(expr.args[0], {**ctx.env, **locals_})
            locals_[expr.func.value.id].append(item if ok else UNKNOWN)
        else:
            self._consume_stray_yields(expr, frame, locals_, instance, ctx)

    def _exec_value(self, expr, frame, locals_, instance, ctx) -> Any:
        """Evaluate the right-hand side of an assignment."""
        if isinstance(expr, ast.Yield):
            return self._do_yield(expr, frame, locals_, instance, ctx)
        if isinstance(expr, ast.YieldFrom):
            self._do_yield_from(expr, frame, locals_, instance, ctx)
            return UNKNOWN
        if self._consume_stray_yields(expr, frame, locals_, instance, ctx):
            return UNKNOWN
        ok, value = try_eval(expr, {**ctx.env, **locals_})
        return value if ok else UNKNOWN

    def _consume_stray_yields(self, expr, frame, locals_, instance, ctx) -> bool:
        """Apply the effects of yields buried inside a larger expression."""
        found = False
        for node in ast.walk(expr):
            if isinstance(node, ast.Yield) and node is not expr:
                found = True
                self._do_yield(node, frame, locals_, instance, ctx)
            elif isinstance(node, ast.YieldFrom) and node is not expr:
                found = True
                self._do_yield_from(node, frame, locals_, instance, ctx)
        return found

    def _bind_targets(self, targets, value, locals_) -> None:
        for target in targets:
            if isinstance(target, ast.Name):
                locals_[target.id] = value
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    self._bind_targets([elt], UNKNOWN, locals_)
            # attribute/subscript targets: no tracked binding

    # ---- control flow ---------------------------------------------- #

    def _exec_if(self, stmt: ast.If, frame, locals_, instance, ctx) -> None:
        self._consume_stray_yields(stmt.test, frame, locals_, instance, ctx)
        ok, cond = try_eval(stmt.test, {**ctx.env, **locals_})
        if ok:
            branch = stmt.body if cond else stmt.orelse
            self._exec_block(branch, frame, locals_, instance, ctx)
            return
        then_f, then_l = frame.copy(), dict(locals_)
        else_f, else_l = frame.copy(), dict(locals_)
        self._exec_block(stmt.body, then_f, then_l, instance, ctx)
        self._exec_block(stmt.orelse, else_f, else_l, instance, ctx)
        frame.assign_from(_join_frames([then_f, else_f]))
        merged = _join_locals(
            [loc for f, loc in ((then_f, then_l), (else_f, else_l)) if f.terminated is None]
            or [then_l, else_l]
        )
        locals_.clear()
        locals_.update(merged)

    def _exec_for(self, stmt: ast.For, frame, locals_, instance, ctx) -> None:
        self._consume_stray_yields(stmt.iter, frame, locals_, instance, ctx)
        ok, iterable = try_eval(stmt.iter, {**ctx.env, **locals_})
        values: Optional[List[Any]] = None
        if ok:
            try:
                values = list(iterable)
            except TypeError:
                values = None
        if values is not None and len(values) <= self.unroll_limit:
            for value in values:
                self._bind_targets([stmt.target], value, locals_)
                self._exec_block(stmt.body, frame, locals_, instance, ctx)
                if frame.terminated == "continue":
                    frame.terminated = None
                elif frame.terminated == "break":
                    frame.terminated = None
                    break
                elif frame.terminated == "return":
                    return
            self._exec_block(stmt.orelse, frame, locals_, instance, ctx)
            return
        if values is not None:
            self._note(
                f"{ctx.qualname}:{stmt.lineno}: loop over {len(values)} values "
                f"exceeds unroll limit {self.unroll_limit}; joined conservatively"
            )
        self._bind_targets([stmt.target], UNKNOWN, locals_)
        self._exec_approx_loop(stmt.body, frame, locals_, instance, ctx, may_skip=True)
        self._exec_block(stmt.orelse, frame, locals_, instance, ctx)

    def _exec_while(self, stmt: ast.While, frame, locals_, instance, ctx) -> None:
        self._consume_stray_yields(stmt.test, frame, locals_, instance, ctx)
        ok, cond = try_eval(stmt.test, {**ctx.env, **locals_})
        may_skip = not (ok and bool(cond))  # `while True:` never skips
        self._exec_approx_loop(stmt.body, frame, locals_, instance, ctx, may_skip=may_skip)
        self._exec_block(stmt.orelse, frame, locals_, instance, ctx)

    def _exec_approx_loop(self, body, frame, locals_, instance, ctx, may_skip: bool) -> None:
        """Two-pass conservative loop analysis.

        Pass 1 runs from the entry state; the entry is then *widened*
        (changed locals dropped, locksets intersected) and pass 2 re-runs
        to record accesses under the stabilized state.  Joins inside the
        body are not credited (the loop may run zero or fewer times than
        the analysis sees); forks inside the body mark their instances
        replicated.
        """
        self._approx_loop += 1
        try:
            breaks: List[_Frame] = []

            def run_pass(f: _Frame, loc: Dict[str, Any]) -> Tuple[_Frame, Dict[str, Any]]:
                self._exec_block(body, f, loc, instance, ctx)
                if f.terminated == "break":
                    f.terminated = None
                    breaks.append(f.copy())
                elif f.terminated == "continue":
                    f.terminated = None
                return f, loc

            entry_f, entry_l = frame.copy(), dict(locals_)
            pass1_f, pass1_l = run_pass(frame.copy(), dict(locals_))

            widened_f = _join_frames([entry_f, pass1_f])
            widened_l = _join_locals([entry_l, pass1_l])
            pass2_f, _ = run_pass(widened_f.copy(), dict(widened_l))

            exits = list(breaks) + ([pass2_f] if pass2_f.terminated is None else [])
            if may_skip:
                exits.append(widened_f)
            if pass2_f.terminated == "return" and not exits:
                frame.assign_from(pass2_f)
                locals_.clear()
                locals_.update(widened_l)
                return
            joined = _join_frames(exits) if exits else pass2_f
            frame.assign_from(joined)
            locals_.clear()
            locals_.update(widened_l)
        finally:
            self._approx_loop -= 1

    # ---- operations ------------------------------------------------ #

    def _do_yield(self, node: ast.Yield, frame, locals_, instance, ctx) -> Any:
        value = node.value
        if value is None:
            return UNKNOWN
        if not isinstance(value, ast.Call):
            self._note(f"{ctx.qualname}:{node.lineno}: yield of a non-op expression")
            return UNKNOWN
        op_cls = self._resolve_op_class(value.func, {**ctx.env, **locals_})
        if op_cls is None:
            self._note(
                f"{ctx.qualname}:{node.lineno}: unresolvable yielded operation; "
                "lockset knowledge dropped"
            )
            frame.lockset.clear()
            frame.lockset_exact = False
            return UNKNOWN
        return self._apply_op(op_cls, value, node.lineno, frame, locals_, instance, ctx)

    def _resolve_op_class(self, func_node, env) -> Optional[type]:
        ok, value = try_eval(func_node, env)
        if ok and isinstance(value, type) and issubclass(value, rt_ops.Op):
            return value
        if isinstance(func_node, ast.Name) and func_node.id in _OP_NAMES:
            return _OP_NAMES[func_node.id]
        if isinstance(func_node, ast.Attribute) and func_node.attr in _OP_NAMES:
            return _OP_NAMES[func_node.attr]
        return None

    def _op_arg(self, call: ast.Call, position: int, keyword: str):
        if len(call.args) > position:
            return call.args[position]
        for kw in call.keywords:
            if kw.arg == keyword:
                return kw.value
        return None

    def _apply_op(self, op_cls, call, line, frame, locals_, instance, ctx) -> Any:
        env = {**ctx.env, **locals_}
        if op_cls is rt_ops.Read or op_cls is rt_ops.Write:
            var_node = self._op_arg(call, 0, "var")
            var = eval_str(var_node, env) if var_node is not None else StrPattern()
            is_init = False
            if op_cls is rt_ops.Write:
                init_node = self._op_arg(call, 2, "is_init")
                if init_node is not None:
                    ok, value = try_eval(init_node, env)
                    is_init = bool(value) if ok else False
            self._accesses.append(
                _AccessDraft(
                    op="read" if op_cls is rt_ops.Read else "write",
                    var=var,
                    is_init=is_init,
                    lockset=frozenset(frame.lockset),
                    lockset_exact=frame.lockset_exact,
                    instance=instance.id,
                    line=line,
                    func=ctx.qualname,
                    fork_snapshot=dict(frame.fork_counts),
                    join_snapshot=dict(frame.join_counts),
                )
            )
            return UNKNOWN
        if op_cls is rt_ops.Acquire:
            lock = self._lock_name(call, env)
            if isinstance(lock, str):
                if lock in frame.lockset:
                    self._self_deadlocks.append((instance.label, lock, line))
                for held in sorted(frame.lockset):
                    self._lock_edges.add(
                        LockOrderEdge(held=held, acquired=lock, thread=instance.label, line=line)
                    )
                frame.lockset.add(lock)
            else:
                frame.lockset_exact = False
                self._note(f"{ctx.qualname}:{line}: dynamic lock name {lock} in Acquire")
            return None
        if op_cls is rt_ops.Release:
            lock = self._lock_name(call, env)
            if isinstance(lock, str):
                frame.lockset.discard(lock)
            else:
                # an unknown release may free anything: drop all lock
                # knowledge (sound for the race analysis).
                frame.lockset.clear()
                frame.lockset_exact = False
                self._note(f"{ctx.qualname}:{line}: dynamic lock name {lock} in Release")
            return None
        if op_cls in (rt_ops.Wait, rt_ops.Notify, rt_ops.NotifyAll):
            # wait releases and re-acquires the monitor atomically around
            # the suspension; the lockset across the yield is unchanged.
            return None
        if op_cls is rt_ops.Fork:
            return self._do_fork(call, line, frame, locals_, instance, ctx)
        if op_cls is rt_ops.Join:
            tid_node = self._op_arg(call, 0, "tid")
            ok, value = (
                try_eval(tid_node, env) if tid_node is not None else (False, UNKNOWN)
            )
            if isinstance(value, _Handle):
                if self._approx_loop == 0:
                    frame.join_counts[value.instance_id] = (
                        frame.join_counts.get(value.instance_id, 0) + 1
                    )
            else:
                self._note(f"{ctx.qualname}:{line}: join target not statically resolved")
            return None
        # Compute / Sleep and anything op-like but effect-free
        return None

    def _lock_name(self, call: ast.Call, env) -> VarName:
        node = self._op_arg(call, 0, "lock")
        return eval_str(node, env) if node is not None else StrPattern()

    # ---- fork / yield from ----------------------------------------- #

    def _do_fork(self, call, line, frame, locals_, instance, ctx) -> Any:
        env = {**ctx.env, **locals_}
        body_node = self._op_arg(call, 0, "body")
        ok, body = try_eval(body_node, env) if body_node is not None else (False, UNKNOWN)
        if not ok or not callable(body):
            self._note(
                f"{ctx.qualname}:{line}: fork body not statically resolved — "
                "an unanalyzed thread exists"
            )
            return UNKNOWN
        key = (line, getattr(body, "__code__", body), self._closure_key(body))
        existing = self._fork_keys.get(key)
        if existing is not None:
            inst = self._instances[existing]
            # A re-fork is *serial* only when every copy forked so far is
            # surely joined at this point (and we are not inside an
            # approximate loop, where join credit is withheld).
            if (
                self._approx_loop > 0
                or frame.join_counts.get(existing, 0) < inst.times_forked
            ):
                inst.serial_refork = False
            inst.times_forked += 1
            frame.fork_counts[existing] = frame.fork_counts.get(existing, 0) + 1
            return _Handle(existing)
        if len(self._instances) >= self.max_instances:
            self._note(f"{ctx.qualname}:{line}: instance limit reached; fork not analyzed")
            return UNKNOWN
        name_node = self._op_arg(call, 1, "name")
        label = None
        if name_node is not None:
            resolved = eval_str(name_node, env)
            label = resolved if isinstance(resolved, str) else str(resolved)
        if not label:
            label = getattr(body, "__name__", "thread")
        if any(i.label == label for i in self._instances):
            label = f"{label}#{len(self._instances)}"
        iid = len(self._instances)
        joins_now = {
            k: v for k, v in frame.join_counts.items()
        }
        inst = ThreadInstance(id=iid, label=label, parent=instance.id, times_forked=1)
        self._instances.append(inst)
        self._instance_joins_at_fork[iid] = joins_now
        self._fork_keys[key] = iid
        frame.fork_counts[iid] = frame.fork_counts.get(iid, 0) + 1
        child_frame = _Frame()
        self._run_function(body, {}, child_frame, inst)
        return _Handle(iid)

    def _closure_key(self, fn: Any) -> Any:
        cells = getattr(fn, "__closure__", None)
        if not cells:
            return ()
        parts = []
        for cell in cells:
            try:
                parts.append(repr(cell.cell_contents))
            except ValueError:  # pragma: no cover - empty cell
                parts.append("<empty>")
        return tuple(parts)

    def _do_yield_from(self, node: ast.YieldFrom, frame, locals_, instance, ctx) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            env = {**ctx.env, **locals_}
            ok, fn = try_eval(value.func, env)
            if ok and callable(fn) and inspect.isgeneratorfunction(fn):
                bindings = self._bind_call(fn, value, env)
                self._run_function(fn, bindings, frame, instance, )
                return
        self._note(
            f"{ctx.qualname}:{node.lineno}: unresolved `yield from`; "
            "lockset knowledge dropped"
        )
        frame.lockset.clear()
        frame.lockset_exact = False

    def _bind_call(self, fn, call: ast.Call, env) -> Dict[str, Any]:
        bindings: Dict[str, Any] = {}
        try:
            params = list(inspect.signature(fn).parameters.values())
        except (TypeError, ValueError):
            return bindings
        for i, arg in enumerate(call.args):
            if i < len(params):
                ok, value = try_eval(arg, env)
                bindings[params[i].name] = value if ok else UNKNOWN
        for kw in call.keywords:
            if kw.arg is not None:
                ok, value = try_eval(kw.value, env)
                bindings[kw.arg] = value if ok else UNKNOWN
        for param in params:
            if param.name not in bindings and param.default is not inspect.Parameter.empty:
                bindings[param.name] = param.default
        return bindings

    # -------------------------------------------------------------- #

    def _note(self, message: str) -> None:
        if message not in self._notes:
            self._notes.append(message)


@dataclass
class _FnCtx:
    """Per-function analysis context (env + diagnostics label)."""

    fn: Any
    env: Dict[str, Any]
    qualname: str


def extract_summary(program: Program, **kwargs) -> ProgramSummary:
    """Extract the static op-flow summary of ``program`` (no execution)."""
    if not callable(program.main):
        raise StaticCheckError(f"program {program.name!r} has no callable main")
    return SummaryExtractor(program, **kwargs).extract()
