"""AST extraction of conservative op-flow summaries from thread bodies.

A :class:`~repro.runtime.program.Program`'s thread bodies are generator
functions yielding :mod:`repro.runtime.ops` operations.  The extractor
walks their **source ASTs** — the bodies are never executed — and produces
a :class:`ProgramSummary`:

* every variable access with the *lockset* held at that point;
* the set of abstract thread instances with their fork/join edges
  (which accesses are ordered before a fork or after a join);
* lock-order edges (lock ``b`` acquired while ``a`` is held) for the
  deadlock analyzer.

Precision strategy (everything degrades conservatively, never silently):

* constant expressions, closure cells and module globals are resolved by
  the guarded evaluator of :mod:`repro.staticcheck.values`; anything
  touching the runtime ``ctx`` stays :data:`~repro.staticcheck.values.UNKNOWN`;
* ``for`` loops over statically known small iterables are **unrolled**
  (resolving e.g. per-worker f-string variable names and the
  ``kids.append(k)`` / ``for k in kids: yield Join(k)`` idiom exactly);
  other loops are analyzed twice and joined conservatively — locksets
  intersect, forks replicate, joins are *not* credited (a loop may run
  zero times);
* ``if`` branches with statically known conditions take one side; unknown
  conditions analyze both sides and join (lockset intersection, fork
  union, join intersection);
* ``yield from helper(...)`` inlines the helper's AST with the caller's
  lock/fork state; factory calls such as ``Fork(_worker(i))`` are resolved
  by evaluating the (assumed pure) factory to obtain the closure analyzed
  next;
* **interprocedural summaries** (default on): a nested ``def`` becomes a
  :class:`_StaticClosure` — its AST plus a snapshot of the defining
  scope — so nested thread bodies forked via ``Fork(worker)`` are analyzed
  with their closure environment, nested generator helpers inline through
  ``yield from``, and nested *non-generator* helpers are evaluated
  abstractly at call sites (a bounded, memoized pure interpreter over
  their ASTs).  Helper inlining is memoized per (callee, bindings, entry
  lock/fork/join state) — the classic call-summary cache — and recursion
  is *widened* conservatively (lockset knowledge dropped, note recorded)
  instead of being unrolled.

Whenever resolution fails the extractor records an ``approximation`` note
and errs toward *larger* race reports: locksets shrink, threads replicate,
joins are forgotten.  This is what makes the race analyzer's warnings a
superset of the dynamically confirmed races (see
:mod:`repro.staticcheck.crossval`).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import types
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import StaticCheckError
from repro.runtime import ops as rt_ops
from repro.runtime.program import Program
from repro.staticcheck.values import (
    UNKNOWN,
    StrPattern,
    VarName,
    eval_str,
    try_eval,
)

__all__ = [
    "AccessSite",
    "LockOrderEdge",
    "ProgramSummary",
    "SummaryExtractor",
    "ThreadInstance",
    "extract_summary",
]


# --------------------------------------------------------------------- #
# summary data model


@dataclass(frozen=True)
class AccessSite:
    """One static read/write site with its conservative context."""

    op: str  # "read" | "write"
    var: VarName
    is_init: bool
    #: Locks (concrete names) surely held at this access.
    lockset: frozenset
    #: False when the analysis may have lost lock information here.
    lockset_exact: bool
    #: Owning :class:`ThreadInstance` id.
    instance: int
    line: int
    func: str
    #: Source file of the access (absolute line numbers refer into it).
    file: str = ""
    #: Instance ids possibly already forked when this site runs (union over
    #: paths) — a site is ordered *before* every instance not in here.
    forked_before: frozenset = frozenset()
    #: Instance ids surely fully joined when this site runs (intersection
    #: over paths) — the site is ordered *after* every instance in here.
    joined_before: frozenset = frozenset()

    def describe(self) -> str:
        locks = ",".join(sorted(self.lockset)) or "∅"
        init = " init" if self.is_init else ""
        return f"{self.op}{init}({self.var}) locks={{{locks}}} @{self.func}:{self.line}"


@dataclass
class ThreadInstance:
    """One abstract thread of the program (a fork site, or ``main``)."""

    id: int
    label: str
    parent: Optional[int]
    #: True when the site stands for ≥ 2 dynamic threads (fork in a loop).
    replicated: bool = False
    #: Instance ids surely fully joined (in the parent) before this fork —
    #: this instance is ordered entirely after those instances.
    forked_after_joins: frozenset = frozenset()
    #: How many times the fork site was seen (≥ 2 ⇒ replicated).
    times_forked: int = 0
    #: True while every re-fork of this site happened only after all prior
    #: copies were surely joined (a strictly sequential fork/join loop):
    #: the dynamic copies are then pairwise HB-ordered even though the
    #: instance is replicated.  Meaningful only when ``replicated``.
    serial_refork: bool = True


@dataclass(frozen=True)
class LockOrderEdge:
    """Lock ``acquired`` taken while ``held`` was held, by ``thread``."""

    held: str
    acquired: str
    thread: str
    line: int
    file: str = ""


@dataclass
class ProgramSummary:
    """The static op-flow summary of a whole program."""

    program_name: str
    instances: List[ThreadInstance] = field(default_factory=list)
    accesses: List[AccessSite] = field(default_factory=list)
    lock_edges: List[LockOrderEdge] = field(default_factory=list)
    #: (thread label, lock, line, file) — acquire of a lock already held.
    self_deadlocks: List[Tuple[str, str, int, str]] = field(default_factory=list)
    #: Human-readable notes where precision was lost.
    approximations: List[str] = field(default_factory=list)
    #: Interprocedural machinery counters: memoized helper-inline hits and
    #: misses, abstract pure calls of nested helpers and their cache hits.
    call_stats: Dict[str, int] = field(default_factory=dict)

    def instance(self, iid: int) -> ThreadInstance:
        return self.instances[iid]

    def variables(self) -> Set[str]:
        """Concretely named variables accessed anywhere."""
        return {a.var for a in self.accesses if isinstance(a.var, str)}


# --------------------------------------------------------------------- #
# abstract runtime values


@dataclass(frozen=True)
class _Handle:
    """Abstract value of ``yield Fork(...)``: a thread-instance handle."""

    instance_id: int


class _Frame:
    """Mutable concurrency state threaded through one instance's analysis."""

    __slots__ = (
        "lockset",
        "lockset_exact",
        "fork_counts",
        "join_counts",
        "terminated",
    )

    def __init__(self) -> None:
        self.lockset: Set[str] = set()
        self.lockset_exact = True
        self.fork_counts: Dict[int, int] = {}
        self.join_counts: Dict[int, int] = {}
        #: None | "return" | "break" | "continue"
        self.terminated: Optional[str] = None

    def copy(self) -> "_Frame":
        f = _Frame()
        f.lockset = set(self.lockset)
        f.lockset_exact = self.lockset_exact
        f.fork_counts = dict(self.fork_counts)
        f.join_counts = dict(self.join_counts)
        f.terminated = self.terminated
        return f

    def assign_from(self, other: "_Frame") -> None:
        self.lockset = set(other.lockset)
        self.lockset_exact = other.lockset_exact
        self.fork_counts = dict(other.fork_counts)
        self.join_counts = dict(other.join_counts)
        self.terminated = other.terminated


def _join_frames(frames: List[_Frame]) -> _Frame:
    """Conservative join of the live (non-terminated) path states."""
    live = [f for f in frames if f.terminated is None]
    if not live:
        out = frames[0].copy()
        out.terminated = "return"
        return out
    out = live[0].copy()
    for f in live[1:]:
        if f.lockset != out.lockset:
            out.lockset_exact = False
        out.lockset &= f.lockset
        out.lockset_exact = out.lockset_exact and f.lockset_exact
        for iid, cnt in f.fork_counts.items():
            out.fork_counts[iid] = max(out.fork_counts.get(iid, 0), cnt)
        joined: Dict[int, int] = {}
        for iid in set(out.join_counts) | set(f.join_counts):
            joined[iid] = min(out.join_counts.get(iid, 0), f.join_counts.get(iid, 0))
        out.join_counts = joined
    return out


def _join_locals(locals_list: List[Dict[str, Any]]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    keys = set()
    for loc in locals_list:
        keys |= set(loc)
    for key in keys:
        vals = [loc.get(key, UNKNOWN) for loc in locals_list]
        first = vals[0]
        if all(_same_value(v, first) for v in vals[1:]):
            out[key] = first
        else:
            out[key] = UNKNOWN
    return out


def _same_value(a: Any, b: Any) -> bool:
    if a is b:
        return True
    try:
        return bool(a == b)
    except Exception:
        return False


@dataclass
class _AccessDraft:
    op: str
    var: VarName
    is_init: bool
    lockset: frozenset
    lockset_exact: bool
    instance: int
    line: int
    func: str
    file: str
    fork_snapshot: Dict[int, int]
    join_snapshot: Dict[int, int]

    def clone(self) -> "_AccessDraft":
        return _AccessDraft(
            op=self.op,
            var=self.var,
            is_init=self.is_init,
            lockset=self.lockset,
            lockset_exact=self.lockset_exact,
            instance=self.instance,
            line=self.line,
            func=self.func,
            file=self.file,
            fork_snapshot=dict(self.fork_snapshot),
            join_snapshot=dict(self.join_snapshot),
        )


# --------------------------------------------------------------------- #
# interprocedural machinery: static closures and call summaries


class _PureEvalError(Exception):
    """A nested helper call could not be evaluated purely."""


def _ast_is_generator(node: ast.FunctionDef) -> bool:
    """Whether the function body contains a yield outside nested scopes."""
    stack: List[ast.AST] = list(node.body)
    while stack:
        n = stack.pop()
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(n, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(n))
    return False


def _free_names(node: ast.FunctionDef) -> frozenset:
    """Names the nested function may read from its defining scope.

    Over-approximated (every loaded name minus the parameters): the set
    only drives conservative invalidation and instance-merge keys, where
    *larger* is always safe."""
    args = node.args
    bound = {a.arg for a in list(args.args) + list(args.kwonlyargs) + list(args.posonlyargs)}
    if args.vararg is not None:
        bound.add(args.vararg.arg)
    if args.kwarg is not None:
        bound.add(args.kwarg.arg)
    loads = set()
    for n in ast.walk(node):
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load):
            loads.add(n.id)
    return frozenset(loads - bound)


@dataclass(eq=False, repr=False)
class _StaticClosure:
    """A nested ``def`` captured with its defining environment.

    Behaves enough like a function for the extractor's three use sites:
    as a ``Fork(...)`` body (analyzed as a fresh thread instance), as a
    ``yield from`` generator helper (inlined), and — via :meth:`__call__`
    inside the guarded evaluator — as an abstractly-interpreted pure
    helper (e.g. a name-construction function)."""

    node: ast.FunctionDef
    qualname: str
    file: str
    frees: frozenset
    is_generator: bool
    extractor: "SummaryExtractor"
    env: Dict[str, Any] = field(default_factory=dict)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.extractor._pure_call(self, args, kwargs)

    def __repr__(self) -> str:
        return f"<static closure {self.qualname}>"

    @property
    def __name__(self) -> str:  # fork-label fallback parity with functions
        return self.node.name


@dataclass
class _CallMemo:
    """Cached effects of one memoized helper inlining."""

    drafts: List[_AccessDraft]
    lock_edges: frozenset
    self_deadlocks: Tuple[Tuple[str, str, int, str], ...]
    exit_frame: _Frame


# --------------------------------------------------------------------- #
# the extractor

_OP_NAMES = {
    "Read": rt_ops.Read,
    "Write": rt_ops.Write,
    "Acquire": rt_ops.Acquire,
    "Release": rt_ops.Release,
    "Wait": rt_ops.Wait,
    "Notify": rt_ops.Notify,
    "NotifyAll": rt_ops.NotifyAll,
    "Fork": rt_ops.Fork,
    "Join": rt_ops.Join,
    "Compute": rt_ops.Compute,
    "Sleep": rt_ops.Sleep,
}


class SummaryExtractor:
    """Extracts a :class:`ProgramSummary` from a program without running it."""

    def __init__(
        self,
        program: Program,
        unroll_limit: int = 32,
        max_depth: int = 16,
        max_instances: int = 64,
        interprocedural: bool = True,
    ):
        self.program = program
        self.unroll_limit = unroll_limit
        self.max_depth = max_depth
        self.max_instances = max_instances
        #: When False, nested defs fall back to the pre-interprocedural
        #: worst case (UNKNOWN binding + note) — kept for the precision
        #: benchmark's before/after comparison.
        self.interprocedural = interprocedural
        self._instances: List[ThreadInstance] = []
        self._accesses: List[_AccessDraft] = []
        self._instance_joins_at_fork: Dict[int, Dict[int, int]] = {}
        self._lock_edges: Set[LockOrderEdge] = set()
        self._self_deadlocks: List[Tuple[str, str, int, str]] = []
        self._notes: List[str] = []
        self._fork_keys: Dict[Any, int] = {}
        self._ast_cache: Dict[Any, Optional[ast.FunctionDef]] = {}
        self._code_stack: List[Any] = []
        #: > 0 while analyzing a non-unrolled (approximate) loop body.
        self._approx_loop = 0
        #: Memoized helper-inline summaries and abstract pure-call results.
        self._call_cache: Dict[Any, _CallMemo] = {}
        self._pure_cache: Dict[Any, Any] = {}
        self._pure_stack: List[ast.FunctionDef] = []
        self.call_stats: Dict[str, int] = {
            "memo_hits": 0,
            "memo_misses": 0,
            "pure_calls": 0,
            "pure_hits": 0,
        }

    # -------------------------------------------------------------- #

    def extract(self) -> ProgramSummary:
        root = ThreadInstance(id=0, label="main", parent=None, times_forked=1)
        self._instances.append(root)
        self._instance_joins_at_fork[0] = {}
        frame = _Frame()
        self._run_function(self.program.main, {}, frame, root)
        return self._finalize()

    def _finalize(self) -> ProgramSummary:
        summary = ProgramSummary(program_name=self.program.name)
        summary.instances = self._instances
        summary.lock_edges = sorted(
            self._lock_edges, key=lambda e: (e.held, e.acquired, e.thread, e.line)
        )
        summary.self_deadlocks = self._self_deadlocks
        summary.approximations = self._notes
        summary.call_stats = dict(self.call_stats)
        for inst in self._instances:
            inst.replicated = inst.replicated or inst.times_forked > 1
            joins = self._instance_joins_at_fork.get(inst.id, {})
            inst.forked_after_joins = frozenset(
                iid
                for iid, cnt in joins.items()
                if cnt >= self._instances[iid].times_forked
            )
        for draft in self._accesses:
            summary.accesses.append(
                AccessSite(
                    op=draft.op,
                    var=draft.var,
                    is_init=draft.is_init,
                    lockset=draft.lockset,
                    lockset_exact=draft.lockset_exact,
                    instance=draft.instance,
                    line=draft.line,
                    func=draft.func,
                    file=draft.file,
                    forked_before=frozenset(
                        iid for iid, cnt in draft.fork_snapshot.items() if cnt > 0
                    ),
                    joined_before=frozenset(
                        iid
                        for iid, cnt in draft.join_snapshot.items()
                        if cnt >= self._instances[iid].times_forked
                    ),
                )
            )
        # deduplicate sites recorded twice by two-pass loop analysis
        seen: Set[AccessSite] = set()
        unique: List[AccessSite] = []
        for site in summary.accesses:
            if site not in seen:
                seen.add(site)
                unique.append(site)
        summary.accesses = unique
        return summary

    # -------------------------------------------------------------- #
    # function-level analysis

    def _run_function(
        self,
        fn: Any,
        bindings: Dict[str, Any],
        frame: _Frame,
        instance: ThreadInstance,
    ) -> None:
        """Inline-analyze ``fn``'s body with the given parameter bindings."""
        node = self._function_ast(fn)
        if node is None:
            self._note(
                f"{instance.label}: cannot obtain source of {getattr(fn, '__name__', fn)!r}; "
                "its effects are unanalyzed"
            )
            frame.lockset.clear()
            frame.lockset_exact = False
            return
        code = getattr(fn, "__code__", None)
        self._run_node(
            node=node,
            code_key=code,
            env=self._closure_env(fn),
            bindings=bindings,
            frame=frame,
            instance=instance,
            qualname=getattr(fn, "__qualname__", "<body>"),
            file=getattr(code, "co_filename", ""),
            helper_name=getattr(fn, "__name__", "<body>"),
        )

    def _run_closure(
        self,
        closure: _StaticClosure,
        bindings: Dict[str, Any],
        frame: _Frame,
        instance: ThreadInstance,
    ) -> None:
        """Inline-analyze a nested-``def`` closure's body."""
        self._run_node(
            node=closure.node,
            code_key=closure.node,
            env=closure.env,
            bindings=bindings,
            frame=frame,
            instance=instance,
            qualname=closure.qualname,
            file=closure.file,
            helper_name=closure.node.name,
        )

    def _run_node(
        self,
        node: ast.FunctionDef,
        code_key: Any,
        env: Dict[str, Any],
        bindings: Dict[str, Any],
        frame: _Frame,
        instance: ThreadInstance,
        qualname: str,
        file: str,
        helper_name: str,
    ) -> None:
        """Shared body analysis for real functions and static closures,
        with recursion widening and memoized call summaries."""
        if code_key in self._code_stack:
            # Conservative widening: the recursive tail may do anything to
            # the lockset, so drop that knowledge rather than unrolling.
            self._note(
                f"{instance.label}: recursive helper {helper_name!r} "
                "widened conservatively"
            )
            frame.lockset.clear()
            frame.lockset_exact = False
            return
        if len(self._code_stack) >= self.max_depth:
            self._note(f"{instance.label}: helper inlining depth limit reached")
            frame.lockset_exact = False
            return
        memo_key = self._memo_key(code_key, bindings, frame, instance)
        if memo_key is not None:
            memo = self._call_cache.get(memo_key)
            if memo is not None:
                self._replay_memo(memo, frame)
                return
        accesses_before = len(self._accesses)
        instances_before = len(self._instances)
        edges_before = set(self._lock_edges)
        deadlocks_before = len(self._self_deadlocks)
        entry_forks = dict(frame.fork_counts)
        entry_joins = dict(frame.join_counts)

        locals_: Dict[str, Any] = dict(bindings)
        for arg in node.args.args:
            if arg.arg not in locals_:
                locals_[arg.arg] = UNKNOWN
        ctx = _FnCtx(env=env, qualname=qualname, file=file)
        self._code_stack.append(code_key)
        try:
            self._exec_block(node.body, frame, locals_, instance, ctx)
        finally:
            self._code_stack.pop()
        if frame.terminated == "return":
            frame.terminated = None  # a return only ends the helper
        if memo_key is None:
            return
        self.call_stats["memo_misses"] += 1
        # A call summary is only valid when the run had no fork/join or
        # instance effects: everything else (accesses, lock edges, the
        # exit frame) is then a pure function of the entry state.
        cacheable = (
            frame.terminated is None
            and len(self._instances) == instances_before
            and frame.fork_counts == entry_forks
            and frame.join_counts == entry_joins
        )
        if cacheable:
            self._call_cache[memo_key] = _CallMemo(
                drafts=[d.clone() for d in self._accesses[accesses_before:]],
                lock_edges=frozenset(self._lock_edges - edges_before),
                self_deadlocks=tuple(self._self_deadlocks[deadlocks_before:]),
                exit_frame=frame.copy(),
            )

    def _memo_key(
        self, code_key: Any, bindings: Dict[str, Any], frame: _Frame, instance: ThreadInstance
    ) -> Optional[Tuple[Any, ...]]:
        try:
            bind_key = tuple(sorted((k, repr(v)) for k, v in bindings.items()))
        except Exception:
            return None
        return (
            code_key,
            bind_key,
            frozenset(frame.lockset),
            frame.lockset_exact,
            instance.id,
            tuple(sorted(frame.fork_counts.items())),
            tuple(sorted(frame.join_counts.items())),
            self._approx_loop > 0,
        )

    def _replay_memo(self, memo: _CallMemo, frame: _Frame) -> None:
        self.call_stats["memo_hits"] += 1
        for draft in memo.drafts:
            self._accesses.append(draft.clone())
        self._lock_edges |= memo.lock_edges
        for entry in memo.self_deadlocks:
            if entry not in self._self_deadlocks:
                self._self_deadlocks.append(entry)
        frame.assign_from(memo.exit_frame)

    def _function_ast(self, fn: Any) -> Optional[ast.FunctionDef]:
        code = getattr(fn, "__code__", None)
        if code is None:
            return None
        if code in self._ast_cache:
            return self._ast_cache[code]
        result: Optional[ast.FunctionDef] = None
        try:
            source = textwrap.dedent(inspect.getsource(fn))
            module = ast.parse(source)
            # Shift to absolute line numbers so diagnostics can carry real
            # (file, line) source spans.
            ast.increment_lineno(module, code.co_firstlineno - 1)
            for stmt in ast.walk(module):
                if isinstance(stmt, ast.FunctionDef) and stmt.name == fn.__name__:
                    result = stmt
                    break
        except (OSError, TypeError, SyntaxError, IndentationError):
            result = None
        self._ast_cache[code] = result
        return result

    # -------------------------------------------------------------- #
    # abstract (pure) evaluation of nested non-generator helpers

    def _pure_call(self, closure: _StaticClosure, args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> Any:
        """Abstractly evaluate a call of a nested helper (memoized).

        Raises :class:`_PureEvalError` — which the guarded evaluator turns
        into UNKNOWN — whenever the helper is a generator, recursive, too
        deep, or contains anything but pure straight-line/branching code."""
        self.call_stats["pure_calls"] += 1
        if closure.is_generator:
            raise _PureEvalError(f"{closure.qualname} is a generator")
        memo_key: Optional[Tuple[Any, ...]]
        try:
            env_key = tuple(
                sorted((n, repr(closure.env.get(n, UNKNOWN))) for n in closure.frees)
            )
            memo_key = (closure.node, env_key, repr(args), repr(tuple(sorted(kwargs.items()))))
        except Exception:
            memo_key = None
        if memo_key is not None and memo_key in self._pure_cache:
            self.call_stats["pure_hits"] += 1
            return self._pure_cache[memo_key]
        if closure.node in self._pure_stack or len(self._pure_stack) >= self.max_depth:
            raise _PureEvalError(f"recursive or too-deep pure call of {closure.qualname}")
        arg_spec = closure.node.args
        names = [a.arg for a in arg_spec.args]
        if len(args) > len(names) or arg_spec.vararg or arg_spec.kwarg:
            raise _PureEvalError(f"unsupported call signature for {closure.qualname}")
        loc: Dict[str, Any] = dict(zip(names, args))
        for key, value in kwargs.items():
            if key not in names:
                raise _PureEvalError(f"unknown keyword {key!r} for {closure.qualname}")
            loc[key] = value
        defaults = arg_spec.defaults
        for name, default in zip(names[len(names) - len(defaults):], defaults):
            if name not in loc:
                ok, value = try_eval(default, closure.env)
                if not ok:
                    raise _PureEvalError(f"unresolvable default for {closure.qualname}")
                loc[name] = value
        if len(loc) < len(names):
            raise _PureEvalError(f"missing arguments for {closure.qualname}")
        self._pure_stack.append(closure.node)
        try:
            value, returned = self._pure_block(closure.node.body, closure, loc)
        finally:
            self._pure_stack.pop()
        result = value if returned else None
        if memo_key is not None:
            self._pure_cache[memo_key] = result
        return result

    def _pure_block(
        self, stmts: List[ast.stmt], closure: _StaticClosure, loc: Dict[str, Any]
    ) -> Tuple[Any, bool]:
        for stmt in stmts:
            if isinstance(stmt, ast.Return):
                if stmt.value is None:
                    return None, True
                return self._pure_expr(stmt.value, closure, loc), True
            if isinstance(stmt, ast.Assign) and all(
                isinstance(t, ast.Name) for t in stmt.targets
            ):
                value = self._pure_expr(stmt.value, closure, loc)
                for target in stmt.targets:
                    loc[target.id] = value  # type: ignore[attr-defined]
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if stmt.value is not None:
                    loc[stmt.target.id] = self._pure_expr(stmt.value, closure, loc)
            elif isinstance(stmt, ast.If):
                cond = self._pure_expr(stmt.test, closure, loc)
                value, returned = self._pure_block(
                    stmt.body if cond else stmt.orelse, closure, loc
                )
                if returned:
                    return value, True
            elif isinstance(stmt, ast.FunctionDef):
                loc[stmt.name] = self._make_closure(stmt, closure.qualname, closure.file, {**closure.env, **loc})
            elif isinstance(stmt, ast.Pass):
                pass
            elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                pass  # docstring
            else:
                raise _PureEvalError(
                    f"impure statement {type(stmt).__name__} in {closure.qualname}"
                )
        return None, False

    def _pure_expr(self, node: ast.expr, closure: _StaticClosure, loc: Dict[str, Any]) -> Any:
        ok, value = try_eval(node, {**closure.env, **loc})
        if not ok:
            raise _PureEvalError(f"unresolvable expression in {closure.qualname}")
        return value

    def _make_closure(
        self, stmt: ast.FunctionDef, parent_qualname: str, file: str, scope: Dict[str, Any]
    ) -> _StaticClosure:
        closure = _StaticClosure(
            node=stmt,
            qualname=f"{parent_qualname}.<locals>.{stmt.name}",
            file=file,
            frees=_free_names(stmt),
            is_generator=_ast_is_generator(stmt),
            extractor=self,
        )
        closure.env = dict(scope)
        closure.env[stmt.name] = closure  # self-reference for recursion
        return closure

    def _closure_env(self, fn: Any) -> Dict[str, Any]:
        env: Dict[str, Any] = {}
        try:
            cv = inspect.getclosurevars(fn)
        except (TypeError, ValueError):
            return dict(getattr(fn, "__globals__", {}) or {})
        env.update(cv.globals)
        env.update(cv.nonlocals)
        # getclosurevars only sees the outer code object; globals referenced
        # solely inside nested defs (their own co_names) would be invisible
        # to the closures we build for them.  Pull those in too.
        globals_ = getattr(fn, "__globals__", {}) or {}
        code = getattr(fn, "__code__", None)
        if code is not None:
            stack = [code]
            while stack:
                current = stack.pop()
                for name in current.co_names:
                    if name not in env and name in globals_:
                        env[name] = globals_[name]
                stack.extend(
                    const
                    for const in current.co_consts
                    if isinstance(const, types.CodeType)
                )
        return env

    # -------------------------------------------------------------- #
    # statement walk

    def _exec_block(self, stmts, frame, locals_, instance, ctx) -> None:
        for stmt in stmts:
            if frame.terminated is not None:
                return
            self._exec_stmt(stmt, frame, locals_, instance, ctx)

    def _exec_stmt(self, stmt, frame, locals_, instance, ctx) -> None:
        if isinstance(stmt, ast.Expr):
            self._exec_expr_stmt(stmt.value, frame, locals_, instance, ctx)
        elif isinstance(stmt, ast.Assign):
            value = self._exec_value(stmt.value, frame, locals_, instance, ctx)
            self._bind_targets(stmt.targets, value, locals_)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self._exec_value(stmt.value, frame, locals_, instance, ctx)
                self._bind_targets([stmt.target], value, locals_)
        elif isinstance(stmt, ast.AugAssign):
            self._consume_stray_yields(stmt.value, frame, locals_, instance, ctx)
            self._bind_targets([stmt.target], UNKNOWN, locals_)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, frame, locals_, instance, ctx)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, frame, locals_, instance, ctx)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt, frame, locals_, instance, ctx)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._consume_stray_yields(stmt.value, frame, locals_, instance, ctx)
            frame.terminated = "return"
        elif isinstance(stmt, ast.Break):
            frame.terminated = "break"
        elif isinstance(stmt, ast.Continue):
            frame.terminated = "continue"
        elif isinstance(stmt, ast.Raise):
            frame.terminated = "return"
        elif isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal, ast.Import, ast.ImportFrom)):
            pass
        elif isinstance(stmt, ast.Assert):
            pass
        elif isinstance(stmt, ast.FunctionDef):
            if self.interprocedural:
                closure = self._make_closure(
                    stmt, ctx.qualname, ctx.file, {**ctx.env, **locals_}
                )
                locals_[stmt.name] = closure
            else:
                locals_[stmt.name] = UNKNOWN
                self._note(f"{ctx.qualname}: nested def {stmt.name!r} not modeled")
        elif isinstance(stmt, ast.Try):
            before = frame.copy()
            self._exec_block(stmt.body, frame, locals_, instance, ctx)
            branches = [frame.copy()]
            for handler in stmt.handlers:
                hf = before.copy()
                hl = dict(locals_)
                self._exec_block(handler.body, hf, hl, instance, ctx)
                branches.append(hf)
            frame.assign_from(_join_frames(branches))
            self._exec_block(stmt.finalbody, frame, locals_, instance, ctx)
        elif isinstance(stmt, ast.With):
            self._exec_block(stmt.body, frame, locals_, instance, ctx)
        else:
            self._note(f"{ctx.qualname}:{stmt.lineno}: unmodeled statement "
                       f"{type(stmt).__name__}")

    # ---- expressions that may carry yields ------------------------- #

    def _exec_expr_stmt(self, expr, frame, locals_, instance, ctx) -> None:
        if isinstance(expr, ast.Yield):
            self._do_yield(expr, frame, locals_, instance, ctx)
        elif isinstance(expr, ast.YieldFrom):
            self._do_yield_from(expr, frame, locals_, instance, ctx)
        elif (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "append"
            and isinstance(expr.func.value, ast.Name)
            and isinstance(locals_.get(expr.func.value.id), list)
            and len(expr.args) == 1
        ):
            ok, item = try_eval(expr.args[0], {**ctx.env, **locals_})
            locals_[expr.func.value.id].append(item if ok else UNKNOWN)
        else:
            self._consume_stray_yields(expr, frame, locals_, instance, ctx)

    def _exec_value(self, expr, frame, locals_, instance, ctx) -> Any:
        """Evaluate the right-hand side of an assignment."""
        if isinstance(expr, ast.Yield):
            return self._do_yield(expr, frame, locals_, instance, ctx)
        if isinstance(expr, ast.YieldFrom):
            self._do_yield_from(expr, frame, locals_, instance, ctx)
            return UNKNOWN
        if self._consume_stray_yields(expr, frame, locals_, instance, ctx):
            return UNKNOWN
        ok, value = try_eval(expr, {**ctx.env, **locals_})
        return value if ok else UNKNOWN

    def _consume_stray_yields(self, expr, frame, locals_, instance, ctx) -> bool:
        """Apply the effects of yields buried inside a larger expression."""
        found = False
        for node in ast.walk(expr):
            if isinstance(node, ast.Yield) and node is not expr:
                found = True
                self._do_yield(node, frame, locals_, instance, ctx)
            elif isinstance(node, ast.YieldFrom) and node is not expr:
                found = True
                self._do_yield_from(node, frame, locals_, instance, ctx)
        return found

    def _bind_targets(self, targets, value, locals_) -> None:
        for target in targets:
            if isinstance(target, ast.Name):
                self._invalidate_captures(target.id, value, locals_)
                locals_[target.id] = value
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    self._bind_targets([elt], UNKNOWN, locals_)
            # attribute/subscript targets: no tracked binding

    def _invalidate_captures(self, name: str, value: Any, locals_: Dict[str, Any]) -> None:
        """Rebinding a captured name after a nested ``def`` would make the
        closure's def-time snapshot stale (Python closures late-bind).
        Soundly degrade the capture to UNKNOWN instead of chasing it."""
        for existing in locals_.values():
            if (
                isinstance(existing, _StaticClosure)
                and existing is not value
                and name in existing.frees
                and existing.env.get(name) is not value
            ):
                existing.env[name] = UNKNOWN

    # ---- control flow ---------------------------------------------- #

    def _exec_if(self, stmt: ast.If, frame, locals_, instance, ctx) -> None:
        self._consume_stray_yields(stmt.test, frame, locals_, instance, ctx)
        ok, cond = try_eval(stmt.test, {**ctx.env, **locals_})
        if ok:
            branch = stmt.body if cond else stmt.orelse
            self._exec_block(branch, frame, locals_, instance, ctx)
            return
        then_f, then_l = frame.copy(), dict(locals_)
        else_f, else_l = frame.copy(), dict(locals_)
        self._exec_block(stmt.body, then_f, then_l, instance, ctx)
        self._exec_block(stmt.orelse, else_f, else_l, instance, ctx)
        frame.assign_from(_join_frames([then_f, else_f]))
        merged = _join_locals(
            [loc for f, loc in ((then_f, then_l), (else_f, else_l)) if f.terminated is None]
            or [then_l, else_l]
        )
        locals_.clear()
        locals_.update(merged)

    def _exec_for(self, stmt: ast.For, frame, locals_, instance, ctx) -> None:
        self._consume_stray_yields(stmt.iter, frame, locals_, instance, ctx)
        ok, iterable = try_eval(stmt.iter, {**ctx.env, **locals_})
        values: Optional[List[Any]] = None
        if ok:
            try:
                values = list(iterable)
            except TypeError:
                values = None
        if values is not None and len(values) <= self.unroll_limit:
            for value in values:
                self._bind_targets([stmt.target], value, locals_)
                self._exec_block(stmt.body, frame, locals_, instance, ctx)
                if frame.terminated == "continue":
                    frame.terminated = None
                elif frame.terminated == "break":
                    frame.terminated = None
                    break
                elif frame.terminated == "return":
                    return
            self._exec_block(stmt.orelse, frame, locals_, instance, ctx)
            return
        if values is not None:
            self._note(
                f"{ctx.qualname}:{stmt.lineno}: loop over {len(values)} values "
                f"exceeds unroll limit {self.unroll_limit}; joined conservatively"
            )
        self._bind_targets([stmt.target], UNKNOWN, locals_)
        self._exec_approx_loop(stmt.body, frame, locals_, instance, ctx, may_skip=True)
        self._exec_block(stmt.orelse, frame, locals_, instance, ctx)

    def _exec_while(self, stmt: ast.While, frame, locals_, instance, ctx) -> None:
        self._consume_stray_yields(stmt.test, frame, locals_, instance, ctx)
        ok, cond = try_eval(stmt.test, {**ctx.env, **locals_})
        may_skip = not (ok and bool(cond))  # `while True:` never skips
        self._exec_approx_loop(stmt.body, frame, locals_, instance, ctx, may_skip=may_skip)
        self._exec_block(stmt.orelse, frame, locals_, instance, ctx)

    def _exec_approx_loop(self, body, frame, locals_, instance, ctx, may_skip: bool) -> None:
        """Two-pass conservative loop analysis.

        Pass 1 runs from the entry state; the entry is then *widened*
        (changed locals dropped, locksets intersected) and pass 2 re-runs
        to record accesses under the stabilized state.  Joins inside the
        body are not credited (the loop may run zero or fewer times than
        the analysis sees); forks inside the body mark their instances
        replicated.
        """
        self._approx_loop += 1
        try:
            breaks: List[_Frame] = []

            def run_pass(f: _Frame, loc: Dict[str, Any]) -> Tuple[_Frame, Dict[str, Any]]:
                self._exec_block(body, f, loc, instance, ctx)
                if f.terminated == "break":
                    f.terminated = None
                    breaks.append(f.copy())
                elif f.terminated == "continue":
                    f.terminated = None
                return f, loc

            entry_f, entry_l = frame.copy(), dict(locals_)
            pass1_f, pass1_l = run_pass(frame.copy(), dict(locals_))

            widened_f = _join_frames([entry_f, pass1_f])
            widened_l = _join_locals([entry_l, pass1_l])
            pass2_f, _ = run_pass(widened_f.copy(), dict(widened_l))

            exits = list(breaks) + ([pass2_f] if pass2_f.terminated is None else [])
            if may_skip:
                exits.append(widened_f)
            if pass2_f.terminated == "return" and not exits:
                frame.assign_from(pass2_f)
                locals_.clear()
                locals_.update(widened_l)
                return
            joined = _join_frames(exits) if exits else pass2_f
            frame.assign_from(joined)
            locals_.clear()
            locals_.update(widened_l)
        finally:
            self._approx_loop -= 1

    # ---- operations ------------------------------------------------ #

    def _do_yield(self, node: ast.Yield, frame, locals_, instance, ctx) -> Any:
        value = node.value
        if value is None:
            return UNKNOWN
        if not isinstance(value, ast.Call):
            self._note(f"{ctx.qualname}:{node.lineno}: yield of a non-op expression")
            return UNKNOWN
        op_cls = self._resolve_op_class(value.func, {**ctx.env, **locals_})
        if op_cls is None:
            self._note(
                f"{ctx.qualname}:{node.lineno}: unresolvable yielded operation; "
                "lockset knowledge dropped"
            )
            frame.lockset.clear()
            frame.lockset_exact = False
            return UNKNOWN
        return self._apply_op(op_cls, value, node.lineno, frame, locals_, instance, ctx)

    def _resolve_op_class(self, func_node, env) -> Optional[type]:
        ok, value = try_eval(func_node, env)
        if ok and isinstance(value, type) and issubclass(value, rt_ops.Op):
            return value
        if isinstance(func_node, ast.Name) and func_node.id in _OP_NAMES:
            return _OP_NAMES[func_node.id]
        if isinstance(func_node, ast.Attribute) and func_node.attr in _OP_NAMES:
            return _OP_NAMES[func_node.attr]
        return None

    def _op_arg(self, call: ast.Call, position: int, keyword: str):
        if len(call.args) > position:
            return call.args[position]
        for kw in call.keywords:
            if kw.arg == keyword:
                return kw.value
        return None

    def _apply_op(self, op_cls, call, line, frame, locals_, instance, ctx) -> Any:
        env = {**ctx.env, **locals_}
        if op_cls is rt_ops.Read or op_cls is rt_ops.Write:
            var_node = self._op_arg(call, 0, "var")
            var = eval_str(var_node, env) if var_node is not None else StrPattern()
            is_init = False
            if op_cls is rt_ops.Write:
                init_node = self._op_arg(call, 2, "is_init")
                if init_node is not None:
                    ok, value = try_eval(init_node, env)
                    is_init = bool(value) if ok else False
            self._accesses.append(
                _AccessDraft(
                    op="read" if op_cls is rt_ops.Read else "write",
                    var=var,
                    is_init=is_init,
                    lockset=frozenset(frame.lockset),
                    lockset_exact=frame.lockset_exact,
                    instance=instance.id,
                    line=line,
                    func=ctx.qualname,
                    file=ctx.file,
                    fork_snapshot=dict(frame.fork_counts),
                    join_snapshot=dict(frame.join_counts),
                )
            )
            return UNKNOWN
        if op_cls is rt_ops.Acquire:
            lock = self._lock_name(call, env)
            if isinstance(lock, str):
                if lock in frame.lockset:
                    self._self_deadlocks.append((instance.label, lock, line, ctx.file))
                for held in sorted(frame.lockset):
                    self._lock_edges.add(
                        LockOrderEdge(
                            held=held,
                            acquired=lock,
                            thread=instance.label,
                            line=line,
                            file=ctx.file,
                        )
                    )
                frame.lockset.add(lock)
            else:
                frame.lockset_exact = False
                self._note(f"{ctx.qualname}:{line}: dynamic lock name {lock} in Acquire")
            return None
        if op_cls is rt_ops.Release:
            lock = self._lock_name(call, env)
            if isinstance(lock, str):
                frame.lockset.discard(lock)
            else:
                # an unknown release may free anything: drop all lock
                # knowledge (sound for the race analysis).
                frame.lockset.clear()
                frame.lockset_exact = False
                self._note(f"{ctx.qualname}:{line}: dynamic lock name {lock} in Release")
            return None
        if op_cls in (rt_ops.Wait, rt_ops.Notify, rt_ops.NotifyAll):
            # wait releases and re-acquires the monitor atomically around
            # the suspension; the lockset across the yield is unchanged.
            return None
        if op_cls is rt_ops.Fork:
            return self._do_fork(call, line, frame, locals_, instance, ctx)
        if op_cls is rt_ops.Join:
            tid_node = self._op_arg(call, 0, "tid")
            ok, value = (
                try_eval(tid_node, env) if tid_node is not None else (False, UNKNOWN)
            )
            if isinstance(value, _Handle):
                if self._approx_loop == 0:
                    frame.join_counts[value.instance_id] = (
                        frame.join_counts.get(value.instance_id, 0) + 1
                    )
            else:
                self._note(f"{ctx.qualname}:{line}: join target not statically resolved")
            return None
        # Compute / Sleep and anything op-like but effect-free
        return None

    def _lock_name(self, call: ast.Call, env) -> VarName:
        node = self._op_arg(call, 0, "lock")
        return eval_str(node, env) if node is not None else StrPattern()

    # ---- fork / yield from ----------------------------------------- #

    def _do_fork(self, call, line, frame, locals_, instance, ctx) -> Any:
        env = {**ctx.env, **locals_}
        body_node = self._op_arg(call, 0, "body")
        ok, body = try_eval(body_node, env) if body_node is not None else (False, UNKNOWN)
        if not ok or not callable(body):
            self._note(
                f"{ctx.qualname}:{line}: fork body not statically resolved — "
                "an unanalyzed thread exists"
            )
            return UNKNOWN
        if isinstance(body, _StaticClosure):
            key = (line, body.node, self._static_closure_key(body))
        else:
            key = (line, getattr(body, "__code__", body), self._closure_key(body))
        existing = self._fork_keys.get(key)
        if existing is not None:
            inst = self._instances[existing]
            # A re-fork is *serial* only when every copy forked so far is
            # surely joined at this point (and we are not inside an
            # approximate loop, where join credit is withheld).
            if (
                self._approx_loop > 0
                or frame.join_counts.get(existing, 0) < inst.times_forked
            ):
                inst.serial_refork = False
            inst.times_forked += 1
            frame.fork_counts[existing] = frame.fork_counts.get(existing, 0) + 1
            return _Handle(existing)
        if len(self._instances) >= self.max_instances:
            self._note(f"{ctx.qualname}:{line}: instance limit reached; fork not analyzed")
            return UNKNOWN
        name_node = self._op_arg(call, 1, "name")
        label = None
        if name_node is not None:
            resolved = eval_str(name_node, env)
            label = resolved if isinstance(resolved, str) else str(resolved)
        if not label:
            label = getattr(body, "__name__", "thread")
        if any(i.label == label for i in self._instances):
            label = f"{label}#{len(self._instances)}"
        iid = len(self._instances)
        joins_now = {
            k: v for k, v in frame.join_counts.items()
        }
        inst = ThreadInstance(id=iid, label=label, parent=instance.id, times_forked=1)
        self._instances.append(inst)
        self._instance_joins_at_fork[iid] = joins_now
        self._fork_keys[key] = iid
        frame.fork_counts[iid] = frame.fork_counts.get(iid, 0) + 1
        child_frame = _Frame()
        if isinstance(body, _StaticClosure):
            self._run_closure(body, {}, child_frame, inst)
        else:
            self._run_function(body, {}, child_frame, inst)
        return _Handle(iid)

    def _static_closure_key(self, closure: _StaticClosure) -> Any:
        parts = []
        for name in sorted(closure.frees):
            try:
                parts.append((name, repr(closure.env.get(name, UNKNOWN))))
            except Exception:
                parts.append((name, "<unrepresentable>"))
        return tuple(parts)

    def _closure_key(self, fn: Any) -> Any:
        cells = getattr(fn, "__closure__", None)
        if not cells:
            return ()
        parts = []
        for cell in cells:
            try:
                parts.append(repr(cell.cell_contents))
            except ValueError:  # pragma: no cover - empty cell
                parts.append("<empty>")
        return tuple(parts)

    def _do_yield_from(self, node: ast.YieldFrom, frame, locals_, instance, ctx) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            env = {**ctx.env, **locals_}
            ok, fn = try_eval(value.func, env)
            if ok and isinstance(fn, _StaticClosure) and fn.is_generator:
                bindings = self._bind_closure_call(fn, value, env)
                self._run_closure(fn, bindings, frame, instance)
                return
            if ok and callable(fn) and inspect.isgeneratorfunction(fn):
                bindings = self._bind_call(fn, value, env)
                self._run_function(fn, bindings, frame, instance, )
                return
        self._note(
            f"{ctx.qualname}:{node.lineno}: unresolved `yield from`; "
            "lockset knowledge dropped"
        )
        frame.lockset.clear()
        frame.lockset_exact = False

    def _bind_closure_call(self, closure: _StaticClosure, call: ast.Call, env) -> Dict[str, Any]:
        bindings: Dict[str, Any] = {}
        names = [a.arg for a in closure.node.args.args]
        for i, arg in enumerate(call.args):
            if i < len(names):
                ok, value = try_eval(arg, env)
                bindings[names[i]] = value if ok else UNKNOWN
        for kw in call.keywords:
            if kw.arg is not None:
                ok, value = try_eval(kw.value, env)
                bindings[kw.arg] = value if ok else UNKNOWN
        defaults = closure.node.args.defaults
        for name, default in zip(names[len(names) - len(defaults):], defaults):
            if name not in bindings:
                ok, value = try_eval(default, closure.env)
                bindings[name] = value if ok else UNKNOWN
        return bindings

    def _bind_call(self, fn, call: ast.Call, env) -> Dict[str, Any]:
        bindings: Dict[str, Any] = {}
        try:
            params = list(inspect.signature(fn).parameters.values())
        except (TypeError, ValueError):
            return bindings
        for i, arg in enumerate(call.args):
            if i < len(params):
                ok, value = try_eval(arg, env)
                bindings[params[i].name] = value if ok else UNKNOWN
        for kw in call.keywords:
            if kw.arg is not None:
                ok, value = try_eval(kw.value, env)
                bindings[kw.arg] = value if ok else UNKNOWN
        for param in params:
            if param.name not in bindings and param.default is not inspect.Parameter.empty:
                bindings[param.name] = param.default
        return bindings

    # -------------------------------------------------------------- #

    def _note(self, message: str) -> None:
        if message not in self._notes:
            self._notes.append(message)


@dataclass
class _FnCtx:
    """Per-function analysis context (env + diagnostics label)."""

    env: Dict[str, Any]
    qualname: str
    file: str = ""


def extract_summary(program: Program, **kwargs) -> ProgramSummary:
    """Extract the static op-flow summary of ``program`` (no execution)."""
    if not callable(program.main):
        raise StaticCheckError(f"program {program.name!r} has no callable main")
    return SummaryExtractor(program, **kwargs).extract()
