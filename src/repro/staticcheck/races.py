"""Eraser-style static lockset race analysis over an extracted summary.

Two access sites race when, conservatively:

1. their variable names may alias (:func:`~repro.staticcheck.values.names_may_alias`);
2. at least one of them is a write;
3. they are **not** provably happens-before ordered — decided by the
   static MHP analysis (:class:`~repro.staticcheck.mhp.MHPAnalysis`),
   whose reachability closure over the fork/join segment graph strictly
   refines the old pairwise heuristic (removed in favour of the segment
   graph; tests keep a reference copy); and
4. the locksets surely held at the two sites are disjoint.

Honoring the ParaMount §5.2 init-write filter, a pair whose witness
involves an ``is_init`` write is reported under the separate
``init-race`` category: the ParaMount detector never confirms such races
dynamically, but FastTrack can, and the static report must stay a
superset of both (see :mod:`repro.staticcheck.crossval`).

Warnings are grouped per (variable, category): one warning with one
witness pair each, which keeps reports readable while
:meth:`~repro.staticcheck.report.StaticReport.covers_var` still sees
every racy variable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.staticcheck.diag import SourceSpan
from repro.staticcheck.extract import AccessSite, ProgramSummary
from repro.staticcheck.mhp import MHPAnalysis
from repro.staticcheck.report import StaticWarning
from repro.staticcheck.values import VarName, names_may_alias

__all__ = ["analyze_races"]

#: (variable key, category) -> (witness a, witness b, variable name).
_Witness = Tuple[AccessSite, AccessSite, VarName]


def analyze_races(
    summary: ProgramSummary, mhp: Optional[MHPAnalysis] = None
) -> List[StaticWarning]:
    """Pairwise lockset analysis of the summary's access sites.

    ``mhp`` may be passed in to reuse an already-built analysis (the
    report driver and the pruner share one); by default it is built here.
    """
    if mhp is None:
        mhp = MHPAnalysis(summary)
    sites = summary.accesses
    found: Dict[Tuple[str, str], _Witness] = {}
    # A site may pair with itself: a replicated instance (fork site in a
    # loop) stands for several dynamic threads executing the same site, so
    # an unlocked write races with its own copy.  The generic conditions
    # below handle it — a self-pair survives only if the site is a write,
    # its instance is replicated with non-serial re-forks (MHP), and its
    # lockset is empty (a non-empty lockset intersects itself).
    for i, a in enumerate(sites):
        for b in sites[i:]:
            if a.op == "read" and b.op == "read":
                continue
            if not names_may_alias(a.var, b.var):
                continue
            if mhp.ordered(a, b):
                continue
            if a.lockset & b.lockset:
                continue
            category = "init-race" if (a.is_init or b.is_init) else "race"
            # Prefer the concrete name as the warning's variable.
            var = a.var if isinstance(a.var, str) else b.var
            key = (str(var), category)
            if key not in found:
                found[key] = (a, b, var)
    warnings: List[StaticWarning] = []
    for (var_key, category), (a, b, var) in sorted(found.items()):
        la, lb = summary.instance(a.instance).label, summary.instance(b.instance).label
        locks_a = ",".join(sorted(a.lockset)) or "∅"
        locks_b = ",".join(sorted(b.lockset)) or "∅"
        message = (
            f"{a.op} by {la} holding {{{locks_a}}} vs {b.op} by {lb} "
            f"holding {{{locks_b}}}: disjoint locksets"
        )
        if category == "init-race":
            message += (
                " (involves an initialization write: filtered by the "
                "ParaMount detector, visible to FastTrack)"
            )
        warnings.append(
            StaticWarning(
                category=category,
                var=var,
                message=message,
                threads=tuple(sorted({la, lb})),
                sites=(f"{a.func}:{a.line}", f"{b.func}:{b.line}"),
                rule="RR002" if category == "init-race" else "RR001",
                spans=(
                    SourceSpan(file=a.file, line=a.line, func=a.func),
                    SourceSpan(file=b.file, line=b.line, func=b.func),
                ),
                evidence={
                    "variable": str(var),
                    "sites": [
                        {
                            "op": a.op,
                            "thread": la,
                            "func": a.func,
                            "line": a.line,
                            "lockset": sorted(a.lockset),
                            "is_init": a.is_init,
                        },
                        {
                            "op": b.op,
                            "thread": lb,
                            "func": b.func,
                            "line": b.line,
                            "lockset": sorted(b.lockset),
                            "is_init": b.is_init,
                        },
                    ],
                },
                fix=(
                    f"guard both accesses to {var} with one common lock, or "
                    "order them with a fork/join edge"
                ),
            )
        )
    return warnings
