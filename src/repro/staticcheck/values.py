"""Abstract values for the static extractor.

The extractor never *runs* a thread body; it reasons about the expressions
appearing in ``yield`` statements.  Three kinds of value arise:

* fully known constants — resolved through a *guarded partial evaluation*
  of the expression against the statically known bindings (closure cells,
  module globals, unrolled loop variables).  Anything touching the runtime
  ``ctx`` (thread id, RNG, yielded values) is by construction unresolvable
  and degrades to :data:`UNKNOWN`;
* partially known strings — an f-string such as ``f"acct{src}"`` with a
  dynamic piece becomes a :class:`StrPattern` (``acct*``) that
  conservatively may-aliases every matching concrete name;
* :data:`UNKNOWN` — no information; treated as aliasing everything.

The guarded evaluator *will* call factory helpers (e.g. resolving
``Fork(_worker(i))`` to the closure returned by ``_worker``); the analysis
assumes such program-construction helpers are pure, which mirrors how the
workloads (and the paper's benchmark drivers) are written.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple, Union

__all__ = [
    "UNKNOWN",
    "Unknown",
    "StrPattern",
    "VarName",
    "names_may_alias",
    "try_eval",
    "eval_str",
]


class Unknown:
    """Singleton marker for a statically unresolvable value."""

    _instance = None

    def __new__(cls) -> "Unknown":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<?>"


UNKNOWN = Unknown()


@dataclass(frozen=True)
class StrPattern:
    """A partially known string: ``prefix`` + <dynamic> + ``suffix``.

    ``StrPattern()`` (empty prefix and suffix) is the full wildcard that
    may-aliases every name — the sound fallback for a fully dynamic
    variable or lock name.
    """

    prefix: str = ""
    suffix: str = ""

    def matches(self, name: str) -> bool:
        """Whether the concrete ``name`` could be an instance of this
        pattern."""
        return (
            len(name) >= len(self.prefix) + len(self.suffix)
            and name.startswith(self.prefix)
            and name.endswith(self.suffix)
        )

    def may_overlap(self, other: "StrPattern") -> bool:
        """Whether the two patterns could denote a common name.

        Decidable only on the prefixes/suffixes; answers ``True`` unless
        the fixed parts are provably incompatible.
        """
        p, q = self.prefix, other.prefix
        if not (p.startswith(q) or q.startswith(p)):
            return False
        s, t = self.suffix, other.suffix
        return s.endswith(t) or t.endswith(s)

    def __str__(self) -> str:
        return f"{self.prefix}*{self.suffix}"


#: A statically derived variable/lock name.
VarName = Union[str, StrPattern]


def names_may_alias(a: VarName, b: VarName) -> bool:
    """Conservative may-alias test between two derived names."""
    if isinstance(a, str) and isinstance(b, str):
        return a == b
    if isinstance(a, StrPattern) and isinstance(b, str):
        return a.matches(b)
    if isinstance(b, StrPattern) and isinstance(a, str):
        return b.matches(a)
    return a.may_overlap(b)  # type: ignore[union-attr]


# --------------------------------------------------------------------- #
# guarded partial evaluation

#: Builtins safe to use inside evaluated expressions (pure constructors
#: and combinators only — nothing that does I/O or mutates global state).
_SAFE_BUILTINS: Dict[str, Any] = {
    name: getattr(builtins, name)
    for name in (
        "abs",
        "bool",
        "dict",
        "enumerate",
        "float",
        "frozenset",
        "int",
        "len",
        "list",
        "max",
        "min",
        "range",
        "reversed",
        "set",
        "sorted",
        "str",
        "sum",
        "tuple",
        "zip",
    )
}


def try_eval(node: ast.expr, env: Mapping[str, Any]) -> Tuple[bool, Any]:
    """Try to evaluate ``node`` against the known bindings in ``env``.

    Returns ``(True, value)`` on success and ``(False, UNKNOWN)`` when any
    name is unresolvable or evaluation fails for any reason.  Entries of
    ``env`` that are themselves :data:`UNKNOWN` are treated as absent, so
    a reference to them fails cleanly with ``NameError``.
    """
    namespace = {k: v for k, v in env.items() if not isinstance(v, Unknown)}
    try:
        expr = ast.Expression(body=node)
        ast.fix_missing_locations(expr)
        code = compile(expr, "<staticcheck>", "eval")
        return True, eval(code, {"__builtins__": _SAFE_BUILTINS}, namespace)
    except Exception:
        return False, UNKNOWN


def eval_str(node: ast.expr, env: Mapping[str, Any]) -> VarName:
    """Resolve a string-valued expression to a name or a pattern.

    Fully evaluable expressions give the concrete string.  f-strings with
    dynamic pieces give a :class:`StrPattern` built from the leading and
    trailing constant parts.  Everything else degrades to the wildcard
    pattern.
    """
    ok, value = try_eval(node, env)
    if ok and isinstance(value, str):
        return value
    if isinstance(node, ast.JoinedStr):
        return _fstring_pattern(node, env)
    return StrPattern()


def _fstring_pattern(node: ast.JoinedStr, env: Mapping[str, Any]) -> VarName:
    """Collapse an f-string into prefix + ``*`` + suffix around the first
    and last unresolvable pieces."""
    parts = []
    for piece in node.values:
        if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
            parts.append(piece.value)
            continue
        ok, value = try_eval(piece.value if isinstance(piece, ast.FormattedValue) else piece, env)
        parts.append(str(value) if ok else None)
    if all(p is not None for p in parts):
        return "".join(parts)  # type: ignore[arg-type]
    first = next(i for i, p in enumerate(parts) if p is None)
    last = len(parts) - 1 - next(i for i, p in enumerate(reversed(parts)) if p is None)
    prefix = "".join(parts[:first])  # type: ignore[arg-type]
    suffix = "".join(parts[last + 1 :])  # type: ignore[arg-type]
    return StrPattern(prefix=prefix, suffix=suffix)
