"""Fault-tolerant enumeration runtime (`repro.resilience`).

Theorem 2 makes every interval an idempotent, independently re-runnable
unit of work, so a crashed, hung, or OOM-killed worker should never cost
more than re-running its interval.  This package turns that observation
into runtime machinery:

* :mod:`~repro.resilience.faults` — a seeded, deterministic fault-injection
  harness (worker crashes, hangs, slow tasks, poisoned intervals) wrapping
  any executor or the multiprocessing backend;
* :mod:`~repro.resilience.runner` — :class:`ResilientExecutor`: per-task
  bounded retry with exponential backoff
  (:class:`~repro.core.executors.RetryPolicy`), gather timeouts, and the
  graceful-degradation cascade down the executor ladder to serial;
* :mod:`~repro.resilience.checkpoint` — an interval checkpoint journal
  (JSON lines keyed by a poset digest) so a killed run resumes enumerating
  only its unfinished intervals, with sanitizer-style identity checks;
* :mod:`~repro.resilience.quarantine` — structured quarantine of malformed
  stream records for the online worker and trace reader.
"""

from repro.core.executors import RetryPolicy
from repro.resilience.checkpoint import CheckpointJournal, poset_digest
from repro.resilience.faults import (
    FAULT_CRASH,
    FAULT_HANG,
    FAULT_NONE,
    FAULT_POISON,
    FAULT_SLOW,
    FaultInjectingExecutor,
    FaultSpec,
    apply_fault,
)
from repro.resilience.quarantine import QuarantinedRecord, QuarantineReport
from repro.resilience.runner import ResilientExecutor, default_ladder

__all__ = [
    "RetryPolicy",
    "CheckpointJournal",
    "poset_digest",
    "FAULT_CRASH",
    "FAULT_HANG",
    "FAULT_NONE",
    "FAULT_POISON",
    "FAULT_SLOW",
    "FaultSpec",
    "FaultInjectingExecutor",
    "apply_fault",
    "QuarantinedRecord",
    "QuarantineReport",
    "ResilientExecutor",
    "default_ladder",
]
