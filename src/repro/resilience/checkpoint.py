"""Interval checkpoint journal: crash-survivable enumeration progress.

Theorem 2 partitions the lattice into per-event intervals enumerated
independently, so enumeration progress is exactly the set of finished
intervals — a run killed mid-way loses nothing but its in-flight tasks.
The journal is an append-only JSON-lines file:

* line 1 — a header binding the journal to a poset **digest** (SHA-256 of
  the canonical serialized poset), the subroutine name, and the event
  count;
* each further line — one completed interval's ``(event, lo, hi, states,
  work, peak_live)`` record, flushed as soon as the interval finishes.

On resume the driver recomputes the partition, replays the journal, and
re-enumerates only the unfinished intervals.  Three sanitizer-style checks
make resumption provably safe rather than hopeful: the digest must match
(same poset); the header's **schedule descriptor** must match (adaptive
scheduling may split an interval into sub-tasks, and records of one split
shape cannot safely seed a run with another); and every journaled record's
``(event, lo, hi)`` must equal one of the recomputed task triples (same
total order ``→p`` and same split) — given all three, Theorem-2
disjointness guarantees the resumed total is identical to an uninterrupted
run.  Records are therefore keyed by the full ``(event, lo, hi)`` triple,
so each sub-task of a split interval keeps its own checkpoint/retry
identity.  Journals written before the schedule field existed carry no
descriptor and are read as ``"unsplit"``.  A torn trailing line (the crash
happened mid-write) is detected and discarded.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

try:  # POSIX only; on other platforms the in-process lock still applies
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from repro.core.intervals import Interval
from repro.core.metrics import IntervalStats
from repro.errors import CheckpointError
from repro.poset.io import poset_to_dict
from repro.poset.poset import Poset
from repro.types import Cut, EventId

__all__ = ["CheckpointJournal", "TaskKey", "poset_digest"]

#: Checkpoint identity of one enumeration task: a split interval's
#: sub-tasks share the event but differ in bounds.
TaskKey = Tuple[EventId, Cut, Cut]

_JOURNAL_VERSION = 1


def poset_digest(poset: Poset) -> str:
    """SHA-256 digest of the canonical JSON serialization of a poset.

    Stable across processes and Python versions; two posets share a digest
    iff they serialize identically (same chains, clocks, and insertion
    order), which is what makes a journal safely resumable.
    """
    canonical = json.dumps(
        poset_to_dict(poset), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CheckpointJournal:
    """Append-only JSON-lines journal of completed intervals.

    Thread-safe: interval tasks running on a thread executor append
    concurrently through one internal lock, each record flushed before the
    call returns so a kill after the flush never loses that interval.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._lock = threading.Lock()
        #: Optional :class:`repro.obs.Observer` — the drivers wire theirs
        #: in so every flushed record appears as a ``checkpoint`` span.
        self.observer = None

    # ------------------------------------------------------------------ #
    # resume

    def load(
        self,
        digest: str,
        subroutine: str,
        intervals: Optional[Sequence[Interval]] = None,
        schedule: str = "unsplit",
    ) -> Dict[TaskKey, IntervalStats]:
        """Replay the journal; return completed stats keyed by task triple.

        ``intervals`` is the run's *task list* — the scheduled tasks, which
        equal the partition intervals when no splitting happened — and
        ``schedule`` its descriptor (``"unsplit"`` or
        ``"split(budget=…,cap=…)"``).  Creates the journal (writing its
        header) when the file is absent or empty.  Raises
        :class:`~repro.errors.CheckpointError` when the header's digest,
        subroutine, or schedule descriptor does not match, or — when
        ``intervals`` is given — when a record's ``(event, lo, hi)`` is not
        one of the recomputed task triples.
        """
        if not self.path.exists() or self.path.stat().st_size == 0:
            self._write_header(digest, subroutine, intervals, schedule)
            return {}
        lines = self.path.read_text().splitlines()
        header = self._parse_header(lines[0])
        if header["digest"] != digest:
            raise CheckpointError(
                f"checkpoint {self.path} was written for poset digest "
                f"{header['digest'][:12]}…, this run's poset is "
                f"{digest[:12]}… — refusing to resume across posets"
            )
        if header["subroutine"] != subroutine:
            raise CheckpointError(
                f"checkpoint {self.path} was written with subroutine "
                f"{header['subroutine']!r}, this run uses {subroutine!r} — "
                f"per-interval work/memory stats would not be comparable"
            )
        # Journals predating adaptive scheduling have no schedule field and
        # were necessarily written one-task-per-interval.
        journal_schedule = header.get("schedule", "unsplit")
        if journal_schedule != schedule:
            raise CheckpointError(
                f"checkpoint {self.path} was written under schedule "
                f"{journal_schedule!r}, this run plans {schedule!r} — split "
                f"sub-task records only resume under the identical split; "
                f"rerun with the same schedule/worker count or start a "
                f"fresh journal"
            )
        known = (
            {(iv.event, iv.lo, iv.hi) for iv in intervals}
            if intervals is not None
            else None
        )
        events = (
            {iv.event for iv in intervals} if intervals is not None else None
        )
        completed: Dict[TaskKey, IntervalStats] = {}
        torn_at: Optional[int] = None
        for lineno, line in enumerate(lines[1:], start=2):
            rec = self._parse_record(line)
            if rec is None:
                # Torn line from a mid-write crash.  A crash tears only the
                # *tail* (possibly several lines, when a multi-record buffer
                # was cut short), so torn lines may be discarded — but only
                # if nothing valid follows.  A valid record *after* a torn
                # line means writers interleaved mid-record (the corruption
                # flock prevents), and trusting either side would risk
                # double-counting an interval.
                if torn_at is None:
                    torn_at = lineno
                continue
            if torn_at is not None:
                raise CheckpointError(
                    f"checkpoint {self.path} has a valid record after a "
                    f"torn line {torn_at} — interleaved concurrent writes "
                    f"corrupted the journal; delete it and start fresh"
                )
            event = tuple(rec["event"])
            stats = IntervalStats(
                event=event,
                lo=tuple(rec["lo"]),
                hi=tuple(rec["hi"]),
                states=rec["states"],
                work=rec["work"],
                peak_live=rec["peak_live"],
                seconds=float(rec.get("seconds", 0.0)),
            )
            key = (event, stats.lo, stats.hi)
            if known is not None:
                if events is not None and event not in events:
                    raise CheckpointError(
                        f"checkpoint records interval of unknown event "
                        f"{event} — journal is not from this poset"
                    )
                if key not in known:
                    raise CheckpointError(
                        f"checkpoint bounds for event {event} are "
                        f"[{stats.lo}, {stats.hi}] but no recomputed task "
                        f"has those bounds — the journal used a different "
                        f"total order →p (or a different split)"
                    )
            completed[key] = stats
        return completed

    # ------------------------------------------------------------------ #
    # record

    def record(self, stats: IntervalStats) -> None:
        """Append one completed interval, flushed before returning."""
        line = json.dumps(
            {
                "kind": "interval",
                "event": list(stats.event),
                "lo": list(stats.lo),
                "hi": list(stats.hi),
                "states": stats.states,
                "work": stats.work,
                "peak_live": stats.peak_live,
                "seconds": stats.seconds,
            }
        )
        obs = self.observer
        observe = obs is not None and getattr(obs, "enabled", False)
        t0 = obs.clock() if observe else 0.0
        with self._lock:
            with self.path.open("a") as fh:
                # The thread lock serializes committers in this process; the
                # OS-level lock serializes against *other* processes — the
                # coordinator's acknowledgement threads and any in-process
                # fallback executor commit to the same journal, and an
                # interleaved write would tear two records at once.
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
                try:
                    fh.write(line + "\n")
                    fh.flush()
                finally:
                    if fcntl is not None:
                        fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        if observe:
            obs.record(
                "flush",
                "checkpoint",
                t0,
                obs.clock() - t0,
                attrs={"event": str(stats.event), "bytes": len(line) + 1},
            )
            obs.counter("checkpoint_records_total").inc()

    # ------------------------------------------------------------------ #
    # internals

    def _write_header(
        self,
        digest: str,
        subroutine: str,
        intervals: Optional[Sequence[Interval]],
        schedule: str = "unsplit",
    ) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "kind": "header",
            "version": _JOURNAL_VERSION,
            "digest": digest,
            "subroutine": subroutine,
            "num_intervals": len(intervals) if intervals is not None else None,
            "schedule": schedule,
        }
        with self._lock:
            self.path.write_text(json.dumps(header) + "\n")

    def _parse_header(self, line: str) -> dict:
        try:
            header = json.loads(line)
        except ValueError as exc:
            raise CheckpointError(
                f"checkpoint {self.path} has a malformed header: {exc}"
            ) from exc
        if not isinstance(header, dict) or header.get("kind") != "header":
            raise CheckpointError(
                f"checkpoint {self.path} does not start with a header record"
            )
        if header.get("version") != _JOURNAL_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has journal version "
                f"{header.get('version')!r}; this reader understands "
                f"version {_JOURNAL_VERSION}"
            )
        return header

    @staticmethod
    def _parse_record(line: str) -> Optional[dict]:
        try:
            rec = json.loads(line)
            if not isinstance(rec, dict) or rec.get("kind") != "interval":
                return None
            # touch every field so a structurally short record is torn too
            tuple(rec["event"]), tuple(rec["lo"]), tuple(rec["hi"])
            int(rec["states"]), int(rec["work"]), int(rec["peak_live"])
        except (ValueError, KeyError, TypeError):
            return None
        return rec
