"""Deterministic fault injection for the enumeration runtime.

The harness perturbs *infrastructure*, never *answers*: a fault makes a
task crash, hang, slow down, or fail permanently ("poison"), but an
interval that does complete always produces its true statistics.  Because
intervals are idempotent (Theorem 2), any retry/degradation strategy that
eventually re-runs the perturbed intervals must converge to the exact
fault-free totals — which is what the resilience test suite asserts,
per seed, on every Table-1 poset.

All randomness flows through :func:`repro.util.rng.derive_seed` keyed by
``(seed, task key, attempt)``: the same spec injects the same faults in
the same places on every run, across processes, regardless of thread
scheduling.

Two injection points cover the whole execution stack:

* :class:`FaultInjectingExecutor` wraps any in-process
  :class:`~repro.core.executors.Executor`.  Injected crashes abort the
  surrounding gather exactly like a real worker death, so a wrapping
  :class:`~repro.resilience.runner.ResilientExecutor` sees batch-level
  infrastructure failure; alternatively the resilient executor applies a
  spec *inside* its per-task guard for task-attributed faults.
* :func:`repro.core.mp.paramount_count_multiprocessing` accepts a
  ``fault_spec`` and injects in the worker processes themselves — a crash
  there is a literal ``os._exit``, breaking the real pool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.executors import Executor
from repro.errors import InjectedFaultError, ReproError
from repro.util.rng import DeterministicRng, derive_seed

__all__ = [
    "FAULT_NONE",
    "FAULT_CRASH",
    "FAULT_HANG",
    "FAULT_SLOW",
    "FAULT_POISON",
    "FaultSpec",
    "FaultInjectingExecutor",
    "apply_fault",
]

FAULT_NONE = "none"
FAULT_CRASH = "crash"
FAULT_HANG = "hang"
FAULT_SLOW = "slow"
FAULT_POISON = "poison"


@dataclass(frozen=True)
class FaultSpec:
    """A seeded, deterministic fault plan.

    ``crash``/``hang``/``slow`` are per-attempt probabilities (summing to
    at most 1); ``poison`` is a set of task keys that fail on *every*
    attempt, modeling malformed inputs that no retry can fix.
    ``max_faulty_attempts`` optionally makes attempts at or beyond that
    count fault-free, guaranteeing bounded convergence in tests.
    ``init_crash_rounds`` makes the multiprocessing pool initializer fail
    for the first N pool generations (exercising worker-initializer
    failure and pool rebuild).
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    slow: float = 0.0
    poison: frozenset = frozenset()
    hang_seconds: float = 0.75
    slow_seconds: float = 0.02
    max_faulty_attempts: Optional[int] = None
    init_crash_rounds: int = 0

    def __post_init__(self) -> None:
        for name in ("crash", "hang", "slow"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {p}")
        if self.crash + self.hang + self.slow > 1.0:
            raise ValueError("crash + hang + slow rates must not exceed 1")

    def decide(self, key: object, attempt: int) -> str:
        """The fault (if any) for attempt ``attempt`` (0-based) of task
        ``key``.  Deterministic in ``(seed, key, attempt)``."""
        if key in self.poison:
            return FAULT_POISON
        if (
            self.max_faulty_attempts is not None
            and attempt >= self.max_faulty_attempts
        ):
            return FAULT_NONE
        rng = DeterministicRng(derive_seed(self.seed, "fault", key, attempt))
        r = rng.random()
        if r < self.crash:
            return FAULT_CRASH
        r -= self.crash
        if r < self.hang:
            return FAULT_HANG
        r -= self.hang
        if r < self.slow:
            return FAULT_SLOW
        return FAULT_NONE

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse a CLI spec like
        ``"seed=1,crash=0.1,hang=0.05,slow=0.2,poison=3;7,hang_seconds=0.5"``.
        """
        kwargs: Dict[str, object] = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ReproError(
                    f"bad fault spec item {item!r}: expected key=value"
                )
            key, _, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if key in ("seed", "max_faulty_attempts", "init_crash_rounds"):
                kwargs[key] = int(value)
            elif key in ("crash", "hang", "slow", "hang_seconds", "slow_seconds"):
                kwargs[key] = float(value)
            elif key == "poison":
                kwargs[key] = frozenset(
                    int(v) for v in value.split(";") if v.strip()
                )
            else:
                raise ReproError(f"unknown fault spec key {key!r}")
        return cls(**kwargs)  # type: ignore[arg-type]


def apply_fault(kind: str, spec: FaultSpec, key: object, attempt: int) -> None:
    """Perform an injected fault before running the task's real body.

    ``crash``/``poison`` raise :class:`~repro.errors.InjectedFaultError`;
    ``hang`` sleeps for ``hang_seconds`` (long enough to trip a configured
    gather timeout, after which the task would complete late — its result
    is discarded by the aborted gather); ``slow`` sleeps briefly and lets
    the task proceed.
    """
    if kind == FAULT_SLOW:
        time.sleep(spec.slow_seconds)
    elif kind == FAULT_HANG:
        time.sleep(spec.hang_seconds)
    elif kind in (FAULT_CRASH, FAULT_POISON):
        raise InjectedFaultError(kind, key, attempt)


class FaultInjectingExecutor(Executor):
    """Wraps any executor, deterministically perturbing the tasks it runs.

    Each task's stable identity is ``task.fault_key`` when the attribute is
    present (the resilient executor stamps original indices on its
    wrappers so retried subsets keep their identity) and the batch position
    otherwise.  Per-key attempt counters persist across ``map_tasks``
    calls, so a retried task draws a *fresh* fault decision — retries can
    succeed.

    Injected crashes propagate out of the wrapped task, aborting the inner
    executor's gather exactly like a real worker death would.
    """

    name = "fault-injecting"

    def __init__(self, inner: Executor, spec: FaultSpec):
        super().__init__(num_workers=inner.num_workers)
        self.inner = inner
        self.spec = spec
        self._attempts: Dict[object, int] = {}
        #: Log of ``(key, attempt, kind)`` for every injected fault.
        self.injected: List[Tuple[object, int, str]] = []

    def map_tasks(self, tasks: Sequence) -> List:
        wrapped = []
        for position, task in enumerate(tasks):
            key = getattr(task, "fault_key", position)
            attempt = self._attempts.get(key, 0)
            self._attempts[key] = attempt + 1
            kind = self.spec.decide(key, attempt)
            if kind != FAULT_NONE:
                self.injected.append((key, attempt, kind))
            wrapped.append(self._wrap(task, kind, key, attempt))
        return self.inner.map_tasks(wrapped)

    def _wrap(self, task, kind: str, key: object, attempt: int):
        spec = self.spec

        def faulty():
            apply_fault(kind, spec, key, attempt)
            return task()

        return faulty
