"""Structured quarantine of malformed stream records.

Real-world traces are dirty: truncated files, out-of-order sequence
numbers, events violating the happened-before insertion invariant,
records from a newer writer.  In strict mode the readers raise
mid-stream, exactly as before; in lenient mode each offending record is
*quarantined* — skipped and logged here with its position, category, and
reason — so one bad op does not abort an hours-long ingestion.  The
report is the hand-off artifact: a monitoring pipeline can alert on it,
and tests assert on its contents.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.util.log import get_logger

__all__ = ["QuarantinedRecord", "QuarantineReport"]

logger = get_logger(__name__)


@dataclass(frozen=True)
class QuarantinedRecord:
    """One rejected record of an input stream."""

    #: Position in the stream (op index, or event ordinal for online feeds).
    index: int
    #: Short category: ``"malformed-op"``, ``"non-hb-insertion"``, ...
    kind: str
    #: Human-readable reason the record was rejected.
    reason: str
    #: Compact repr of the offending payload, for the report.
    payload: str = ""


@dataclass
class QuarantineReport:
    """Accumulates every quarantined record of one ingestion."""

    records: List[QuarantinedRecord] = field(default_factory=list)

    def add(
        self, index: int, kind: str, reason: str, payload: object = None
    ) -> QuarantinedRecord:
        """Quarantine one record; returns the stored entry."""
        rec = QuarantinedRecord(
            index=index,
            kind=kind,
            reason=reason,
            payload="" if payload is None else repr(payload)[:200],
        )
        self.records.append(rec)
        logger.warning(
            "quarantined record %d (%s): %s",
            index,
            kind,
            reason,
            extra={"record_index": index, "record_kind": kind},
        )
        return rec

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def by_kind(self) -> Dict[str, int]:
        """Count of quarantined records per category."""
        return dict(Counter(rec.kind for rec in self.records))

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        if not self.records:
            return "quarantine: empty (stream was clean)"
        kinds = ", ".join(
            f"{kind}×{count}" for kind, count in sorted(self.by_kind().items())
        )
        lines = [f"quarantine: {len(self.records)} record(s) rejected ({kinds})"]
        for rec in self.records[:20]:
            lines.append(f"  [{rec.index}] {rec.kind}: {rec.reason}")
        if len(self.records) > 20:
            lines.append(f"  ... and {len(self.records) - 20} more")
        return "\n".join(lines)
