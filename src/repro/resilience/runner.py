"""The resilient executor: bounded retry, timeouts, and a degradation ladder.

:class:`ResilientExecutor` runs interval tasks on a *ladder* of backends
(by default ``processes → threads → serial``, the graceful-degradation
cascade).  Failures are handled at two granularities:

* **task-level** — every task runs inside a guard that captures its
  exception; a failed task is retried with exponential backoff
  (:class:`~repro.core.executors.RetryPolicy`) and, once its attempts are
  exhausted, recorded as a :class:`~repro.core.metrics.TaskFailure` while
  the rest of the batch completes.  The returned list holds ``None`` at
  permanently-failed positions.
* **batch-level** — infrastructure failures abort a whole gather: a hung
  task (:class:`~repro.errors.ExecutorTimeoutError`), a dead process pool
  (:class:`~repro.errors.BrokenPoolError`), or an injected crash from a
  :class:`~repro.resilience.faults.FaultInjectingExecutor` rung.  The
  pending tasks are simply resubmitted (idempotent intervals make the
  wasted partial work harmless); repeated breakage steps one rung down
  the ladder, recorded as a
  :class:`~repro.core.metrics.DegradationEvent`.  An unpicklable task is
  non-retryable and degrades immediately.

The ParaMount driver drains :meth:`ResilientExecutor.drain_log` into
:class:`~repro.core.metrics.ParaMountResult`, so failed-task provenance,
retry counts, and every degradation step surface in the run's result.
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.executors import (
    Executor,
    RetryPolicy,
    SerialExecutor,
    ThreadExecutor,
    WorkStealingThreadExecutor,
)
from repro.core.metrics import DegradationEvent, TaskFailure
from repro.errors import (
    ExecutorTimeoutError,
    TaskNotPicklableError,
)
from repro.resilience.faults import FAULT_NONE, FaultSpec, apply_fault
from repro.util.log import get_logger

__all__ = ["ResilientExecutor", "default_ladder"]

logger = get_logger(__name__)

_OK = "ok"
_ERR = "err"


def default_ladder(
    workers: int = 0,
    task_timeout: Optional[float] = None,
    steal: bool = False,
) -> List[Executor]:
    """The standard degradation cascade: ``threads → serial``.

    Interval tasks in the offline driver close over the poset and visitor,
    so the in-process rungs are the useful ones; true process parallelism
    goes through :func:`repro.core.mp.paramount_count_multiprocessing`,
    which owns its pool and implements the same retry/degrade policy.

    With ``steal=True`` the thread rung is a
    :class:`~repro.core.executors.WorkStealingThreadExecutor`, so the
    adaptive schedule's split tasks are balanced by deque stealing rather
    than the pool's arrival order.
    """
    thread_cls = WorkStealingThreadExecutor if steal else ThreadExecutor
    return [
        thread_cls(workers or os.cpu_count() or 1, task_timeout=task_timeout),
        SerialExecutor(),
    ]


class ResilientExecutor(Executor):
    """Order-preserving executor that retries, times out, and degrades.

    Parameters
    ----------
    ladder:
        Backends to try, fastest first (default :func:`default_ladder`).
    retry:
        Bounded-retry schedule; ``max_attempts`` applies per task, and the
        same count bounds consecutive batch-level breakages tolerated on
        one rung before stepping down.
    fault_spec:
        Optional fault plan applied *inside* the per-task guard, giving
        deterministically attributed crash/hang/slow/poison faults (the
        test harness's primary injection point).
    """

    name = "resilient"

    def __init__(
        self,
        ladder: Optional[Sequence[Executor]] = None,
        retry: Optional[RetryPolicy] = None,
        fault_spec: Optional[FaultSpec] = None,
    ):
        rungs = list(ladder) if ladder is not None else default_ladder()
        if not rungs:
            raise ValueError("ladder must contain at least one executor")
        super().__init__(num_workers=max(e.num_workers for e in rungs))
        self.ladder = rungs
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_spec = fault_spec
        self.failures: List[TaskFailure] = []
        self.degradations: List[DegradationEvent] = []
        self.retries: int = 0

    def drain_log(
        self,
    ) -> Tuple[List[TaskFailure], List[DegradationEvent], int]:
        """Return and clear the accumulated (failures, degradations, retries)."""
        log = (self.failures, self.degradations, self.retries)
        self.failures, self.degradations, self.retries = [], [], 0
        return log

    # ------------------------------------------------------------------ #

    def map_tasks(self, tasks: Sequence[Callable[[], object]]) -> List[object]:
        # Forward the driver-wired observer down the ladder so stealing
        # rungs emit steal markers into the same trace.
        obs = self.observer
        if obs is not None and getattr(obs, "enabled", False):
            for rung_exec in self.ladder:
                if getattr(rung_exec, "observer", None) is None:
                    rung_exec.observer = obs
        n = len(tasks)
        results: List[object] = [None] * n
        fail_count = [0] * n  # task-attributed failures (charges the retry budget)
        execs = [0] * n  # executions started (the fault plan's attempt index)
        pending = list(range(n))
        rung = 0
        rung_breaks = 0  # batch-level breakages on the current rung

        while pending:
            executor = self.ladder[rung]
            batch = []
            for i in pending:
                batch.append(self._guard(tasks[i], i, execs[i]))
                execs[i] += 1
            try:
                outs = executor.map_tasks(batch)
            except TaskNotPicklableError as exc:
                # Retrying cannot help; degrade immediately (or give up on
                # the last rung).
                if rung + 1 < len(self.ladder):
                    self._degrade(rung, str(exc))
                    rung += 1
                    rung_breaks = 0
                    continue
                self._fail_all(pending, fail_count, str(exc), executor.name)
                break
            except Exception as exc:  # timeout, broken pool, injected crash
                # The whole gather was lost; everything pending is simply
                # resubmitted — idempotent intervals make the wasted
                # partial work harmless.  Only a timeout names a culprit,
                # and only the culprit is charged an attempt.
                if isinstance(exc, ExecutorTimeoutError):
                    offender = pending[exc.task_index]
                    fail_count[offender] += 1
                    if fail_count[offender] >= self.retry.max_attempts:
                        self.failures.append(
                            TaskFailure(
                                task_index=offender,
                                attempts=fail_count[offender],
                                error=str(exc),
                                executor=executor.name,
                            )
                        )
                        pending = [i for i in pending if i != offender]
                rung_breaks += 1
                if rung_breaks >= self.retry.max_attempts:
                    if rung + 1 < len(self.ladder):
                        self._degrade(rung, str(exc))
                        rung += 1
                        rung_breaks = 0
                    else:
                        self._fail_all(
                            pending,
                            fail_count,
                            f"batch aborted repeatedly on the last rung: {exc}",
                            executor.name,
                        )
                        break
                if pending:
                    self.retries += len(pending)
                    self._observe_retries(len(pending), str(exc))
                    time.sleep(self.retry.delay(min(rung_breaks + 1, 8)))
                continue

            still: List[int] = []
            for i, out in zip(pending, outs):
                status, payload = out
                if status == _OK:
                    results[i] = payload
                    continue
                fail_count[i] += 1
                if fail_count[i] >= self.retry.max_attempts:
                    self.failures.append(
                        TaskFailure(
                            task_index=i,
                            attempts=fail_count[i],
                            error=payload,
                            executor=executor.name,
                        )
                    )
                else:
                    still.append(i)
            if still:
                self.retries += len(still)
                self._observe_retries(len(still), "task error")
                time.sleep(
                    self.retry.delay(min(max(fail_count[i] for i in still), 8))
                )
            pending = still

        return results

    # ------------------------------------------------------------------ #

    def _guard(self, task, index: int, attempt: int):
        """Wrap a task to capture its exception and inject guarded faults."""
        spec = self.fault_spec

        def guarded():
            try:
                if spec is not None:
                    kind = spec.decide(index, attempt)
                    if kind != FAULT_NONE:
                        apply_fault(kind, spec, index, attempt)
                return (_OK, task())
            except Exception as exc:
                return (_ERR, f"{type(exc).__name__}: {exc}")

        # Stable identity for a FaultInjectingExecutor rung: retried
        # subsets keep their original task index.
        guarded.fault_key = index  # type: ignore[attr-defined]
        # Scheduling weight survives the wrapping, so a work-stealing rung
        # still deals and steals by interval size.
        guarded.weight = getattr(task, "weight", 1)  # type: ignore[attr-defined]
        return guarded

    def _observe_retries(self, count: int, reason: str) -> None:
        obs = self.observer
        if obs is not None and getattr(obs, "enabled", False):
            obs.counter("retry_attempts_total").inc(count)
            obs.instant("retry", "resilience", tasks=count, reason=reason)

    def _degrade(self, rung: int, reason: str) -> None:
        from_name = self.ladder[rung].name
        to_name = self.ladder[rung + 1].name
        logger.warning(
            "degrading %s -> %s: %s",
            from_name,
            to_name,
            reason,
            extra={
                "degrade_kind": "executor",
                "degrade_from": from_name,
                "degrade_to": to_name,
            },
        )
        obs = self.observer
        if obs is not None and getattr(obs, "enabled", False):
            obs.instant(
                "degrade_executor",
                "resilience",
                to=to_name,
                reason=reason[:120],
            )
        self.degradations.append(
            DegradationEvent(
                kind="executor",
                from_name=from_name,
                to_name=to_name,
                reason=reason,
            )
        )

    def _fail_all(
        self,
        pending: List[int],
        fail_count: List[int],
        reason: str,
        executor_name: str,
    ) -> None:
        for i in pending:
            self.failures.append(
                TaskFailure(
                    task_index=i,
                    attempts=fail_count[i],
                    error=reason,
                    executor=executor_name,
                )
            )
