"""The RV-runtime baseline detector (paper [22], jPredictor's successor).

A behavioural model of the tool the paper compares against (Tables 2–3),
built from its documented properties:

* **offline, 2-pass** (Table 3): the first pass logs raw access events with
  clocks — *no* event-collection merging, so its poset is far larger than
  ParaMount's; the second pass pre-processes the log into the poset index.
* **BFS enumeration** (Cooper–Marzullo) over the whole lattice with a
  bounded heap — the exponential intermediate-state storage that makes it
  run out of memory on large posets (raytracer in Table 2; half of
  Table 1's posets for the plain BFS column).
* **weaker causality for reporting**: jPredictor-lineage tools use *sliced
  causality*, a deliberately relaxed order that predicts more schedules and
  therefore reports races — typically benign initialization races — that
  full happened-before tools rule out (the paper's §5.2 discussion of the
  ``set`` benchmarks and the ``arraylist1`` false alarm).  We model this
  with a second, weak clock per event (process order + fork/join only):
  initialization writes race under the weak order even when lock edges
  order them under full HB.
* **monitor wait/notify unsupported**: the paper reports RV runtime "throws
  exceptions on some benchmarks"; the concrete trigger we model is monitor
  condition-waiting — exactly what the affected benchmarks (arraylist, tsp,
  hedc) exercise.  Detection runs on the trace prefix up to the first
  wait/notify, matching the paper's footnote that some races were
  "acquired before the exception is thrown".
"""

from __future__ import annotations

from collections import defaultdict
from typing import List, Optional

from repro.detector.hb import HBFrontEnd
from repro.detector.report import (
    STATUS_EXCEPTION,
    STATUS_OK,
    STATUS_OOM,
    DetectionReport,
)
from repro.enumeration.bfs import BFSEnumerator
from repro.errors import OutOfMemoryError
from repro.poset.event import Event
from repro.poset.poset import Poset
from repro.predicates.data_race import DataRacePredicate
from repro.runtime.trace import Trace, TraceOp
from repro.util.timing import Stopwatch

__all__ = ["RVRuntimeDetector", "WeakOrderRacePredicate"]

#: Default cap on live intermediate global states (the "2 GB heap" stand-in).
DEFAULT_MEMORY_BUDGET = 6_000


def _aux_concurrent(a: Event, b: Event) -> bool:
    """Concurrency under the clock carried in the ``weak_vc`` slot.

    Inside the RV detector, poset events are stamped with the *sliced*
    clock in ``vc`` (the enumeration walks the sliced lattice) while the
    *full* happened-before clock rides in ``weak_vc`` — so this helper
    tests full-HB concurrency for RV's poset events.
    """
    if a.tid == b.tid or a.weak_vc is None or b.weak_vc is None:
        return False
    return (
        a.weak_vc[a.tid] > b.weak_vc[a.tid]
        and b.weak_vc[b.tid] > a.weak_vc[b.tid]
    )


class WeakOrderRacePredicate(DataRacePredicate):
    """RV's race predicate over the sliced lattice.

    A conflicting frontier pair is reported when it is concurrent under
    full happened-before (a true HB race — carried in the ``weak_vc``
    slot of RV's re-stamped events), or when either access is an
    initialization write and the pair is concurrent under the sliced order
    (``vc``) — the benign extras the paper attributes to RV.  No init
    filtering is applied.
    """

    name = "data-race(weak-order)"

    def __init__(self, benign_vars: frozenset, report: DetectionReport):
        super().__init__(filter_init=False, benign_vars=benign_vars, report=report)

    def _check_pair(self, a: Event, b: Event) -> bool:
        key = (a.eid, b.eid) if a.eid <= b.eid else (b.eid, a.eid)
        if key in self._checked_pairs:
            return False
        self._checked_pairs.add(key)
        from repro.predicates.data_race import events_are_concurrent
        from repro.detector.report import RaceRecord

        sliced = events_are_concurrent(a, b)  # structural (sliced) clocks
        full = _aux_concurrent(a, b)  # true happened-before clocks
        if not full and not sliced:
            return False
        found = False
        for acc_a in a.accesses:
            for acc_b in b.accesses:
                if not acc_a.conflicts_with(acc_b):
                    continue
                racy = full or (sliced and (acc_a.is_init or acc_b.is_init))
                if not racy:
                    continue
                self.report.record(
                    RaceRecord(
                        var=acc_a.var,
                        first=(a.tid, acc_a.op),
                        second=(b.tid, acc_b.op),
                        benign=acc_a.var in self.benign_vars
                        or acc_a.is_init
                        or acc_b.is_init,
                    )
                )
                found = True
        return found


class RVRuntimeDetector:
    """Offline BFS-based general predicate detector (the RV baseline)."""

    name = "RV runtime"

    def __init__(self, memory_budget: int = DEFAULT_MEMORY_BUDGET):
        self.memory_budget = memory_budget

    def run(
        self, trace: Trace, benign_vars: frozenset = frozenset()
    ) -> DetectionReport:
        """Run both offline passes plus BFS detection on one trace."""
        report = DetectionReport(detector=self.name, benchmark=trace.program_name)
        ops, hit_unsupported = self._supported_prefix(trace)
        with Stopwatch() as sw:
            try:
                self._detect(trace.num_threads, ops, benign_vars, report)
                report.status = STATUS_EXCEPTION if hit_unsupported else STATUS_OK
                if hit_unsupported:
                    report.error = (
                        "monitor wait/notify is unsupported by the RV baseline; "
                        "detection ran on the trace prefix only"
                    )
            except OutOfMemoryError as exc:
                report.status = STATUS_OOM
                report.error = str(exc)
        report.elapsed = sw.elapsed
        return report

    # ------------------------------------------------------------------ #

    @staticmethod
    def _supported_prefix(trace: Trace):
        """The trace prefix before the first wait/notify operation."""
        for i, op in enumerate(trace.ops):
            if op.kind in ("wait", "notify"):
                return trace.ops[:i], True
        return trace.ops, False

    def _detect(
        self,
        num_threads: int,
        ops: List[TraceOp],
        benign_vars: frozenset,
        report: DetectionReport,
    ) -> None:
        # Pass 1: log raw access events with full and weak clocks.
        events: List[Event] = []
        front_end = HBFrontEnd(
            num_threads,
            events.append,
            merge_collections=False,
            track_weak_clocks=True,
        )
        for op in ops:
            front_end.process(op)
        front_end.finish()
        # Pass 2: pre-process — group per thread, build the poset index.
        poset = self._build_poset(num_threads, events)
        report.poset_events = poset.num_events
        # Detection: BFS over the entire lattice, predicate on every state.
        predicate = WeakOrderRacePredicate(benign_vars=benign_vars, report=report)
        bfs = BFSEnumerator(poset, memory_budget=self.memory_budget)

        def visit(cut) -> None:
            predicate.check(cut, poset.frontier_events(cut), new_event=None)

        result = bfs.enumerate(visit)
        report.states_enumerated = result.states

    @staticmethod
    def _build_poset(num_threads: int, events: List[Event]) -> Poset:
        """Build the *sliced* poset RV enumerates.

        The structural clock (``vc``) is the sliced/weak clock, so the BFS
        walks the sliced lattice — the relaxed order under which the extra
        schedules RV predicts exist.  The full happened-before clock is
        preserved in the ``weak_vc`` slot for the predicate's true-race
        test.  (The sliced lattice is a superset of the HB lattice, which
        also compounds the BFS memory blow-up this baseline suffers from.)
        """
        chains = defaultdict(list)
        for e in events:
            chains[e.tid].append(
                Event(
                    tid=e.tid,
                    idx=e.idx,
                    vc=e.weak_vc,
                    kind=e.kind,
                    obj=e.obj,
                    accesses=e.accesses,
                    weak_vc=e.vc,
                )
            )
        return Poset(
            [chains.get(t, []) for t in range(num_threads)],
            insertion=[e.eid for e in events],
        )
