"""Happened-before front-end: traces → detector posets.

Replays a :class:`~repro.runtime.trace.TraceOp` stream applying the paper's
HB rules (§4.1): process order, lock atomicity (including monitors and
wait/notify), fork/join, and transitivity (implicit in the clock algebra).
Synchronization operations only *merge* clocks; an event is emitted — and
the owning thread's clock component ticked — only for captured variable
accesses, because the optimized detector stores only predicate-relevant
events (§4.4).

Two capture modes:

* ``merge_collections=True`` (ParaMount's front-end): consecutive accesses
  of a thread merge into one *event collection* sharing a single clock; a
  collection closes at the thread's next synchronization operation (or
  thread end) and keeps, per variable, the first write — or the first read
  when no write occurs (§4.4, Figure 9).  Closed collections are emitted in
  a valid insertion order (a collection precedes everything that causally
  depends on it, because clocks only escape a thread through sync ops,
  which close the collection first).
* ``merge_collections=False`` (the RV baseline's front-end): every access
  is its own event — the raw poset whose lattice the BFS must then walk.

The emitted :class:`~repro.poset.event.Event` objects carry their accesses
and are ready for insertion into an online ParaMount or an offline poset.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import DetectorError
from repro.poset.event import Access, Event
from repro.runtime.trace import Trace, TraceOp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.poset.poset import Poset

__all__ = ["HBFrontEnd", "events_from_trace", "poset_from_trace"]

EmitFn = Callable[[Event], None]


class _OpenCollection:
    """A collection being accumulated for one thread (§4.4)."""

    __slots__ = ("vc", "weak_vc", "accesses")

    def __init__(self, vc: tuple, weak_vc: Optional[tuple] = None):
        self.vc = vc
        self.weak_vc = weak_vc
        #: (var, is_init) -> Access kept under the first-write-else-first-
        #: read rule.  Initialization writes are bucketed separately from
        #: ordinary accesses: an init write may not subsume a later plain
        #: read of the same variable, because the detector's init filter
        #: (§5.2) exempts the former from racing but not the latter.
        self.accesses: Dict[tuple, Access] = {}

    def add(self, access: Access) -> None:
        key = (access.var, access.is_init)
        held = self.accesses.get(key)
        if held is None or (held.op == "read" and access.op == "write"):
            self.accesses[key] = access


class HBFrontEnd:
    """Streaming converter from trace operations to poset events."""

    def __init__(
        self,
        num_threads: int,
        emit: EmitFn,
        merge_collections: bool = True,
        skip_init_accesses: bool = False,
        track_weak_clocks: bool = False,
        sanitizer=None,
        pruner=None,
    ):
        self.n = num_threads
        self.emit = emit
        #: Optional clock sanitizer (an object with ``observe_event(event)``,
        #: e.g. :class:`repro.staticcheck.sanitize.ClockSanitizer`) fed every
        #: emitted event before the downstream consumer sees it.
        self.sanitizer = sanitizer
        #: Optional static pruner (an object with ``should_skip(var)``, e.g.
        #: :class:`repro.staticcheck.prune.StaticPruner`): accesses to a
        #: variable it rules statically race-free are dropped before any
        #: clock tick or collection bookkeeping.  Sync ops are never pruned,
        #: so the surviving events' clocks — and hence every detection —
        #: are unchanged.
        self.pruner = pruner
        #: Accesses dropped by the pruner, total and per variable.
        self.pruned_accesses = 0
        self.pruned_vars: Dict[str, int] = {}
        self.merge_collections = merge_collections
        #: Drop initialization writes entirely (not used by the shipped
        #: detectors — ParaMount keeps them but filters at predicate time).
        self.skip_init_accesses = skip_init_accesses
        #: Also stamp events with a weak clock (process order + fork/join
        #: only) — the RV baseline's sliced-causality model.
        self.track_weak_clocks = track_weak_clocks
        self._thread_vc: List[List[int]] = [[0] * num_threads for _ in range(num_threads)]
        self._weak_vc: List[List[int]] = [[0] * num_threads for _ in range(num_threads)]
        self._lock_vc: Dict[str, List[int]] = {}
        self._open: List[Optional[_OpenCollection]] = [None] * num_threads
        self._emitted = 0

    # ------------------------------------------------------------------ #

    @property
    def events_emitted(self) -> int:
        """Number of poset events emitted so far."""
        return self._emitted

    def process(self, op: TraceOp) -> None:
        """Consume one trace operation in observed order."""
        tid = op.tid
        if op.is_access:
            if self.skip_init_accesses and op.is_init:
                return
            if self.pruner is not None and self.pruner.should_skip(op.obj):
                self.pruned_accesses += 1
                self.pruned_vars[op.obj] = self.pruned_vars.get(op.obj, 0) + 1
                return
            access = Access(op=op.kind, var=op.obj, is_init=op.is_init)
            if self.merge_collections:
                open_c = self._open[tid]
                if open_c is None:
                    vc, weak = self._tick(tid)
                    open_c = self._open[tid] = _OpenCollection(vc, weak)
                open_c.add(access)
            else:
                vc, weak = self._tick(tid)
                self._emit_event(
                    tid, vc, (access,), kind=op.kind, obj=op.obj, weak_vc=weak
                )
            return

        # Synchronization / lifecycle: close the thread's collection first,
        # then merge clocks per the HB rules.
        self._flush_thread(tid)
        kind = op.kind
        if kind == "acquire" or kind == "wait":
            self._merge_into_thread(tid, self._lock(op.obj))
        elif kind == "release" or kind == "notify":
            self._merge_into_lock(op.obj, tid)
        elif kind == "fork":
            child = op.target
            self._flush_thread(child)  # child has no events yet; defensive
            cv = self._thread_vc[child]
            for k, x in enumerate(self._thread_vc[tid]):
                if x > cv[k]:
                    cv[k] = x
            wv = self._weak_vc[child]
            for k, x in enumerate(self._weak_vc[tid]):
                if x > wv[k]:
                    wv[k] = x
        elif kind == "join":
            self._merge_into_thread(tid, self._thread_vc[op.target])
            wv = self._weak_vc[tid]
            for k, x in enumerate(self._weak_vc[op.target]):
                if x > wv[k]:
                    wv[k] = x
        elif kind in ("thread_start", "thread_end"):
            pass
        else:
            raise DetectorError(f"unknown trace op kind {op.kind!r}")

    def finish(self) -> None:
        """Flush all open collections at end of trace."""
        for tid in range(self.n):
            self._flush_thread(tid)

    # ------------------------------------------------------------------ #

    def _lock(self, name: str) -> List[int]:
        vc = self._lock_vc.get(name)
        if vc is None:
            vc = self._lock_vc[name] = [0] * self.n
        return vc

    def _tick(self, tid: int) -> tuple:
        vc = self._thread_vc[tid]
        vc[tid] += 1
        weak = None
        if self.track_weak_clocks:
            wv = self._weak_vc[tid]
            wv[tid] += 1
            weak = tuple(wv)
        return tuple(vc), weak

    def _merge_into_thread(self, tid: int, other: List[int]) -> None:
        vc = self._thread_vc[tid]
        for k, x in enumerate(other):
            if x > vc[k]:
                vc[k] = x

    def _merge_into_lock(self, name: str, tid: int) -> None:
        lv = self._lock(name)
        for k, x in enumerate(self._thread_vc[tid]):
            if x > lv[k]:
                lv[k] = x

    def _flush_thread(self, tid: int) -> None:
        open_c = self._open[tid]
        if open_c is None:
            return
        self._open[tid] = None
        accesses = tuple(open_c.accesses.values())
        self._emit_event(
            tid, open_c.vc, accesses, kind="collection", obj=None,
            weak_vc=open_c.weak_vc,
        )

    def _emit_event(
        self, tid: int, vc: tuple, accesses, kind: str, obj, weak_vc=None
    ) -> None:
        event = Event(
            tid=tid,
            idx=vc[tid],
            vc=vc,
            kind=kind,
            obj=obj,
            accesses=accesses,
            weak_vc=weak_vc,
        )
        self._emitted += 1
        if self.sanitizer is not None:
            self.sanitizer.observe_event(event)
        self.emit(event)


def events_from_trace(trace: Trace, merge_collections: bool = True) -> List[Event]:
    """Convert a whole trace into detector events (offline convenience)."""
    out: List[Event] = []
    fe = HBFrontEnd(trace.num_threads, out.append, merge_collections=merge_collections)
    for op in trace:
        fe.process(op)
    fe.finish()
    return out


def poset_from_trace(trace: Trace, merge_collections: bool = True) -> "Poset":
    """Build the detector poset of one observed trace.

    ``merge_collections=True`` gives the event-collection poset ParaMount
    enumerates (§4.4) — also what the detection planner's fast paths run
    on; ``False`` gives the raw one-event-per-access poset of the RV
    baseline and the Table 1 captures.  The emission order is recorded as
    the poset's insertion order (a linear extension of happened-before by
    construction).
    """
    from repro.poset.poset import Poset

    events = events_from_trace(trace, merge_collections=merge_collections)
    chains: List[List[Event]] = [[] for _ in range(trace.num_threads)]
    for e in events:
        chains[e.tid].append(e)
    return Poset(chains, insertion=[e.eid for e in events])
