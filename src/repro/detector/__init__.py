"""Predicate detectors (paper §4–§5, Tables 2–3).

Three detectors over the same observed traces:

* :class:`~repro.detector.paramount_detector.ParaMountDetector` — the
  paper's contribution: 1-pass online poset construction with event
  collections (§4.4), online-and-parallel enumeration via ParaMount
  (Algorithm 4), general predicate evaluation per global state
  (Algorithms 5–6), initialization writes filtered (§5.2);
* :class:`~repro.detector.rv_runtime.RVRuntimeDetector` — the RV-runtime
  baseline: 2-pass offline construction, no event merging, Cooper–Marzullo
  BFS enumeration with a hard memory budget, no init filtering (hence
  benign extra reports, o.o.m. on large posets, and "exception" on monitor
  wait/notify, matching Table 2's qualitative rows);
* :class:`~repro.detector.fasttrack.FastTrackDetector` — the epoch-based
  online race detector of Flanagan & Freund, reimplemented from the 2009
  paper's rules (races only; no enumeration).

:mod:`~repro.detector.planner` adds the certificate-driven
:class:`~repro.detector.planner.DetectionPlanner` that routes provably
structured predicates (conjunctive / linear / stable) around the
enumeration entirely; ``ParaMountDetector(plan="auto")`` consults it.
"""

from repro.detector.fasttrack import FastTrackDetector
from repro.detector.hb import HBFrontEnd, poset_from_trace
from repro.detector.paramount_detector import ParaMountDetector
from repro.detector.planner import (
    DetectionPlan,
    DetectionPlanner,
    PlannedDetection,
)
from repro.detector.report import DetectionReport, RaceRecord
from repro.detector.rv_runtime import RVRuntimeDetector

__all__ = [
    "HBFrontEnd",
    "poset_from_trace",
    "ParaMountDetector",
    "RVRuntimeDetector",
    "FastTrackDetector",
    "DetectionReport",
    "RaceRecord",
    "DetectionPlan",
    "DetectionPlanner",
    "PlannedDetection",
]
