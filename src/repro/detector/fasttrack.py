"""FastTrack — epoch-based dynamic race detection (Flanagan & Freund 2009).

Reimplemented from the published algorithm: per-thread vector clocks
``C_t``, per-lock clocks ``L_m``, and per-variable *epochs* — a write epoch
``W_x`` and an adaptive read state ``R_x`` that is an epoch while reads are
totally ordered and inflates to a full vector clock when reads become
concurrent (the READ SHARE transition).  The seven access rules below are
the paper's, including the O(1) fast paths that give the tool its name:

* READ SAME EPOCH, READ EXCLUSIVE, READ SHARE, READ SHARED;
* WRITE SAME EPOCH, WRITE EXCLUSIVE, WRITE SHARED (which discards the
  shared read set after checking it).

FastTrack analyzes only the observed order (no enumeration of global
states — Table 3) and reports at most one race per variable.  It treats
initialization writes like any other write, which is exactly why it
reports the benign init race in ``set (correct)`` that the ParaMount
detector filters out (paper §5.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.detector.report import DetectionReport, RaceRecord
from repro.runtime.trace import Trace
from repro.util.timing import Stopwatch

__all__ = ["FastTrackDetector"]

#: An epoch ``c@t`` is stored as ``(clock, tid)``.
Epoch = Tuple[int, int]


class _VarState:
    """Per-variable FastTrack state."""

    __slots__ = ("write_epoch", "read_epoch", "read_vc")

    def __init__(self) -> None:
        self.write_epoch: Optional[Epoch] = None
        self.read_epoch: Optional[Epoch] = None
        #: Non-None iff the variable is in the shared-read regime.
        self.read_vc: Optional[List[int]] = None


class FastTrackDetector:
    """Online race detection over a trace (one pass, no enumeration)."""

    name = "FastTrack"

    def __init__(self, num_threads: int):
        self.n = num_threads
        self._C: List[List[int]] = [[0] * num_threads for _ in range(num_threads)]
        for t in range(num_threads):
            self._C[t][t] = 1  # threads start at epoch 1@t, per the paper
        self._L: Dict[str, List[int]] = {}
        self._vars: Dict[str, _VarState] = {}

    # ------------------------------------------------------------------ #
    # public API

    def run(self, trace: Trace, benign_vars: frozenset = frozenset()) -> DetectionReport:
        """Process a whole trace; return the detection report."""
        report = DetectionReport(detector=self.name, benchmark=trace.program_name)
        with Stopwatch() as sw:
            for op in trace:
                kind = op.kind
                if kind == "read":
                    self._read(op.tid, op.obj, op.is_init, benign_vars, report)
                elif kind == "write":
                    self._write(op.tid, op.obj, op.is_init, benign_vars, report)
                elif kind == "acquire" or kind == "wait":
                    self._acquire(op.tid, op.obj)
                elif kind == "release":
                    self._release(op.tid, op.obj)
                elif kind == "fork":
                    self._fork(op.tid, op.target)
                elif kind == "join":
                    self._join(op.tid, op.target)
                # notify / thread_start / thread_end: no clock action (the
                # wakeup ordering flows through the monitor's release/wait).
        report.elapsed = sw.elapsed
        return report

    # ------------------------------------------------------------------ #
    # clock rules

    def _lock(self, name: str) -> List[int]:
        vc = self._L.get(name)
        if vc is None:
            vc = self._L[name] = [0] * self.n
        return vc

    def _acquire(self, t: int, m: str) -> None:
        ct = self._C[t]
        for k, x in enumerate(self._lock(m)):
            if x > ct[k]:
                ct[k] = x

    def _release(self, t: int, m: str) -> None:
        lm = self._lock(m)
        lm[:] = self._C[t]
        self._C[t][t] += 1  # advance the releaser's epoch

    def _fork(self, t: int, u: int) -> None:
        cu = self._C[u]
        for k, x in enumerate(self._C[t]):
            if x > cu[k]:
                cu[k] = x
        self._C[t][t] += 1

    def _join(self, t: int, u: int) -> None:
        ct = self._C[t]
        for k, x in enumerate(self._C[u]):
            if x > ct[k]:
                ct[k] = x
        self._C[u][u] += 1

    # ------------------------------------------------------------------ #
    # access rules

    def _state(self, var: str) -> _VarState:
        st = self._vars.get(var)
        if st is None:
            st = self._vars[var] = _VarState()
        return st

    def _read(
        self, t: int, var: str, is_init: bool, benign: frozenset, report: DetectionReport
    ) -> None:
        st = self._state(var)
        ct = self._C[t]
        epoch = (ct[t], t)
        if st.read_epoch == epoch:
            return  # READ SAME EPOCH
        if st.read_vc is not None and st.read_vc[t] == ct[t]:
            return  # READ SHARED same epoch
        w = st.write_epoch
        if w is not None and w[0] > ct[w[1]]:
            report.record(
                RaceRecord(
                    var=var,
                    first=(w[1], "write"),
                    second=(t, "read"),
                    benign=var in benign,
                )
            )
        if st.read_vc is not None:
            st.read_vc[t] = ct[t]  # READ SHARED
        else:
            r = st.read_epoch
            if r is None or r[0] <= ct[r[1]]:
                st.read_epoch = epoch  # READ EXCLUSIVE
            else:
                # READ SHARE: inflate to a vector clock.
                vc = [0] * self.n
                vc[r[1]] = r[0]
                vc[t] = ct[t]
                st.read_vc = vc
                st.read_epoch = None

    def _write(
        self, t: int, var: str, is_init: bool, benign: frozenset, report: DetectionReport
    ) -> None:
        st = self._state(var)
        ct = self._C[t]
        epoch = (ct[t], t)
        if st.write_epoch == epoch:
            return  # WRITE SAME EPOCH
        w = st.write_epoch
        if w is not None and w[0] > ct[w[1]]:
            report.record(
                RaceRecord(
                    var=var,
                    first=(w[1], "write"),
                    second=(t, "write"),
                    benign=var in benign,
                )
            )
        if st.read_vc is not None:
            # WRITE SHARED: check the whole read set, then discard it.
            for u, ru in enumerate(st.read_vc):
                if ru > ct[u]:
                    report.record(
                        RaceRecord(
                            var=var,
                            first=(u, "read"),
                            second=(t, "write"),
                            benign=var in benign,
                        )
                    )
                    break
            st.read_vc = None
        else:
            r = st.read_epoch
            if r is not None and r[0] > ct[r[1]]:
                report.record(
                    RaceRecord(
                        var=var,
                        first=(r[1], "read"),
                        second=(t, "write"),
                        benign=var in benign,
                    )
                )
        st.write_epoch = epoch
