"""The online-and-parallel predicate detector built on ParaMount (paper §4).

Pipeline (paper Figure 7): the observed trace streams through the HB
front-end (1-pass, event collections, §4.4); each emitted collection event
is inserted into an :class:`~repro.core.online.OnlineParaMount`, whose
atomic insert yields the interval ``I(e)``; the bounded lexical subroutine
enumerates the interval; and the data-race predicate (Algorithm 6, with
init filtering per §5.2) is evaluated on every enumerated state.

The detector is *general-purpose*: swap :class:`DataRacePredicate` for any
:class:`~repro.predicates.base.StatePredicate` via the ``predicate_factory``
hook to detect other conditions on the same enumeration (the extension
examples do exactly that).

Since the planner landed, "general-purpose" no longer means "always
enumerate": under ``plan="auto"`` the built predicate is classified
(:mod:`repro.staticcheck.predclass`) and, when the certificate proves a
conjunctive / linear / stable structure, detection routes through the
corresponding slicing fast path on the event-collection poset instead of
the online enumeration.  Arbitrary predicates — including the default
data-race predicate — keep the original online path untouched.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.online import OnlineParaMount
from repro.detector.hb import HBFrontEnd, poset_from_trace
from repro.detector.planner import DetectionPlanner
from repro.detector.report import DetectionReport
from repro.predicates.base import StatePredicate
from repro.predicates.data_race import DataRacePredicate
from repro.runtime.trace import Trace
from repro.util.timing import Stopwatch

__all__ = ["ParaMountDetector"]

PredicateFactory = Callable[[DetectionReport, frozenset], StatePredicate]


def _default_predicate_factory(
    report: DetectionReport, benign_vars: frozenset
) -> StatePredicate:
    return DataRacePredicate(
        filter_init=True, benign_vars=benign_vars, report=report
    )


class ParaMountDetector:
    """Online predicate detection with parallel global-state enumeration.

    Parameters
    ----------
    subroutine:
        Bounded sequential subroutine for interval enumeration (paper
        default: the bounded lexical algorithm).
    predicate_factory:
        Builds the predicate to evaluate per state; defaults to the
        init-filtered data-race predicate of Algorithms 5–6.
    memory_budget:
        Optional cap on live intermediate states per interval (irrelevant
        for the stateless lexical subroutine; exercised with ``"bfs"``).
    static_pruner:
        Optional static skip oracle (any object with ``should_skip(var)``,
        e.g. :class:`repro.staticcheck.prune.StaticPruner`): accesses to
        variables it proves statically race-free are dropped before the
        front-end ever ticks a clock for them, skipping their collection
        bookkeeping and predicate work.  Detections are unchanged (the
        pruner only drops provably-ordered variables); the skipped work is
        reported via ``pruned_vars`` / ``pruned_accesses``.
    plan:
        Detection-planner mode: ``"auto"`` (default) routes provably
        structured predicates to the slicing fast paths and everything
        else to the unchanged enumeration; ``"full"`` disables planning
        outright (pre-planner behavior); ``"slice"`` demands a fast path
        and raises :class:`~repro.errors.PlannerError` for predicates the
        classifier cannot prove eligible.
    """

    name = "ParaMount"

    def __init__(
        self,
        subroutine: str = "lexical",
        predicate_factory: PredicateFactory = _default_predicate_factory,
        memory_budget: Optional[int] = None,
        static_pruner=None,
        observer=None,
        plan: str = "auto",
    ):
        self.subroutine = subroutine
        self.predicate_factory = predicate_factory
        self.memory_budget = memory_budget
        self.static_pruner = static_pruner
        self.plan = plan
        from repro.obs.observer import ensure_observer

        #: Observability facade: spans the detection pass and feeds
        #: ``hb_events_total`` / ``predicate_checks_total``; also handed to
        #: the inner :class:`OnlineParaMount` for per-interval spans.
        self.observer = ensure_observer(observer)

    def run(
        self, trace: Trace, benign_vars: frozenset = frozenset()
    ) -> DetectionReport:
        """Detect the predicate over one observed trace (1-pass, online)."""
        report = DetectionReport(detector=self.name, benchmark=trace.program_name)
        predicate = self.predicate_factory(report, benign_vars)
        obs = self.observer

        if self.plan != "full":
            planner = DetectionPlanner(mode=self.plan, observer=obs)
            dplan = planner.plan(
                predicate, name=getattr(predicate, "name", None)
            )
            report.plan_route = dplan.route
            report.predicate_class = dplan.certificate.assigned.value
            if dplan.fast_path:
                # Provably structured predicate: detect on the same
                # event-collection poset the online pass would build, but
                # via the certificate's slicing route — no enumeration.
                poset = poset_from_trace(trace, merge_collections=True)
                planned = planner.detect(poset, predicate, plan=dplan)
                report.elapsed = planned.elapsed
                report.witness = planned.witness
                report.states_enumerated = planned.states_examined
                report.poset_events = poset.num_events
                return report
            # Arbitrary (or demoted) predicate: fall through to the
            # original online enumeration path, unchanged.

        online: Optional[OnlineParaMount] = None

        if obs.enabled:
            checks = obs.counter("predicate_checks_total")

            def on_state(cut, event) -> None:
                assert online is not None  # assigned before any insert
                frontier = online.builder.view().frontier_events(cut)
                checks.inc()
                predicate.check(cut, frontier, new_event=event)

        else:

            def on_state(cut, event) -> None:
                # The live view resolves the frontier events of the cut;
                # every index the cut references is below the interval's
                # Gbnd and therefore already inserted (Theorem 3).
                assert online is not None  # assigned before any insert
                frontier = online.builder.view().frontier_events(cut)
                predicate.check(cut, frontier, new_event=event)

        online = OnlineParaMount(
            trace.num_threads,
            subroutine=self.subroutine,
            on_state=on_state,
            memory_budget=self.memory_budget,
            observer=obs,
        )
        if obs.enabled:
            hb_events = obs.counter("hb_events_total")

            def emit(event):
                hb_events.inc()
                online.insert(event)

        else:
            emit = lambda event: online.insert(event)  # noqa: E731
        front_end = HBFrontEnd(
            trace.num_threads,
            emit=emit,
            merge_collections=True,
            pruner=self.static_pruner,
        )
        with Stopwatch() as sw:
            with obs.span(
                "detect", "detect", benchmark=str(trace.program_name)
            ):
                for op in trace:
                    front_end.process(op)
                front_end.finish()
        report.elapsed = sw.elapsed
        report.states_enumerated = online.result.states
        report.poset_events = front_end.events_emitted
        report.pruned_vars = set(front_end.pruned_vars)
        report.pruned_accesses = front_end.pruned_accesses
        return report
