"""The detection planner: certificate-driven routing around enumeration.

The :class:`~repro.staticcheck.predclass.ClassificationCertificate` says
what a predicate provably is; the :class:`DetectionPlanner` turns that
into a route:

===============  ====================================================
class            route
===============  ====================================================
local /          Garg–Waldecker forward advance
conjunctive      (:func:`~repro.predicates.conjunctive.detect_conjunctive`)
                 + :func:`~repro.predicates.slicing.conjunctive_slice`
                 for the satisfying sublattice
linear           generalized forward advance
                 (:func:`~repro.predicates.linear.linear_slice`)
stable           final-cut test + bounded frontier sweep
                 (:func:`~repro.predicates.stable.detect_stable`)
arbitrary        full enumeration — the ParaMount path, untouched
===============  ====================================================

Soundness contract (DESIGN §7e): the fast path is taken **only** for
certificates the classifier could prove; anything unknown or demoted
routes to full enumeration, so planning can cost time but never a
verdict.  ``mode="full"`` disables routing outright (the byte-for-byte
baseline); ``mode="slice"`` *requires* a fast path and raises
:class:`~repro.errors.PlannerError` on an ``arbitrary`` certificate
instead of silently enumerating.

Every decision is observable: an ``instant("plan", ...)`` trace marker
per planned predicate and the ``predicates_fast_pathed_total`` /
``predicates_demoted_total`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import PlannerError
from repro.poset.poset import Poset
from repro.predicates.base import StatePredicate
from repro.predicates.conjunctive import ConjunctivePredicate
from repro.predicates.linear import linear_slice
from repro.predicates.modalities import possibly
from repro.predicates.slicing import (
    ConjunctiveSlice,
    conjunctive_slice,
    least_satisfying,
)
from repro.predicates.stable import detect_stable
from repro.staticcheck.predclass import (
    ClassificationCertificate,
    PredicateClass,
    classify_predicate,
)
from repro.types import Cut
from repro.util.timing import Stopwatch

__all__ = [
    "ROUTE_CONJUNCTIVE_SLICE",
    "ROUTE_LINEAR_SLICE",
    "ROUTE_STABLE_SWEEP",
    "ROUTE_FULL",
    "DetectionPlan",
    "PlannedDetection",
    "DetectionPlanner",
]

ROUTE_CONJUNCTIVE_SLICE = "conjunctive_slice"
ROUTE_LINEAR_SLICE = "linear_slice"
ROUTE_STABLE_SWEEP = "stable_sweep"
ROUTE_FULL = "full_enumeration"

_ROUTE_FOR_CLASS = {
    PredicateClass.LOCAL: ROUTE_CONJUNCTIVE_SLICE,
    PredicateClass.CONJUNCTIVE: ROUTE_CONJUNCTIVE_SLICE,
    PredicateClass.LINEAR: ROUTE_LINEAR_SLICE,
    PredicateClass.STABLE: ROUTE_STABLE_SWEEP,
    PredicateClass.ARBITRARY: ROUTE_FULL,
}


@dataclass(frozen=True)
class DetectionPlan:
    """One routing decision, with the certificate that justifies it."""

    certificate: ClassificationCertificate
    route: str
    mode: str
    rationale: str

    @property
    def fast_path(self) -> bool:
        return self.route != ROUTE_FULL


@dataclass(frozen=True)
class PlannedDetection:
    """Outcome of a planned possibly-detection on one poset."""

    plan: DetectionPlan
    detected: bool
    #: A satisfying consistent cut (the *least* one for conjunctive and
    #: linear routes) or ``None``.
    witness: Optional[Cut]
    #: Predicate evaluations / states the route examined (0 when the
    #: route is purely analytic, e.g. the Garg–Waldecker advance).
    states_examined: int
    elapsed: float
    #: The satisfying sublattice, when the conjunctive route ran with
    #: ``with_slice=True`` (the box certificate; costs an interval
    #: enumeration of the box, so it is opt-in).
    slice: Optional[ConjunctiveSlice] = None


class DetectionPlanner:
    """Routes predicates to the cheapest provably-sound detection path.

    Parameters
    ----------
    mode:
        ``"auto"`` (default) — follow the certificate; ``"full"`` — always
        take full enumeration (baseline / escape hatch); ``"slice"`` —
        demand a fast path, raising :class:`PlannerError` when the
        certificate says ``arbitrary``.
    observer:
        Optional :class:`repro.obs.observer.Observer` for plan instants
        and the fast-path counters.
    stable_sweep_budget:
        Predicate-evaluation cap for the stable route's backward sweep.
    """

    MODES = ("auto", "full", "slice")

    def __init__(
        self,
        mode: str = "auto",
        observer=None,
        stable_sweep_budget: int = 256,
    ):
        if mode not in self.MODES:
            raise PlannerError(
                f"unknown planner mode {mode!r}; expected one of {self.MODES}"
            )
        self.mode = mode
        self.stable_sweep_budget = stable_sweep_budget
        from repro.obs.observer import ensure_observer

        self.observer = ensure_observer(observer)

    # ------------------------------------------------------------------ #

    def plan(
        self,
        predicate: object,
        name: Optional[str] = None,
        claimed: Optional[PredicateClass] = None,
    ) -> DetectionPlan:
        """Classify the predicate and decide the route under this mode."""
        certificate = classify_predicate(predicate, name=name, claimed=claimed)
        proved_route = _ROUTE_FOR_CLASS[certificate.assigned]
        if self.mode == "full":
            route = ROUTE_FULL
            rationale = "mode=full: routing disabled, baseline enumeration"
        elif proved_route == ROUTE_FULL:
            route = ROUTE_FULL
            if self.mode == "slice":
                raise PlannerError(
                    f"mode=slice demands a fast path but predicate "
                    f"{certificate.predicate!r} classified as arbitrary"
                    + (
                        f" ({certificate.demotions[0].describe()})"
                        if certificate.demotions
                        else ""
                    )
                )
            rationale = (
                "certificate says arbitrary: only full enumeration is sound"
            )
        else:
            route = proved_route
            rationale = (
                f"certificate proves {certificate.assigned.value}: "
                f"{route} replaces enumeration"
            )
        obs = self.observer
        if obs.enabled:
            obs.instant(
                "plan",
                "planner",
                predicate=certificate.predicate,
                claimed=certificate.claimed.value,
                assigned=certificate.assigned.value,
                route=route,
                demoted=certificate.demoted,
            )
            if route != ROUTE_FULL:
                obs.counter("predicates_fast_pathed_total").inc()
            if certificate.demoted:
                obs.counter("predicates_demoted_total").inc()
        return DetectionPlan(
            certificate=certificate,
            route=route,
            mode=self.mode,
            rationale=rationale,
        )

    def detect(
        self,
        poset: Poset,
        predicate: object,
        name: Optional[str] = None,
        plan: Optional[DetectionPlan] = None,
        with_slice: bool = False,
    ) -> PlannedDetection:
        """Run possibly-detection along the planned route.

        ``with_slice=True`` additionally materializes the
        :class:`ConjunctiveSlice` (satisfying sublattice) on the
        conjunctive route — opt-in, because the verdict itself needs only
        the analytic Garg–Waldecker advance.
        """
        if plan is None:
            plan = self.plan(predicate, name=name)
        with Stopwatch() as sw:
            with self.observer.span(
                "plan-detect", "planner", route=plan.route
            ):
                witness, examined, box = self._run_route(
                    poset, predicate, plan, with_slice
                )
        return PlannedDetection(
            plan=plan,
            detected=witness is not None,
            witness=witness,
            states_examined=examined,
            elapsed=sw.elapsed,
            slice=box,
        )

    # ------------------------------------------------------------------ #

    def _run_route(
        self,
        poset: Poset,
        predicate: object,
        plan: DetectionPlan,
        with_slice: bool,
    ):
        if plan.route == ROUTE_CONJUNCTIVE_SLICE:
            if isinstance(predicate, ConjunctivePredicate):
                locals_ = predicate.locals_
            else:
                locals_ = list(predicate)  # type: ignore[call-overload]
            if with_slice:
                s = conjunctive_slice(poset, locals_)
                if s is None:
                    return None, 0, None
                return s.least, s.count, s
            return least_satisfying(poset, locals_), 0, None
        if plan.route == ROUTE_LINEAR_SLICE:
            ls = linear_slice(poset, _as_state_predicate(predicate))
            if ls is None:
                return None, 0, None
            return ls.least, ls.states_examined, None
        if plan.route == ROUTE_STABLE_SWEEP:
            sd = detect_stable(
                poset,
                _as_state_predicate(predicate),
                budget=self.stable_sweep_budget,
            )
            return sd.witness, sd.states_examined, None
        # Full enumeration: the short-circuiting lexical walk — the same
        # states, in the same order, a full ParaMount pass would check.
        witness = possibly(poset, _as_state_predicate(predicate))
        return witness, 0, None


def _as_state_predicate(predicate: object) -> StatePredicate:
    if isinstance(predicate, StatePredicate):
        return predicate
    if isinstance(predicate, (list, tuple)):
        return ConjunctivePredicate(predicate)
    raise PlannerError(
        f"cannot evaluate predicate of type {type(predicate).__name__}"
    )
