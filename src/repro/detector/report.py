"""Detection reports shared by all three detectors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["RaceRecord", "DetectionReport"]

#: Detector completion statuses (Table 2's outcome vocabulary).
STATUS_OK = "ok"
STATUS_OOM = "o.o.m."
STATUS_EXCEPTION = "exception"


@dataclass(frozen=True)
class RaceRecord:
    """One reported data race: a conflicting concurrent access pair.

    ``first``/``second`` identify the two accesses as ``(tid, op)`` pairs;
    ``benign`` marks races the reproduction knows to be benign (driver
    variables, initialization) so the tests can check Table 2's footnotes.
    """

    var: str
    first: Tuple[int, str]
    second: Tuple[int, str]
    benign: bool = False


@dataclass
class DetectionReport:
    """Outcome of one detector run on one benchmark."""

    detector: str
    benchmark: str
    status: str = STATUS_OK
    #: Variables with at least one reported race (the paper's "#Detection"
    #: counts variables, not access pairs).
    racy_vars: Set[str] = field(default_factory=set)
    #: First reported race per variable.
    races: Dict[str, RaceRecord] = field(default_factory=dict)
    #: Wall-clock seconds of the detection run (monitor + enumeration +
    #: predicate for the online tools; all passes for the offline one).
    elapsed: float = 0.0
    #: Global states enumerated (0 for FastTrack — no enumeration).
    states_enumerated: int = 0
    #: Events in the detector's poset (collections for ParaMount, raw
    #: accesses for the RV baseline).
    poset_events: int = 0
    #: Variables whose accesses the static pruner dropped before
    #: enumeration (empty unless the detector ran with a pruner).
    pruned_vars: Set[str] = field(default_factory=set)
    #: Total access operations dropped by the static pruner.
    pruned_accesses: int = 0
    #: Detection route taken by the planner ("" when no planner ran):
    #: "conjunctive_slice" | "linear_slice" | "stable_sweep" |
    #: "full_enumeration".
    plan_route: str = ""
    #: Classifier-assigned predicate class backing the route ("" when no
    #: planner ran).
    predicate_class: str = ""
    #: Witness cut from a fast-path possibly-detection (None when not
    #: detected or when the full enumeration path ran).
    witness: Optional[Tuple[int, ...]] = None
    #: Failure detail for o.o.m. / exception outcomes.
    error: Optional[str] = None

    @property
    def num_detections(self) -> int:
        """Number of variables reported racy (Table 2 "#Detection")."""
        return len(self.racy_vars)

    def record(self, race: RaceRecord) -> None:
        """Record a race, keeping only the first per variable."""
        if race.var not in self.races:
            self.races[race.var] = race
        self.racy_vars.add(race.var)

    def sorted_vars(self) -> List[str]:
        """Reported variables in stable order."""
        return sorted(self.racy_vars)
