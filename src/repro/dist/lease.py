"""Lease table: exactly-one-commit bookkeeping for distributed dispatch.

Each task triple ``(event, lo, hi)`` moves through::

    pending ──dispatch──▶ leased ──ack──▶ committed
       ▲                    │
       └──expiry / worker────┘
          death (re-dispatch)

A lease carries its holder, an expiry deadline extended by heartbeats,
and an attempt counter.  Because Theorem-2 interval tasks are idempotent,
re-dispatching an expired lease is always safe — the only invariant the
table must enforce is **exactly one commit per task**: the first
acknowledgement wins and is journaled; a duplicate (the original worker
was merely slow, and its ack raced the re-dispatched copy's) is counted
and dropped.

The table itself is not synchronized; the coordinator serializes access
through its condition-variable lock, which it also uses to wake the
dispatch loop whenever the table changes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.metrics import IntervalStats
from repro.resilience.checkpoint import TaskKey

__all__ = ["Lease", "LeaseTable"]


@dataclass
class Lease:
    """One outstanding task lease."""

    key: TaskKey
    worker: str
    expires_at: float
    attempt: int
    #: Size bound of the interval, for largest-first re-dispatch ordering.
    weight: int = 0


@dataclass
class LeaseTable:
    """Tracks every task's lease state for one distributed run.

    ``lease_seconds`` is the acknowledgement deadline; heartbeats extend
    every lease held by the heartbeating worker by the same amount, so a
    *live* worker chewing on a giant interval keeps its lease while a
    killed/hung/partitioned one loses it after at most ``lease_seconds``.
    """

    lease_seconds: float = 5.0
    clock: Callable[[], float] = time.monotonic
    #: pending keys in dispatch order (schedule order, re-dispatches first)
    pending: List[TaskKey] = field(default_factory=list)
    leased: Dict[TaskKey, Lease] = field(default_factory=dict)
    committed: Dict[TaskKey, IntervalStats] = field(default_factory=dict)
    #: per-key attempt counters (monotone across re-dispatches)
    attempts: Dict[TaskKey, int] = field(default_factory=dict)
    #: per-key workers already tried, to prefer a different host on retry
    tried: Dict[TaskKey, Set[str]] = field(default_factory=dict)
    weights: Dict[TaskKey, int] = field(default_factory=dict)
    # robustness counters, drained into ParaMountResult / obs
    leases_expired: int = 0
    redispatches: int = 0
    duplicate_acks: int = 0
    stale_acks: int = 0

    # ------------------------------------------------------------------ #
    # setup

    def add_tasks(
        self, keys: Sequence[TaskKey], weights: Optional[Sequence[int]] = None
    ) -> None:
        """Register the run's tasks (in dispatch order)."""
        for i, key in enumerate(keys):
            self.pending.append(key)
            self.attempts.setdefault(key, 0)
            if weights is not None:
                self.weights[key] = weights[i]

    def mark_committed(self, key: TaskKey, stats: IntervalStats) -> None:
        """Pre-commit a task restored from a checkpoint journal."""
        if key in self.pending:
            self.pending.remove(key)
        self.committed[key] = stats

    # ------------------------------------------------------------------ #
    # dispatch / heartbeat / expiry

    def next_for(self, worker: str) -> Optional[Tuple[TaskKey, int]]:
        """Lease the next pending task to ``worker``.

        Prefers a task this worker has not already failed — when every
        pending task was tried by ``worker``, takes the head anyway (with
        one surviving worker there is nobody else to give it to).
        Returns ``(key, attempt)`` or ``None`` when nothing is pending.
        """
        if not self.pending:
            return None
        pick = None
        for key in self.pending:
            if worker not in self.tried.get(key, ()):
                pick = key
                break
        if pick is None:
            pick = self.pending[0]
        self.pending.remove(pick)
        attempt = self.attempts[pick]
        self.attempts[pick] = attempt + 1
        self.tried.setdefault(pick, set()).add(worker)
        self.leased[pick] = Lease(
            key=pick,
            worker=worker,
            expires_at=self.clock() + self.lease_seconds,
            attempt=attempt,
            weight=self.weights.get(pick, 0),
        )
        return pick, attempt

    def heartbeat(
        self, worker: str, keys: Optional[Sequence[TaskKey]] = None
    ) -> int:
        """Extend ``worker``'s leases; return how many were extended.

        ``keys`` names the tasks the worker reports it is *actively*
        working on — only those leases are extended.  A lease the worker
        no longer claims (it finished the task but its acknowledgement
        was dropped by a one-way partition) must keep aging toward
        expiry, or the heartbeat would pin the orphaned lease alive
        forever and the task would never be re-dispatched.  ``None``
        (a legacy heartbeat without a task list) extends everything.
        """
        deadline = self.clock() + self.lease_seconds
        claimed = None if keys is None else set(keys)
        n = 0
        for lease in self.leased.values():
            if lease.worker == worker and (
                claimed is None or lease.key in claimed
            ):
                lease.expires_at = deadline
                n += 1
        return n

    def expire(self) -> List[Lease]:
        """Return expired leases to the pending pool (front of the queue,
        largest first, so recovered stragglers restart immediately)."""
        now = self.clock()
        expired = [le for le in self.leased.values() if le.expires_at <= now]
        self._reclaim(expired)
        self.leases_expired += len(expired)
        self.redispatches += len(expired)
        return expired

    def release_worker(self, worker: str) -> List[Lease]:
        """A worker's connection died: reclaim everything it held."""
        lost = [le for le in self.leased.values() if le.worker == worker]
        self._reclaim(lost)
        self.redispatches += len(lost)
        return lost

    def _reclaim(self, leases: List[Lease]) -> None:
        # Each insert(0, …) pushes earlier inserts back, so inserting in
        # ascending weight order leaves the heaviest key at the head.
        for lease in sorted(leases, key=lambda le: le.weight):
            del self.leased[lease.key]
            self.pending.insert(0, lease.key)

    # ------------------------------------------------------------------ #
    # commit

    def commit(self, key: TaskKey, stats: IntervalStats) -> bool:
        """Record an acknowledgement; True iff this is the first commit.

        The caller journals the stats *only* on True — that is the
        exactly-one-record-per-interval guarantee.  A duplicate ack (the
        lease expired, the task was re-dispatched, and then the original
        slow worker answered anyway) is counted and dropped; by
        idempotence both copies carry identical stats, so dropping either
        is correct.
        """
        if key in self.committed:
            self.duplicate_acks += 1
            return False
        self.committed[key] = stats
        self.leased.pop(key, None)
        if key in self.pending:  # ack raced its own expiry re-queue
            self.pending.remove(key)
        return True

    # ------------------------------------------------------------------ #
    # queries

    @property
    def done(self) -> bool:
        return not self.pending and not self.leased

    def next_deadline(self) -> Optional[float]:
        """Earliest lease expiry (the dispatch loop's wait bound)."""
        if not self.leased:
            return None
        return min(le.expires_at for le in self.leased.values())

    def outstanding(self) -> List[TaskKey]:
        """Every task not yet committed (pending + leased)."""
        return list(self.pending) + list(self.leased)
