"""The worker: connects, verifies the digest, enumerates leased intervals.

A worker is one process with one coordinator connection.  It either loads
its own poset file (``--poset``) — in which case the handshake *compares
digests* and a stale worker is rejected before holding a single lease —
or receives the poset from the coordinator's welcome message and verifies
the shipped digest against its own recomputation, so a corrupted transfer
can never be enumerated.

The main loop is pull-based: request a lease, enumerate the interval with
the ordinary :func:`~repro.core.bounded.bounded_enumeration` machinery,
acknowledge with the stats (and the digest, re-presented so the
coordinator can refuse a stale commit), repeat.  A background heartbeat
thread keeps live leases extended; the injected ``hang`` fault suppresses
it, so a hung worker is indistinguishable from a partitioned one — which
is the point, since lease expiry must recover both.

Task failures are reported as ``task-error`` messages whose payload is
the pickled typed exception (:class:`~repro.errors.OutOfMemoryError`
with its budget, :class:`~repro.errors.DeadlockError` with its wait-for
graph, …), so the coordinator's failure records keep the same fidelity
as in-process runs.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.dist.wire import (
    WIRE_CRASH,
    WIRE_HANG,
    WIRE_NONE,
    WireFaults,
    apply_wire_fault,
    recv_message,
    send_message,
)
from repro.errors import ConnectionClosedError, ReproError, StaleDigestError
from repro.poset.io import poset_from_dict
from repro.poset.poset import Poset
from repro.resilience.checkpoint import poset_digest

__all__ = ["run_worker", "spawn_local_workers"]


class _Heartbeat:
    """Background lease-extension pulse, suppressible for hang faults.

    Each pulse names the task the worker is *currently* enumerating
    (``current``, a wire task dict or ``None``) so the coordinator
    extends only that lease — a task whose acknowledgement was dropped
    must not be kept alive by the heartbeats of its now-idle worker.
    """

    def __init__(self, sock: socket.socket, lock: threading.Lock, every: float):
        self._sock = sock
        self._lock = lock
        self._every = max(every, 0.05)
        self._stop = threading.Event()
        self._suppressed = threading.Event()
        #: Wire form of the in-flight task; set/cleared by the work loop.
        self.current: Optional[Dict[str, Any]] = None
        #: Cumulative worker-local counters, piggybacked on every pulse so
        #: the coordinator's ``/metrics`` can show per-host-labeled series
        #: without a second channel.  The work loop mutates it in place.
        self.metrics: Dict[str, float] = {}
        self._thread = threading.Thread(
            target=self._loop, name="dist-heartbeat", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def suppress(self, yes: bool) -> None:
        if yes:
            self._suppressed.set()
        else:
            self._suppressed.clear()

    def _loop(self) -> None:
        while not self._stop.wait(self._every):
            if self._suppressed.is_set():
                continue
            current = self.current
            pulse: Dict[str, Any] = {
                "type": "heartbeat",
                "tasks": [current] if current is not None else [],
            }
            if self.metrics:
                pulse["metrics"] = dict(self.metrics)
            try:
                with self._lock:
                    send_message(self._sock, pulse)
            except (ReproError, OSError):
                return  # connection is gone; the main loop will notice


def run_worker(
    address: Tuple[str, int],
    name: Optional[str] = None,
    poset: Optional[Poset] = None,
    wire_faults: Optional[WireFaults] = None,
    connect_timeout: float = 10.0,
) -> int:
    """Run one worker against ``address`` until the coordinator drains it.

    Returns a process exit code: 0 after a clean drain, 3 when rejected
    for a stale digest, 1 on a lost coordinator.  ``poset`` (optional) is
    the worker's own copy; when ``None`` the coordinator's welcome must
    ship one.
    """
    name = name or f"{socket.gethostname()}-{os.getpid()}"
    faults = wire_faults or WireFaults()
    sock = socket.create_connection(address, timeout=connect_timeout)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_lock = threading.Lock()
    try:
        hello: Dict[str, Any] = {
            "type": "hello",
            "name": name,
            "pid": os.getpid(),
            "host": socket.gethostname(),
        }
        own_digest = poset_digest(poset) if poset is not None else None
        if own_digest is not None:
            hello["digest"] = own_digest
        with send_lock:
            send_message(sock, hello)
        welcome = recv_message(sock)
        if welcome.get("type") == "reject":
            # the coordinator compared digests and refused us
            raise StaleDigestError(
                str(welcome.get("expected")),
                str(welcome.get("actual")),
                where="worker handshake",
            )
        if welcome.get("type") != "welcome":
            raise ConnectionClosedError(
                f"expected welcome, got {welcome.get('type')!r}"
            )
        digest = str(welcome["digest"])
        if poset is None:
            poset = poset_from_dict(welcome["poset"])
            actual = poset_digest(poset)
            if actual != digest:
                raise StaleDigestError(digest, actual, where="poset transfer")
        elif own_digest != digest:
            raise StaleDigestError(digest, own_digest or "", where="worker")
        subroutine = str(welcome["subroutine"])
        memory_budget = welcome.get("memory_budget")
        heartbeat = _Heartbeat(
            sock, send_lock, float(welcome.get("heartbeat_seconds", 1.0))
        )
        heartbeat.start()
        try:
            code = _work_loop(
                sock,
                send_lock,
                heartbeat,
                poset,
                subroutine,
                memory_budget,
                digest,
                faults,
            )
        finally:
            heartbeat.stop()
        return code
    except StaleDigestError:
        raise
    except (ReproError, OSError):
        return 1
    finally:
        try:
            sock.close()
        except OSError:
            pass


def _work_loop(
    sock: socket.socket,
    send_lock: threading.Lock,
    heartbeat: _Heartbeat,
    poset: Poset,
    subroutine: str,
    memory_budget: Optional[int],
    digest: str,
    faults: WireFaults,
) -> int:
    # imported here so a worker that is rejected during the handshake
    # never pays for the enumeration machinery
    from repro.enumeration import make_enumerator

    enumerator = make_enumerator(subroutine, poset, memory_budget=memory_budget)
    metrics = heartbeat.metrics  # shipped to the coordinator every pulse
    acked = 0
    while True:
        with send_lock:
            send_message(sock, {"type": "request"})
        msg = recv_message(sock)
        mtype = msg.get("type")
        if mtype in ("drain", "shutdown"):
            with send_lock:
                send_message(sock, {"type": "bye"})
            return 0
        if mtype == "idle":
            time.sleep(float(msg.get("seconds", 0.05)))
            continue
        if mtype != "lease":
            return 1
        if msg.get("digest") != digest:
            raise StaleDigestError(
                digest, str(msg.get("digest")), where="lease"
            )
        task = msg["task"]
        event = tuple(task["event"])
        lo = tuple(task["lo"])
        hi = tuple(task["hi"])
        attempt = int(msg.get("attempt", 0))
        key = (event, lo, hi)
        heartbeat.current = task
        fault = faults.decide(key, attempt) if faults.active else WIRE_NONE
        if fault == WIRE_CRASH:
            os._exit(1)
        if fault == WIRE_HANG:
            heartbeat.suppress(True)
        epoch_t0 = time.time()
        t0 = time.perf_counter()
        try:
            result = enumerator.enumerate_interval(lo, hi)
        except ReproError as exc:
            heartbeat.current = None
            heartbeat.suppress(False)
            metrics["task_errors_total"] = (
                metrics.get("task_errors_total", 0) + 1
            )
            with send_lock:
                send_message(
                    sock,
                    {
                        "type": "task-error",
                        "task": task,
                        "attempt": attempt,
                        "payload": exc,
                    },
                )
            continue
        seconds = time.perf_counter() - t0
        metrics["intervals_enumerated_total"] = (
            metrics.get("intervals_enumerated_total", 0) + 1
        )
        metrics["states_enumerated_total"] = (
            metrics.get("states_enumerated_total", 0) + result.states
        )
        if fault in (WIRE_HANG,):
            # the hang happens *after* the work: results exist but the
            # heartbeat stayed silent, so the lease may already be gone
            apply_wire_fault(fault, faults)
            heartbeat.suppress(False)
        acked += 1
        if faults.kill_after is not None and acked >= faults.kill_after:
            # kill -9 semantics: the interval was fully enumerated but the
            # acknowledgement dies with the process
            os._exit(137)
        drop = False
        if fault not in (WIRE_NONE, WIRE_CRASH, WIRE_HANG):
            drop = apply_wire_fault(fault, faults)
        if drop:
            # the ack dies here (one-way partition); stop claiming the
            # task so the coordinator's lease ages out and re-dispatches
            heartbeat.current = None
            continue
        with send_lock:
            send_message(
                sock,
                {
                    "type": "ack",
                    "task": task,
                    "attempt": attempt,
                    "digest": digest,
                    "states": result.states,
                    "work": result.work,
                    "peak_live": result.peak_live,
                    "seconds": seconds,
                    "epoch_t0": epoch_t0,
                },
            )
        heartbeat.current = None


# ---------------------------------------------------------------------- #
# spawning local worker processes (tests, CI, and --dist-workers N)


def spawn_local_workers(
    n: int,
    address: Tuple[str, int],
    poset_path: Optional[Path] = None,
    wire_faults: Optional[WireFaults] = None,
    fault_workers: int = 1,
    worker_args: Optional[List[str]] = None,
    name_prefix: str = "host",
) -> List[subprocess.Popen]:
    """Start ``n`` worker subprocesses connected to ``address``.

    Only the first ``fault_workers`` processes receive ``wire_faults`` —
    the victim/survivor split every recovery test needs.  Workers are
    named ``host0 … hostN-1`` so traces get one lane per simulated host.
    """
    import repro

    procs: List[subprocess.Popen] = []
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_root + os.pathsep + existing if existing else src_root
    )
    for i in range(n):
        cmd = [
            sys.executable,
            "-m",
            "repro.tools",
            "worker",
            "--connect",
            f"{address[0]}:{address[1]}",
            "--name",
            f"{name_prefix}{i}",
        ]
        if poset_path is not None:
            cmd += ["--poset", str(poset_path)]
        if wire_faults is not None and wire_faults.active and i < fault_workers:
            cmd += ["--wire-faults", wire_faults.spec_string()]
        if worker_args:
            cmd += list(worker_args)
        procs.append(subprocess.Popen(cmd, env=env))
    return procs
