"""The coordinator: leases interval descriptors, commits acknowledgements.

One coordinator serves one distributed run.  It binds a listening socket,
accepts worker connections on a background thread, and answers each
worker's pull-based ``request`` messages with interval leases; a monitor
loop in the calling thread watches for lease expiry, wall-clock deadline,
and worker exhaustion.  All shared state — the :class:`LeaseTable` and
the connected-worker set — is serialized through one condition variable,
whose notifications double as the monitor loop's wake-ups.

Robustness properties, and where they live:

* **crash** (``kill -9``, ``os._exit``) — the worker's socket dies; its
  reader thread reclaims every lease it held (``release_worker``) for
  immediate re-dispatch;
* **hang** — no acknowledgement and no heartbeat, so the lease expires
  after ``lease_seconds`` and :meth:`LeaseTable.expire` re-queues it;
* **partition** (dropped ack) — same as a hang from the coordinator's
  viewpoint: lease expiry recovers it, and if the original ack limps in
  later, :meth:`LeaseTable.commit` drops the duplicate so the journal
  still holds exactly one record per interval;
* **stale digest** — every acknowledgement carries the worker's poset
  digest; a mismatch is counted, refused, and the worker disconnected
  before it can corrupt the commit log;
* **no workers left** — the monitor loop notices an empty worker set with
  work outstanding and returns the undone tasks, which the
  :class:`~repro.dist.executor.DistributedExecutor` then runs in-process
  through the ordinary degradation ladder.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import IntervalStats
from repro.dist.wire import (
    ConnectionClosedError,
    recv_message,
    send_message,
)
from repro.errors import WireError
from repro.obs import NULL_OBSERVER
from repro.poset.io import poset_to_dict
from repro.poset.poset import Poset
from repro.resilience.checkpoint import CheckpointJournal, TaskKey, poset_digest

__all__ = ["Coordinator"]

#: Monitor-loop tick when no lease deadline is nearer (seconds).
_TICK = 0.25


def _key_wire(key: TaskKey) -> Dict[str, Any]:
    return {"event": list(key[0]), "lo": list(key[1]), "hi": list(key[2])}


def _key_from_wire(obj: Dict[str, Any]) -> TaskKey:
    return (tuple(obj["event"]), tuple(obj["lo"]), tuple(obj["hi"]))


class Coordinator:
    """Coordinates one distributed enumeration run.

    Usage::

        coord = Coordinator(poset, "bounded", journal=journal)
        coord.start()                      # binds; coord.address is live
        ...spawn/point workers at coord.address...
        committed, undone = coord.execute(plan.descriptors(), weights)
        coord.stop()

    ``journal`` (optional) is the commit log: the first acknowledgement of
    each task is recorded through it, under its process-level file lock,
    before the task is considered done.
    """

    def __init__(
        self,
        poset: Poset,
        subroutine: str,
        memory_budget: Optional[int] = None,
        journal: Optional[CheckpointJournal] = None,
        observer=None,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_seconds: float = 5.0,
        heartbeat_seconds: float = 1.0,
        no_worker_grace: float = 10.0,
        max_task_attempts: int = 5,
        http_port: Optional[int] = None,
    ):
        self.poset = poset
        self.subroutine = subroutine
        self.memory_budget = memory_budget
        self.journal = journal
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.digest = poset_digest(poset)
        self._poset_data = poset_to_dict(poset)
        self.lease_seconds = lease_seconds
        self.heartbeat_seconds = heartbeat_seconds
        self.no_worker_grace = no_worker_grace
        self.max_task_attempts = max_task_attempts
        self._host = host
        self._port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._reader_threads: List[threading.Thread] = []
        self._cond = threading.Condition()
        # guarded by _cond:
        from repro.dist.lease import LeaseTable

        self.table = LeaseTable(lease_seconds=lease_seconds)
        self._workers: Dict[str, socket.socket] = {}
        self._draining = False
        self._closing = False
        self._ever_connected = False
        self._last_worker_at = time.monotonic()
        #: permanent task failures: key -> (attempts, error string, worker)
        self.failures: Dict[TaskKey, Tuple[int, str, str]] = {}
        self.stale_acks = 0
        #: hosts that committed at least one interval
        self.hosts: List[str] = []
        #: ``None`` disables the ops endpoint; ``0`` picks a free port.
        self._http_port = http_port
        #: The mounted :class:`~repro.obs.http.OpsEndpoint`, if any.
        self.ops = None
        #: last piggybacked counter reading per host (for delta ingestion)
        self._hb_metrics: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------ #
    # lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        assert self._listener is not None, "coordinator not started"
        return self._listener.getsockname()[:2]

    def start(self) -> "Coordinator":
        """Bind, listen, and start accepting workers."""
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self._host, self._port))
        self._listener.listen(16)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dist-accept", daemon=True
        )
        self._accept_thread.start()
        if self._http_port is not None:
            from repro.obs.http import OpsEndpoint

            self.ops = OpsEndpoint(
                self.observer,
                port=self._http_port,
                progress_provider=self._progress_doc,
                health_provider=self._health_doc,
            ).start()
        return self

    def stop(self) -> None:
        """Close the listener and every worker connection."""
        if self.ops is not None:
            self.ops.close()
            self.ops = None
        with self._cond:
            self._closing = True
            self._cond.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._cond:
            conns = list(self._workers.values())
        for conn in conns:
            try:
                send_message(conn, {"type": "shutdown"})
            except (WireError, ConnectionClosedError, OSError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        for t in self._reader_threads:
            t.join(timeout=2.0)

    # ------------------------------------------------------------------ #
    # the run

    def execute(
        self,
        keys: Sequence[TaskKey],
        weights: Optional[Sequence[int]] = None,
        completed: Optional[Dict[TaskKey, IntervalStats]] = None,
        deadline_at: Optional[float] = None,
    ) -> Tuple[Dict[TaskKey, IntervalStats], List[TaskKey]]:
        """Run the task list to completion (or deadline / worker loss).

        ``completed`` pre-commits journal-restored tasks so they are never
        dispatched.  Returns ``(committed, undone)``: stats for every task
        that committed, and the tasks left neither committed nor
        permanently failed — the executor's in-process fallback runs those.
        """
        obs = self.observer
        with self._cond:
            self.table.add_tasks(keys, weights)
            for key, stats in (completed or {}).items():
                self.table.mark_committed(key, stats)
            self._last_worker_at = time.monotonic()
            while True:
                if self._closing:
                    break
                if self._all_resolved():
                    break
                now = time.monotonic()
                if deadline_at is not None and now >= deadline_at:
                    if not self._draining:
                        self._draining = True
                        if obs.enabled:
                            obs.instant("deadline", "dist")
                        # grace: let in-flight leases finish or expire once
                        deadline_at = now + self.lease_seconds
                        continue
                    break  # drain grace elapsed; abandon what's left
                expired = self.table.expire()
                if expired and obs.enabled:
                    obs.counter("leases_expired_total").inc(len(expired))
                    obs.counter("redispatches_total").inc(len(expired))
                    for lease in expired:
                        obs.instant(
                            "lease-expired",
                            "dist",
                            worker=lease.worker,
                            event=str(lease.key[0]),
                            attempt=lease.attempt,
                        )
                if obs.enabled:
                    self._publish_lease_gauges()
                if self._workers:
                    self._last_worker_at = now
                elif (
                    not self.table.done
                    and now - self._last_worker_at > self.no_worker_grace
                ):
                    break  # nobody left to run the rest; degrade locally
                timeout = _TICK
                next_expiry = self.table.next_deadline()
                if next_expiry is not None:
                    timeout = min(timeout, max(next_expiry - now, 0.01))
                if deadline_at is not None:
                    timeout = min(timeout, max(deadline_at - now, 0.01))
                self._cond.wait(timeout)
            committed = dict(self.table.committed)
            undone = [
                key
                for key in self.table.outstanding()
                if key not in self.failures
            ]
            self.stale_acks = self.table.stale_acks
            return committed, undone

    def _all_resolved(self) -> bool:
        # done means every task committed or permanently failed
        if self.table.done:
            return True
        return all(
            key in self.failures for key in self.table.outstanding()
        )

    def _publish_lease_gauges(self) -> None:
        """Refresh the live lease-table gauges and trace counter tracks.

        Called with ``_cond`` held, once per monitor tick (~4 Hz), so the
        counter samples stay bounded regardless of task count.
        """
        obs = self.observer
        pending = len(self.table.pending)
        leased = len(self.table.leased)
        obs.gauge("leases_pending").set(pending)
        obs.gauge("leases_leased").set(leased)
        obs.gauge("leases_committed").set(len(self.table.committed))
        obs.gauge("dist_workers_connected").set(len(self._workers))
        obs.counter_sample("leases_pending", pending)
        obs.counter_sample("leases_leased", leased)

    def _ingest_worker_metrics(self, host: str, counters: object) -> None:
        """Fold one heartbeat's piggybacked counters into per-host series.

        Workers ship *cumulative* worker-local counters; the coordinator
        keeps the last reading per ``(host, metric)`` and applies the
        delta to a host-labeled counter, so the coordinator's ``/metrics``
        shows cluster-wide ``name{host="…"}`` series that survive
        heartbeat loss (deltas, not sets, never go backwards).
        """
        obs = self.observer
        if not obs.enabled or not isinstance(counters, dict):
            return
        last = self._hb_metrics.setdefault(host, {})
        for metric in sorted(counters):
            value = counters[metric]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            delta = value - last.get(metric, 0.0)
            if delta > 0:
                obs.counter(metric, labels={"host": host}).inc(delta)
            last[metric] = float(value)

    # ------------------------------------------------------------------ #
    # ops endpoint providers

    def _progress_doc(self) -> Dict[str, Any]:
        snapshot = self.observer.snapshot()
        with self._cond:
            per_worker: Dict[str, int] = {}
            for lease in self.table.leased.values():
                per_worker[lease.worker] = per_worker.get(lease.worker, 0) + 1
            doc: Dict[str, Any] = {
                "pending": len(self.table.pending),
                "leased": len(self.table.leased),
                "committed": len(self.table.committed),
                "failed": len(self.failures),
                "workers": sorted(self._workers),
                "per_worker_leases": per_worker,
                "draining": self._draining,
            }
        doc["rates"] = snapshot.get("rates", {})
        counters = snapshot.get("counters", {})
        doc["states"] = counters.get("states_enumerated_total", 0)
        return doc

    def _health_doc(self) -> Dict[str, Any]:
        with self._cond:
            workers = len(self._workers)
            outstanding = len(self.table.outstanding())
            degraded = (
                workers == 0 and outstanding > 0 and self._ever_connected
            )
            return {
                "status": "degraded" if degraded else "ok",
                "workers": workers,
                "outstanding": outstanding,
                "draining": self._draining,
            }

    # ------------------------------------------------------------------ #
    # accept / reader threads

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            t = threading.Thread(
                target=self._serve_worker,
                args=(conn,),
                name="dist-reader",
                daemon=True,
            )
            t.start()
            self._reader_threads.append(t)

    def _serve_worker(self, conn: socket.socket) -> None:
        name = "?"
        try:
            hello = recv_message(conn)
            if hello.get("type") != "hello":
                raise WireError(f"expected hello, got {hello.get('type')!r}")
            name = str(hello.get("name") or f"worker-{hello.get('pid')}")
            worker_digest = hello.get("digest")
            if worker_digest is not None and worker_digest != self.digest:
                # stale worker: refuse before it can hold a single lease
                send_message(
                    conn,
                    {
                        "type": "reject",
                        "reason": "stale-digest",
                        "expected": self.digest,
                        "actual": worker_digest,
                    },
                )
                conn.close()
                if self.observer.enabled:
                    self.observer.counter("stale_workers_total").inc()
                return
            welcome: Dict[str, Any] = {
                "type": "welcome",
                "digest": self.digest,
                "subroutine": self.subroutine,
                "memory_budget": self.memory_budget,
                "lease_seconds": self.lease_seconds,
                "heartbeat_seconds": self.heartbeat_seconds,
            }
            if worker_digest is None:  # worker has no poset: ship ours
                welcome["poset"] = self._poset_data
            send_message(conn, welcome)
            with self._cond:
                self._workers[name] = conn
                self._ever_connected = True
                self._cond.notify_all()
            if self.observer.enabled:
                self.observer.instant("worker-join", "dist", worker=name)
            self._reader_loop(conn, name)
        except (ConnectionClosedError, WireError, OSError, json.JSONDecodeError):
            pass
        finally:
            self._drop_worker(name, conn)

    def _reader_loop(self, conn: socket.socket, name: str) -> None:
        while True:
            msg = recv_message(conn)
            mtype = msg.get("type")
            if mtype == "request":
                self._handle_request(conn, name)
            elif mtype == "ack":
                self._handle_ack(conn, name, msg)
            elif mtype == "heartbeat":
                tasks = msg.get("tasks")
                keys = (
                    None
                    if tasks is None
                    else [_key_from_wire(t) for t in tasks]
                )
                with self._cond:
                    self.table.heartbeat(name, keys)
                    self._cond.notify_all()
                self._ingest_worker_metrics(name, msg.get("metrics"))
            elif mtype == "task-error":
                self._handle_task_error(name, msg)
            elif mtype == "bye":
                return
            else:
                raise WireError(f"unexpected message type {mtype!r}")

    def _handle_request(self, conn: socket.socket, name: str) -> None:
        with self._cond:
            if self._closing or self._draining or self._all_resolved():
                reply: Dict[str, Any] = {"type": "drain"}
            else:
                leased = self.table.next_for(name)
                if leased is None:
                    reply = {"type": "idle", "seconds": 0.05}
                else:
                    key, attempt = leased
                    reply = {
                        "type": "lease",
                        "task": _key_wire(key),
                        "attempt": attempt,
                        "digest": self.digest,
                    }
            self._cond.notify_all()
        send_message(conn, reply)

    def _handle_ack(
        self, conn: socket.socket, name: str, msg: Dict[str, Any]
    ) -> None:
        obs = self.observer
        if msg.get("digest") != self.digest:
            # a worker that changed posets underneath us must never commit
            with self._cond:
                self.table.stale_acks += 1
                self._cond.notify_all()
            if obs.enabled:
                obs.counter("stale_acks_total").inc()
            raise WireError(
                f"stale digest in ack from {name}: "
                f"{str(msg.get('digest'))[:12]}…"
            )
        key = _key_from_wire(msg["task"])
        stats = IntervalStats(
            event=key[0],
            lo=key[1],
            hi=key[2],
            states=int(msg["states"]),
            work=int(msg["work"]),
            peak_live=int(msg["peak_live"]),
            seconds=float(msg.get("seconds", 0.0)),
        )
        with self._cond:
            first = self.table.commit(key, stats)
            if first and name not in self.hosts:
                self.hosts.append(name)
            self._cond.notify_all()
        if not first:
            if obs.enabled:
                obs.counter("duplicate_acks_total").inc()
            return
        # journal outside the condition lock: commit() already decided
        # uniqueness, and the journal has its own thread + file locks
        if self.journal is not None:
            self.journal.record(stats)
        if obs.enabled:
            obs.record_epoch(
                f"I({key[0]})",
                "enumerate",
                float(msg.get("epoch_t0", 0.0)),
                stats.seconds,
                worker=name,
                attrs={
                    "event": str(key[0]),
                    "states": stats.states,
                    "attempt": int(msg.get("attempt", 0)),
                },
            )
            # One labeled observation per *committed* task, so the
            # per-host histogram _count totals reconcile exactly with the
            # checkpoint journal's committed-interval count (duplicate
            # and stale acks never reach this line).
            obs.histogram(
                "enumeration_seconds", labels={"host": name}
            ).observe(stats.seconds)
        obs.task_done(stats)

    def _handle_task_error(self, name: str, msg: Dict[str, Any]) -> None:
        key = _key_from_wire(msg["task"])
        payload = msg.get("payload")
        error = (
            f"{type(payload).__name__}: {payload}"
            if isinstance(payload, BaseException)
            else str(msg.get("error", "unknown remote failure"))
        )
        with self._cond:
            self.table.leased.pop(key, None)
            attempts = self.table.attempts.get(key, 0)
            if attempts < self.max_task_attempts:
                self.table.pending.insert(0, key)
                self.table.redispatches += 1
            else:
                self.failures[key] = (attempts, error, name)
            self._cond.notify_all()
        if self.observer.enabled:
            self.observer.instant(
                "task-error", "dist", worker=name, event=str(key[0])
            )

    def _drop_worker(self, name: str, conn: socket.socket) -> None:
        try:
            conn.close()
        except OSError:
            pass
        with self._cond:
            if self._workers.get(name) is conn:
                del self._workers[name]
            lost = self.table.release_worker(name)
            self._cond.notify_all()
        if lost and self.observer.enabled:
            self.observer.counter("redispatches_total").inc(len(lost))
            self.observer.instant(
                "worker-lost", "dist", worker=name, leases=len(lost)
            )

    # ------------------------------------------------------------------ #
    # introspection (executor drains these into ParaMountResult)

    def robustness_counters(self) -> Dict[str, int]:
        with self._cond:
            return {
                "leases_expired": self.table.leases_expired,
                "redispatches": self.table.redispatches,
                "duplicate_acks": self.table.duplicate_acks,
                "stale_acks": self.table.stale_acks,
            }
